"""Calibration helper: print the Table 1 reproduction for the current defaults.

Run as ``python scripts/calibration_report.py``.  Used during development
to tune device sizing and technology constants; the same numbers are
produced by ``examples/crossbar_comparison.py`` through the public API.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.crossbar import create_all_schemes  # noqa: E402
from repro.technology import default_45nm  # noqa: E402

PAPER = {
    "SC": dict(hl=61.40, lh=54.87, act=0.0, stby=0.0, idle_cycles=3, total=182.81, pen=0.0),
    "DFC": dict(hl=51.87, lh=58.17, act=10.13, stby=12.36, idle_cycles=2, total=154.07, pen=0.0),
    "DPC": dict(hl=53.08, lh=61.25, act=43.70, stby=93.68, idle_cycles=1, total=180.45, pen=0.0),
    "SDFC": dict(hl=62.81, lh=64.28, act=42.09, stby=43.91, idle_cycles=3, total=122.18, pen=4.69),
    "SDPC": dict(hl=54.90, lh=62.80, act=63.57, stby=95.96, idle_cycles=1, total=168.55, pen=2.28),
}


def main() -> None:
    library = default_45nm()
    schemes = create_all_schemes(library)
    baseline = schemes["SC"]
    base_delay = baseline.delay_report()
    base_active = baseline.active_leakage_power()
    base_standby = baseline.standby_leakage_power()

    header = (
        f"{'scheme':<6} {'HL ps':>8} {'LH ps':>8} {'act%':>7} {'stby%':>7} "
        f"{'pen%':>6} {'idle':>5} {'leak mW':>8} {'dyn mW':>8} {'tot mW':>8}"
    )
    print(header)
    print("-" * len(header))
    for name, scheme in schemes.items():
        delay = scheme.delay_report()
        active = scheme.active_leakage_power()
        standby = scheme.standby_leakage_power()
        act_saving = (1.0 - active / base_active) * 100.0
        stby_saving = (1.0 - standby / base_standby) * 100.0
        penalty = delay.penalty_versus(base_delay) * 100.0
        transition = scheme.sleep_transition_energy()
        saving_power = scheme.standby_power_saving()
        idle_cycles = (
            math.ceil(transition / (saving_power * library.clock_period))
            if saving_power > 0
            else float("inf")
        )
        dynamic = scheme.dynamic_power() * 1e3
        total = scheme.total_power() * 1e3
        paper = PAPER[name]
        print(
            f"{name:<6} {delay.high_to_low * 1e12:>8.2f} {delay.low_to_high * 1e12:>8.2f} "
            f"{act_saving:>7.2f} {stby_saving:>7.2f} {penalty:>6.2f} {idle_cycles!s:>5} "
            f"{active * 1e3:>8.2f} {dynamic:>8.2f} {total:>8.2f}"
        )
        print(
            f"{'paper':<6} {paper['hl']:>8.2f} {paper['lh']:>8.2f} {paper['act']:>7.2f} "
            f"{paper['stby']:>7.2f} {paper['pen']:>6.2f} {paper['idle_cycles']:>5} "
            f"{'-':>8} {'-':>8} {paper['total']:>8.2f}"
        )
        print()


if __name__ == "__main__":
    main()
