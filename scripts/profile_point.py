#!/usr/bin/env python
"""Profile single-point evaluation: the measurement every perf PR starts from.

Runs ``compare_schemes`` under :mod:`cProfile` — one cold point (library
and scheme construction included) by default, or fresh points over a
warm structural cache with ``--warm``, which is the steady state the
serving and distributed layers actually see — and prints the top
functions by ``tottime``.

Examples
--------
Profile the paper's point, cold::

    PYTHONPATH=src python scripts/profile_point.py

Profile 32 fresh points over warm structure, top 15 rows::

    PYTHONPATH=src python scripts/profile_point.py --warm --points 32 --top 15
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import compare_schemes, paper_experiment  # noqa: E402
from repro.circuit.biasing import kernel_totals  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    """Profile one (or several) design-point evaluations and print a report."""
    parser = argparse.ArgumentParser(
        description="cProfile the compare_schemes hot path.")
    parser.add_argument("--points", type=int, default=1,
                        help="how many points to profile (default 1)")
    parser.add_argument("--warm", action="store_true",
                        help="pre-build libraries/schemes so the profile shows "
                             "the steady-state (cache-warm) hot path")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumtime", "ncalls"],
                        help="pstats sort column (default tottime)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows to print (default 20)")
    args = parser.parse_args(argv)

    base = paper_experiment()
    if args.warm:
        compare_schemes(base)
    # Distinct activity scalars: fresh points, never analysis-memo replays.
    configs = [base.with_overrides(static_probability=0.05 + 0.9 * i / max(1, args.points))
               for i in range(args.points)]

    before = kernel_totals()
    before_lookups, before_misses = before.lookups, before.misses
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    for config in configs:
        compare_schemes(config)
    profiler.disable()
    elapsed = time.perf_counter() - start

    totals = kernel_totals()
    lookups = totals.lookups - before_lookups
    misses = totals.misses - before_misses
    print(f"{args.points} point(s), {'warm' if args.warm else 'cold'} "
          f"structural cache: {elapsed * 1e3:.1f} ms total, "
          f"{args.points / elapsed:.1f} points/s")
    if lookups:
        print(f"leakage kernel: {lookups / args.points:.1f} lookups/point, "
              f"{misses / args.points:.1f} misses/point "
              f"({(lookups - misses) / lookups * 100.0:.1f}% memo hits)")
    print()
    pstats.Stats(profiler).strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
