#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run the exact CI gate before
# pushing.  Offline-safe: installs nothing and skips tools that are not
# available (CI installs them; locally they are optional).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> Compile check (python -m compileall src)"
python -m compileall -q src

if python -c "import pyflakes" >/dev/null 2>&1; then
    echo "==> Lint (pyflakes)"
    python -m pyflakes src tests benchmarks examples scripts
else
    echo "==> Lint skipped: pyflakes not installed (CI runs it)"
fi

echo "==> Tier-1 tests"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

echo "==> Engine + service benchmark smoke (gated vs BENCH_history.json rolling median)"
REPRO_BENCH_GATE=1 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks -q -k "engine or service" --benchmark-disable-gc

echo "==> BENCH_engine.json"
cat BENCH_engine.json

echo "==> BENCH_history.json (last record)"
python - <<'EOF'
import json
history = json.load(open("BENCH_history.json"))
print(f"{len(history)} records; last: {json.dumps(history[-1], sort_keys=True)}")
EOF

echo "==> Example smoke: radix scaling (nested crossbar.port_count axes)"
python examples/radix_scaling.py > /dev/null

echo "==> Example smoke: async serving round trip"
python examples/serving.py > /dev/null

echo "==> CI gate passed"
