#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run the exact CI gate before
# pushing.  Offline-safe: installs nothing and skips tools that are not
# available (CI installs them; locally they are optional).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> Compile check (python -m compileall src)"
python -m compileall -q src

if python -c "import pyflakes" >/dev/null 2>&1; then
    echo "==> Lint (pyflakes)"
    python -m pyflakes src tests benchmarks examples scripts
else
    echo "==> Lint skipped: pyflakes not installed (CI runs it)"
fi

echo "==> Tier-1 tests"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

echo "==> Engine + point + service + distributed benchmark smoke (gated vs BENCH_history.json rolling median)"
REPRO_BENCH_GATE=1 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks -q -k "engine or point or service or distributed" --benchmark-disable-gc

echo "==> BENCH_engine.json"
cat BENCH_engine.json

echo "==> BENCH_history.json trend"
python - <<'EOF'
import json
import statistics

history = json.load(open("BENCH_history.json"))
print(f"{len(history)} records; last: {json.dumps(history[-1], sort_keys=True)}")

BLOCKS = "▁▂▃▄▅▆▇█"
METRICS = ["serial_points_per_second", "point_eval_points_per_second",
           "service_queries_per_second", "distributed_points_per_second"]


def sparkline(values):
    lo, hi = min(values), max(values)
    if hi == lo:
        return BLOCKS[3] * len(values)
    scale = (len(BLOCKS) - 1) / (hi - lo)
    return "".join(BLOCKS[int((v - lo) * scale)] for v in values)


width = max(len(m) for m in METRICS)
print(f"{'metric'.ljust(width)}  runs  {'median':>10}  {'last':>10}  trend")
for metric in METRICS:
    values = [r[metric] for r in history
              if isinstance(r.get(metric), (int, float))]
    if not values:
        print(f"{metric.ljust(width)}     0           -           -  (no records)")
        continue
    print(f"{metric.ljust(width)}  {len(values):4d}  "
          f"{statistics.median(values):10.1f}  {values[-1]:10.1f}  "
          f"{sparkline(values[-20:])}")
EOF

echo "==> Example smoke: radix scaling (nested crossbar.port_count axes)"
python examples/radix_scaling.py > /dev/null

echo "==> Example smoke: async serving round trip"
python examples/serving.py > /dev/null

echo "==> Example smoke: distributed fleet + journaled shared cache"
python examples/distributed.py > /dev/null

echo "==> CI gate passed"
