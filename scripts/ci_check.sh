#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run the exact CI gate before
# pushing.  Offline-safe: installs nothing and skips tools that are not
# available (CI installs them; locally they are optional).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> Compile check (python -m compileall src)"
python -m compileall -q src

if python -c "import pyflakes" >/dev/null 2>&1; then
    echo "==> Lint (pyflakes)"
    python -m pyflakes src tests benchmarks examples scripts
else
    echo "==> Lint skipped: pyflakes not installed (CI runs it)"
fi

echo "==> Tier-1 tests"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

echo "==> Engine benchmark smoke (writes BENCH_engine.json)"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks -q -k "engine" --benchmark-disable-gc

echo "==> BENCH_engine.json"
cat BENCH_engine.json

echo "==> CI gate passed"
