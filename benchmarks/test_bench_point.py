"""Single-point evaluation benchmark: the serial hot path itself.

Every serving/distributed layer funnels into one
:func:`~repro.core.comparison.compare_schemes` call per design point, so
this bench measures that call directly — fresh points (distinct
``static_probability`` values) over a warm structural cache, the
cache-miss latency every other throughput figure is built on — plus the
leakage-kernel effectiveness behind it: how many bias-point evaluations
one point requests (``leakage_calls_per_point``) and what fraction the
memo serves (``point_kernel_hit_rate``).

Under ``REPRO_BENCH_GATE=1`` the ``point_eval_*`` /
``leakage_calls_per_point`` keys are merged into ``BENCH_engine.json``
and appended to ``BENCH_history.json``, and the ci_check trend table
renders ``point_eval_points_per_second`` next to the engine and service
trends.  The regression gate arms once the history holds enough records
(same >=5-record rolling-median rule as the service and distributed
gates).
"""

from __future__ import annotations

import os
import time

from repro import compare_schemes, paper_experiment
from repro.circuit.biasing import kernel_totals
from repro.core.scheme_evaluator import clear_structural_cache

GATE_ENABLED = os.environ.get("REPRO_BENCH_GATE") == "1"

#: Fail the smoke when throughput drops below rolling-median/3 — the
#: same margin as the engine/service gates.
REGRESSION_FACTOR = 3.0

#: The gate arms only once this many history records carry the metric.
MIN_GATE_RECORDS = 5

#: Fresh single points: distinct activity scalars over shared structure
#: (the design-space common case the structural cache was built for).
POINTS = [0.05 + 0.9 * i / 63 for i in range(64)]


def test_point_evaluation_throughput(benchmark, bench_store):
    """Fresh-point compare_schemes latency + leakage-kernel efficiency,
    recorded as point_eval_* / leakage_calls_per_point bench keys."""
    # A clean slate makes the kernel arithmetic exact: one cold call
    # builds libraries/schemes and fills the memo, then the measured
    # points run over warm structure exactly as a sweep or service does.
    clear_structural_cache()
    base = paper_experiment()
    compare_schemes(base)

    before = kernel_totals()
    before_lookups, before_misses = before.lookups, before.misses

    def run_points():
        start = time.perf_counter()
        for probability in POINTS:
            compare_schemes(base.with_overrides(static_probability=probability))
        return time.perf_counter() - start

    elapsed = benchmark.pedantic(run_points, rounds=1, iterations=1)

    totals = kernel_totals()
    lookups = totals.lookups - before_lookups
    misses = totals.misses - before_misses
    points = len(POINTS)
    payload = {
        "point_eval_points": points,
        "point_eval_seconds": elapsed,
        "point_eval_points_per_second": points / elapsed,
        "leakage_calls_per_point": lookups / points,
        "point_kernel_misses_per_point": misses / points,
        "point_kernel_hit_rate": (lookups - misses) / lookups if lookups else 0.0,
    }
    print()
    print(f"single-point evaluation ({points} fresh points, all schemes, "
          f"{os.cpu_count()} cpu):")
    print(f"  points/s      : {payload['point_eval_points_per_second']:8.1f}")
    print(f"  kernel        : {payload['leakage_calls_per_point']:.1f} "
          f"bias-point lookups/point, "
          f"{payload['point_kernel_hit_rate'] * 100.0:.1f}% memo hits")

    # The kernel must be doing its job on the hot path: a fresh point
    # over warm structure should evaluate almost no new bias points.
    assert payload["point_kernel_hit_rate"] > 0.9

    if not GATE_ENABLED:
        return

    # Runs BEFORE the new record lands, so a failing run cannot poison
    # its own baseline.
    bench_store.regression_gate(
        "point_eval_points_per_second",
        payload["point_eval_points_per_second"],
        regression_factor=REGRESSION_FACTOR,
        min_records=MIN_GATE_RECORDS,
        label="gate          ",
    )

    bench_store.merge(payload)
    bench_store.append_history({
        "bench": "point",
        "cpu_count": os.cpu_count(),
        "point_eval_points_per_second": payload["point_eval_points_per_second"],
        "leakage_calls_per_point": payload["leakage_calls_per_point"],
    })
