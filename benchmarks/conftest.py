"""Shared fixtures for the benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark both
times the evaluation it wraps and prints the regenerated table/figure
content (paper value next to measured value where applicable), so the
benchmark log doubles as the reproduction record summarised in
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import compare_schemes, paper_experiment  # noqa: E402

_REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = _REPO_ROOT / "BENCH_engine.json"
HISTORY_PATH = _REPO_ROOT / "BENCH_history.json"


class BenchStore:
    """Accessor for the committed benchmark record and its history.

    ``BENCH_engine.json`` is the latest snapshot — different bench
    modules merge their keys into it instead of overwriting each other.
    ``BENCH_history.json`` is an append-only (capped) list of per-run
    records, so the perf trend across PRs is plottable and the
    regression gate can use a rolling median instead of whatever the
    single last run happened to measure.
    """

    #: History records kept (oldest dropped beyond this).
    HISTORY_LIMIT = 50
    #: How many recent records the rolling-median baseline considers.
    ROLLING_WINDOW = 5

    def __init__(self, bench_path: Path = BENCH_PATH,
                 history_path: Path = HISTORY_PATH) -> None:
        self.bench_path = bench_path
        self.history_path = history_path

    def load(self) -> dict:
        """The current snapshot (empty dict when missing/corrupt)."""
        try:
            payload = json.loads(self.bench_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def merge(self, updates: dict) -> dict:
        """Merge ``updates`` into the snapshot and write it back."""
        payload = self.load()
        payload.update(updates)
        self.bench_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return payload

    def history(self) -> list[dict]:
        """All history records, oldest first (empty when missing/corrupt)."""
        try:
            payload = json.loads(self.history_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return []
        if not isinstance(payload, list):
            return []
        return [record for record in payload if isinstance(record, dict)]

    def append_history(self, record: dict) -> None:
        """Append one timestamped record, capped to ``HISTORY_LIMIT``."""
        records = self.history()
        stamped = dict(record)
        stamped.setdefault("recorded_at",
                           time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()))
        records.append(stamped)
        records = records[-self.HISTORY_LIMIT:]
        self.history_path.write_text(
            json.dumps(records, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    def regression_gate(self, metric: str, value: float, *,
                        regression_factor: float = 3.0,
                        min_records: int = 5,
                        label: str = "gate") -> None:
        """Assert ``value`` has not regressed more than ``regression_factor``
        below the rolling-median baseline of ``metric``.

        Arms only once ``min_records`` history records carry the metric
        (a single-sample baseline would gate on noise); prints the
        armed/disarmed state either way.  Call it BEFORE writing the
        run's own record, so a failing run cannot poison its baseline.
        """
        history_values = [record[metric] for record in self.history()
                          if isinstance(record.get(metric), (int, float))]
        if len(history_values) < min_records:
            print(f"  {label}: disarmed ({len(history_values)} of "
                  f"{min_records} history records)")
            return
        baseline = self.rolling_baseline(metric)
        floor = baseline / regression_factor
        print(f"  {label}: rolling-median baseline {baseline:.1f} "
              f"({len(history_values)} records), fail below {floor:.1f}")
        assert value >= floor, (
            f"{metric} regressed more than {regression_factor:.0f}x: "
            f"{value:.1f} vs rolling-median baseline {baseline:.1f} "
            f"(floor {floor:.1f})"
        )

    def rolling_baseline(self, metric: str,
                         window: int | None = None) -> float | None:
        """Median of ``metric`` over the last ``window`` history records.

        Records missing the metric (other bench modules' entries) are
        skipped.  Falls back to the snapshot's value when the history
        has none, so the gate keeps working on repos predating the
        history file.
        """
        window = window if window is not None else self.ROLLING_WINDOW
        values = [record[metric] for record in self.history()
                  if isinstance(record.get(metric), (int, float))]
        if values:
            return float(statistics.median(values[-window:]))
        snapshot = self.load().get(metric)
        return float(snapshot) if isinstance(snapshot, (int, float)) else None


@pytest.fixture(scope="session")
def bench_store():
    """The shared BENCH_engine.json / BENCH_history.json accessor."""
    return BenchStore()


#: Paper Table 1 values (DATE 2005), used for side-by-side printing.
PAPER_TABLE1 = {
    "SC": {"hl_ps": 61.40, "lh_ps": 54.87, "active_saving": None, "standby_saving": None,
           "min_idle": 3, "total_mw": 182.81, "penalty": None},
    "DFC": {"hl_ps": 51.87, "lh_ps": 58.17, "active_saving": 10.13, "standby_saving": 12.36,
            "min_idle": 2, "total_mw": 154.07, "penalty": 0.0},
    "DPC": {"hl_ps": 53.08, "lh_ps": 61.25, "active_saving": 43.70, "standby_saving": 93.68,
            "min_idle": 1, "total_mw": 180.45, "penalty": 0.0},
    "SDFC": {"hl_ps": 62.81, "lh_ps": 64.28, "active_saving": 42.09, "standby_saving": 43.91,
             "min_idle": 3, "total_mw": 122.18, "penalty": 4.69},
    "SDPC": {"hl_ps": 54.90, "lh_ps": 62.80, "active_saving": 63.57, "standby_saving": 95.96,
             "min_idle": 1, "total_mw": 168.55, "penalty": 2.28},
}


@pytest.fixture(scope="session")
def paper_values():
    """The paper's Table 1 numbers."""
    return PAPER_TABLE1


@pytest.fixture(scope="session")
def table1_comparison():
    """The full scheme comparison at the paper's configuration (computed once)."""
    return compare_schemes(paper_experiment())


@pytest.fixture(scope="session")
def table1_records(table1_comparison):
    """Comparison records keyed by scheme name."""
    return {record["scheme"]: record for record in table1_comparison.as_records()}
