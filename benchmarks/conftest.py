"""Shared fixtures for the benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark both
times the evaluation it wraps and prints the regenerated table/figure
content (paper value next to measured value where applicable), so the
benchmark log doubles as the reproduction record summarised in
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import compare_schemes, paper_experiment  # noqa: E402


#: Paper Table 1 values (DATE 2005), used for side-by-side printing.
PAPER_TABLE1 = {
    "SC": {"hl_ps": 61.40, "lh_ps": 54.87, "active_saving": None, "standby_saving": None,
           "min_idle": 3, "total_mw": 182.81, "penalty": None},
    "DFC": {"hl_ps": 51.87, "lh_ps": 58.17, "active_saving": 10.13, "standby_saving": 12.36,
            "min_idle": 2, "total_mw": 154.07, "penalty": 0.0},
    "DPC": {"hl_ps": 53.08, "lh_ps": 61.25, "active_saving": 43.70, "standby_saving": 93.68,
            "min_idle": 1, "total_mw": 180.45, "penalty": 0.0},
    "SDFC": {"hl_ps": 62.81, "lh_ps": 64.28, "active_saving": 42.09, "standby_saving": 43.91,
             "min_idle": 3, "total_mw": 122.18, "penalty": 4.69},
    "SDPC": {"hl_ps": 54.90, "lh_ps": 62.80, "active_saving": 63.57, "standby_saving": 95.96,
             "min_idle": 1, "total_mw": 168.55, "penalty": 2.28},
}


@pytest.fixture(scope="session")
def paper_values():
    """The paper's Table 1 numbers."""
    return PAPER_TABLE1


@pytest.fixture(scope="session")
def table1_comparison():
    """The full scheme comparison at the paper's configuration (computed once)."""
    return compare_schemes(paper_experiment())


@pytest.fixture(scope="session")
def table1_records(table1_comparison):
    """Comparison records keyed by scheme name."""
    return {record["scheme"]: record for record in table1_comparison.as_records()}
