"""Ablation benchmarks for the paper's textual claims.

* Section 3: "by segmenting the crossbar, not only is dynamic power
  mitigated but the leakage power is further reduced ... in SDFC and
  SDPC" — the segmentation ablation compares each segmented scheme with
  its unsegmented parent.
* Section 4: "DPC and SDPC target systems which have major data
  transfers within the same polarity" — the static-probability sweep
  shows the pre-charged schemes' power falling as the data skews toward
  the pre-charged value, and locates the crossover against the feedback
  designs.
* Table 1 footnote: 50 % static probability is the worst case for the
  pre-charged schemes' power.
"""

from __future__ import annotations

from repro import create_all_schemes, create_scheme, default_45nm
from repro.analysis import render_table
from repro.analysis.sweep import crossover_point, run_sweep
from repro.power import analyse_total_power, power_versus_static_probability


def test_segmentation_ablation(benchmark):
    """Leakage reduction attributable to segmentation alone (SDFC vs DFC, SDPC vs DPC)."""
    library = default_45nm()

    def measure():
        schemes = create_all_schemes(library)
        result = {}
        for segmented, parent in (("SDFC", "DFC"), ("SDPC", "DPC")):
            result[segmented] = {
                "active_reduction": 1.0
                - schemes[segmented].active_leakage_power() / schemes[parent].active_leakage_power(),
                "dynamic_reduction": 1.0
                - schemes[segmented].dynamic_power() / schemes[parent].dynamic_power(),
                "standby_reduction": 1.0
                - schemes[segmented].standby_leakage_power()
                / schemes[parent].standby_leakage_power(),
            }
        return result

    ablation = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [name, values["active_reduction"] * 100, values["dynamic_reduction"] * 100,
         values["standby_reduction"] * 100]
        for name, values in ablation.items()
    ]
    print()
    print(render_table(
        ["scheme vs parent", "active leakage reduction (%)", "dynamic reduction (%)",
         "standby reduction (%)"],
        rows,
        title="Segmentation ablation (paper: ~20-30 % further leakage reduction, lower dynamic power)",
    ))
    # Both segmented schemes must reduce active leakage relative to their
    # unsegmented parents.  The dynamic-power mitigation is geometry
    # dependent: the row wire the segmentation halves is a small share of the
    # switched capacitance at this design point, and the per-segment control
    # devices claw some of it back, so we only require that segmentation does
    # not *cost* more than a few percent of dynamic power (the row-wire
    # mechanism itself is asserted by the unit tests).  See EXPERIMENTS.md.
    for values in ablation.values():
        assert values["active_reduction"] > 0.0
        assert values["dynamic_reduction"] > -0.06


def test_static_probability_sweep(benchmark):
    """Total power versus static probability: the pre-charged schemes' polarity sensitivity."""
    library = default_45nm()
    probabilities = [0.1, 0.3, 0.5, 0.7, 0.9]

    def measure():
        series = {}
        for name in ("SC", "DFC", "DPC", "SDPC"):
            scheme = create_scheme(name, library)
            series[name] = [
                point.total * 1e3
                for point in power_versus_static_probability(scheme, probabilities)
            ]
        return series

    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[name] + values for name, values in series.items()]
    print()
    print(render_table(
        ["scheme"] + [f"p1={p}" for p in probabilities], rows,
        title="Total power (mW) vs static probability of logic 1",
    ))
    # Pre-charged schemes get cheaper as data skews toward the pre-charged
    # value (logic 1); feedback schemes are far less polarity-sensitive (their
    # small residual sensitivity comes from state-dependent leakage only).
    dpc_swing = (series["DPC"][0] - series["DPC"][-1]) / series["DPC"][len(probabilities) // 2]
    sc_swing = abs(series["SC"][0] - series["SC"][-1]) / series["SC"][len(probabilities) // 2]
    assert series["DPC"][-1] < series["DPC"][len(probabilities) // 2]
    assert dpc_swing > 5 * sc_swing

    dpc_series = run_sweep("DPC", probabilities, lambda p: dict(zip(probabilities, series["DPC"]))[p])
    dfc_series = run_sweep("DFC", probabilities, lambda p: dict(zip(probabilities, series["DFC"]))[p])
    crossover = crossover_point(dpc_series, dfc_series)
    print(f"DPC/DFC total-power crossover at static probability: {crossover}")


def test_worst_case_static_probability_for_precharged_schemes(benchmark):
    """Table 1 footnote: 50 % static probability maximises DPC/SDPC power."""
    library = default_45nm()
    probabilities = [0.5, 0.75, 0.95]

    def measure():
        result = {}
        for name in ("DPC", "SDPC"):
            scheme = create_scheme(name, library)
            result[name] = {
                probability: analyse_total_power(scheme, static_probability=probability).total * 1e3
                for probability in probabilities
            }
        return result

    totals = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[name] + [totals[name][p] for p in probabilities] for name in totals]
    print()
    print(render_table(["scheme"] + [f"p1={p}" for p in probabilities], rows,
                       title="Pre-charged schemes: power is worst at 50 % static probability"))
    for name in totals:
        assert totals[name][0.5] >= totals[name][0.75] >= totals[name][0.95]


def test_temperature_sensitivity_ablation(benchmark):
    """Leakage savings survive across junction temperatures (design-space check)."""
    def measure():
        result = {}
        for temperature in (25.0, 70.0, 110.0):
            library = default_45nm(temperature_celsius=temperature)
            schemes = create_all_schemes(library)
            baseline = schemes["SC"].active_leakage_power()
            result[temperature] = {
                name: (1.0 - schemes[name].active_leakage_power() / baseline) * 100.0
                for name in ("DFC", "DPC", "SDFC", "SDPC")
            }
        return result

    savings = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[t] + [savings[t][name] for name in ("DFC", "DPC", "SDFC", "SDPC")]
            for t in savings]
    print()
    print(render_table(["temp (C)", "DFC (%)", "DPC (%)", "SDFC (%)", "SDPC (%)"], rows,
                       title="Active leakage savings vs junction temperature"))
    for per_scheme in savings.values():
        assert per_scheme["SDPC"] == max(per_scheme.values())
