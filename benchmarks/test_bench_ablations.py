"""Ablation benchmarks for the paper's textual claims.

* Section 3: "by segmenting the crossbar, not only is dynamic power
  mitigated but the leakage power is further reduced ... in SDFC and
  SDPC" — the segmentation ablation compares each segmented scheme with
  its unsegmented parent.
* Section 4: "DPC and SDPC target systems which have major data
  transfers within the same polarity" — the static-probability sweep
  shows the pre-charged schemes' power falling as the data skews toward
  the pre-charged value, and locates the crossover against the feedback
  designs.
* Table 1 footnote: 50 % static probability is the worst case for the
  pre-charged schemes' power.
"""

from __future__ import annotations

from repro import DesignSpace, Evaluator, create_all_schemes, default_45nm, paper_experiment
from repro.analysis import render_table, sweep_table
from repro.analysis.sweep import crossover_points, run_sweep


def test_segmentation_ablation(benchmark):
    """Leakage reduction attributable to segmentation alone (SDFC vs DFC, SDPC vs DPC)."""
    library = default_45nm()

    def measure():
        schemes = create_all_schemes(library)
        result = {}
        for segmented, parent in (("SDFC", "DFC"), ("SDPC", "DPC")):
            result[segmented] = {
                "active_reduction": 1.0
                - schemes[segmented].active_leakage_power() / schemes[parent].active_leakage_power(),
                "dynamic_reduction": 1.0
                - schemes[segmented].dynamic_power() / schemes[parent].dynamic_power(),
                "standby_reduction": 1.0
                - schemes[segmented].standby_leakage_power()
                / schemes[parent].standby_leakage_power(),
            }
        return result

    ablation = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [name, values["active_reduction"] * 100, values["dynamic_reduction"] * 100,
         values["standby_reduction"] * 100]
        for name, values in ablation.items()
    ]
    print()
    print(render_table(
        ["scheme vs parent", "active leakage reduction (%)", "dynamic reduction (%)",
         "standby reduction (%)"],
        rows,
        title="Segmentation ablation (paper: ~20-30 % further leakage reduction, lower dynamic power)",
    ))
    # Both segmented schemes must reduce active leakage relative to their
    # unsegmented parents.  The dynamic-power mitigation is geometry
    # dependent: the row wire the segmentation halves is a small share of the
    # switched capacitance at this design point, and the per-segment control
    # devices claw some of it back, so we only require that segmentation does
    # not *cost* more than a few percent of dynamic power (the row-wire
    # mechanism itself is asserted by the unit tests).  See EXPERIMENTS.md.
    for values in ablation.values():
        assert values["active_reduction"] > 0.0
        assert values["dynamic_reduction"] > -0.06


def test_static_probability_sweep(benchmark):
    """Total power versus static probability: the pre-charged schemes' polarity sensitivity."""
    schemes = ["SC", "DFC", "DPC", "SDPC"]
    probabilities = [0.1, 0.3, 0.5, 0.7, 0.9]
    space = DesignSpace.single_sweep("static_probability", probabilities)
    evaluator = Evaluator(base_config=paper_experiment(), scheme_names=schemes)

    def measure():
        results = evaluator.evaluate(space)
        return results, {
            name: [value for _, value in results.series(name, "total_power_mw")]
            for name in schemes
        }

    results, series = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(sweep_table(results, schemes, "total_power_mw",
                      title="Total power (mW) vs static probability of logic 1"))
    # Pre-charged schemes get cheaper as data skews toward the pre-charged
    # value (logic 1); feedback schemes are far less polarity-sensitive (their
    # small residual sensitivity comes from state-dependent leakage only).
    dpc_swing = (series["DPC"][0] - series["DPC"][-1]) / series["DPC"][len(probabilities) // 2]
    sc_swing = abs(series["SC"][0] - series["SC"][-1]) / series["SC"][len(probabilities) // 2]
    assert series["DPC"][-1] < series["DPC"][len(probabilities) // 2]
    assert dpc_swing > 5 * sc_swing

    dpc_series = run_sweep("DPC", probabilities, lambda p: dict(zip(probabilities, series["DPC"]))[p])
    dfc_series = run_sweep("DFC", probabilities, lambda p: dict(zip(probabilities, series["DFC"]))[p])
    crossings = crossover_points(dpc_series, dfc_series)
    print(f"DPC/DFC total-power crossover(s) at static probability: {list(crossings) or None}")


def test_worst_case_static_probability_for_precharged_schemes(benchmark):
    """Table 1 footnote: 50 % static probability maximises DPC/SDPC power."""
    probabilities = [0.5, 0.75, 0.95]
    space = DesignSpace.single_sweep("static_probability", probabilities)
    evaluator = Evaluator(base_config=paper_experiment(),
                          scheme_names=["DPC", "SDPC"], baseline_name="DPC")

    def measure():
        results = evaluator.evaluate(space)
        return {
            name: dict(results.series(name, "total_power_mw"))
            for name in ("DPC", "SDPC")
        }

    totals = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[name] + [totals[name][p] for p in probabilities] for name in totals]
    print()
    print(render_table(["scheme"] + [f"p1={p}" for p in probabilities], rows,
                       title="Pre-charged schemes: power is worst at 50 % static probability"))
    for name in totals:
        assert totals[name][0.5] >= totals[name][0.75] >= totals[name][0.95]


def test_temperature_sensitivity_ablation(benchmark):
    """Leakage savings survive across junction temperatures (design-space check)."""
    temperatures = [25.0, 70.0, 110.0]
    space = DesignSpace.single_sweep("temperature_celsius", temperatures)
    evaluator = Evaluator(base_config=paper_experiment())

    def measure():
        results = evaluator.evaluate(space)
        return {
            temperature: {
                name: dict(results.series(name, "active_leakage_saving_percent"))[temperature]
                for name in ("DFC", "DPC", "SDFC", "SDPC")
            }
            for temperature in temperatures
        }

    savings = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[t] + [savings[t][name] for name in ("DFC", "DPC", "SDFC", "SDPC")]
            for t in savings]
    print()
    print(render_table(["temp (C)", "DFC (%)", "DPC (%)", "SDFC (%)", "SDPC (%)"], rows,
                       title="Active leakage savings vs junction temperature"))
    for per_scheme in savings.values():
        assert per_scheme["SDPC"] == max(per_scheme.values())
