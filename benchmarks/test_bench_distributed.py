"""Distributed executor smoke: a 2-worker localhost fleet.

Runs a small grid through a :class:`DistributedExecutor` spawning two
local worker processes over loopback TCP sockets, verifies the results
are bit-identical to the serial executor and that *both* workers took
items, and measures points/second end-to-end (including worker spawn
and registration — the honest figure for short fleets).  Under
``REPRO_BENCH_GATE=1`` the ``distributed_*`` keys are merged into
``BENCH_engine.json`` and a record is appended to
``BENCH_history.json`` next to the engine and service trends.

Honesty note: on the 1-CPU CI container two workers time-slice one
core, so distributed points/sec sits *below* serial — the wire and
registration overhead is what this smoke tracks there.  Multi-host
speedups need multiple machines (or at least cores), which is exactly
why the figure is recorded next to ``cpu_count``.
"""

from __future__ import annotations

import os
import time

from repro import DesignSpace, Evaluator, paper_experiment
from repro.engine import DistributedExecutor

GATE_ENABLED = os.environ.get("REPRO_BENCH_GATE") == "1"

#: Fail the smoke when end-to-end throughput drops below
#: rolling-median/3 — the same margin as the engine/service gates.
REGRESSION_FACTOR = 3.0

#: The gate arms only once this many history records carry the metric:
#: a single-sample baseline would gate on noise (ROADMAP arming rule).
MIN_GATE_RECORDS = 5

SCHEMES = ["SC", "SDPC"]
GRID = {"static_probability": [0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.9]}


def test_distributed_two_worker_smoke(benchmark, bench_store):
    """2-worker loopback fleet: parity with serial, both workers busy,
    end-to-end throughput recorded as distributed_* keys."""
    space = DesignSpace.grid(GRID)

    with Evaluator(base_config=paper_experiment(), scheme_names=SCHEMES,
                   executor="serial") as serial:
        serial_results = serial.evaluate(space)

    def measure():
        executor = DistributedExecutor(spawn_workers=2, min_workers=2)
        with Evaluator(base_config=paper_experiment(), scheme_names=SCHEMES,
                       executor=executor) as evaluator:
            start = time.perf_counter()
            results = evaluator.evaluate(space)
            elapsed = time.perf_counter() - start
            fleet = executor.stats_payload()
            executor.close()
        return results, elapsed, fleet

    results, elapsed, fleet = benchmark.pedantic(measure, rounds=1,
                                                 iterations=1)

    # Parity with the serial path, in submission order.
    assert [p.records for p in results] == [p.records for p in serial_results]
    per_worker = {worker_id: info["completed"]
                  for worker_id, info in fleet["workers"].items()}
    assert fleet["workers_registered"] == 2
    assert sum(per_worker.values()) == len(space)
    assert all(count > 0 for count in per_worker.values()), \
        f"both workers should take items, got {per_worker}"

    points = len(space)
    payload = {
        "distributed_workers": 2,
        "distributed_grid_points": points,
        "distributed_seconds": elapsed,
        "distributed_points_per_second": points / elapsed,
        "distributed_redispatched": fleet["redispatched"],
        "distributed_per_worker_completed": per_worker,
    }
    print()
    print(f"distributed smoke ({points} points, 2 spawned workers, "
          f"{os.cpu_count()} cpu):")
    print(f"  end-to-end: {payload['distributed_points_per_second']:8.1f} "
          f"points/s ({elapsed * 1e3:.0f} ms incl. spawn + registration)")
    print(f"  fan-out   : {per_worker}")

    if not GATE_ENABLED:
        return

    # Throughput-regression gate, armed once the history holds enough
    # records for a meaningful rolling median.  Runs BEFORE the new
    # record is written, so a failing run cannot poison its own baseline.
    bench_store.regression_gate(
        "distributed_points_per_second",
        payload["distributed_points_per_second"],
        regression_factor=REGRESSION_FACTOR,
        min_records=MIN_GATE_RECORDS,
        label="gate      ",
    )

    bench_store.merge(payload)
    bench_store.append_history({
        "bench": "distributed",
        "cpu_count": os.cpu_count(),
        "distributed_points_per_second": payload["distributed_points_per_second"],
    })
