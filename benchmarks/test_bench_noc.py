"""NoC-level benchmarks: the standby mode under realistic traffic.

The paper motivates its standby mode with router idle periods; these
benchmarks measure idle-interval distributions on a 4x4 mesh under
several traffic patterns and injection rates, then apply the Table 1
break-even thresholds to report how much of the idle leakage each scheme
actually recovers.
"""

from __future__ import annotations

from repro import create_scheme, default_45nm
from repro.analysis import render_table
from repro.noc import (
    GatingPolicy,
    Mesh,
    NetworkSimulator,
    NocPowerConfig,
    NocPowerModel,
    TrafficConfig,
    TrafficPattern,
    evaluate_gating,
)
from repro.power import analyse_minimum_idle_time


def _simulate(pattern: TrafficPattern, injection_rate: float, seed: int = 3,
              cycles: int = 2000):
    mesh = Mesh(4, 4)
    traffic = TrafficConfig(
        injection_rate=injection_rate,
        pattern=pattern,
        hotspot_node=(0, 0) if pattern is TrafficPattern.HOTSPOT else None,
        seed=seed,
    )
    return NetworkSimulator(mesh, traffic).run(cycles=cycles, warmup_cycles=200)


def test_noc_idle_interval_distribution(benchmark):
    """Idle-interval statistics of crossbar output ports under three patterns."""
    def measure():
        results = {}
        for pattern in (TrafficPattern.UNIFORM, TrafficPattern.TRANSPOSE, TrafficPattern.HOTSPOT):
            result = _simulate(pattern, injection_rate=0.1)
            intervals = result.idle_intervals()
            results[pattern.value] = {
                "latency": result.average_latency,
                "utilisation": result.average_crossbar_utilisation,
                "intervals": len(intervals),
                "mean_interval": sum(intervals) / len(intervals) if intervals else 0.0,
                "long_intervals": sum(1 for i in intervals if i >= 10),
            }
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [pattern, values["latency"], values["utilisation"] * 100, values["intervals"],
         values["mean_interval"], values["long_intervals"]]
        for pattern, values in results.items()
    ]
    print()
    print(render_table(
        ["pattern", "avg latency (cyc)", "xbar util (%)", "idle intervals",
         "mean interval (cyc)", "intervals >= 10 cyc"],
        rows, title="4x4 mesh, injection 0.1 flits/node/cycle",
    ))
    for values in results.values():
        assert values["mean_interval"] >= 1.0


def test_noc_power_gating_savings_per_scheme(benchmark):
    """Net leakage energy recovered by the standby mode for each scheme."""
    library = default_45nm()
    simulation = _simulate(TrafficPattern.UNIFORM, injection_rate=0.08)
    intervals = simulation.idle_intervals()

    def measure():
        results = {}
        for name in ("SC", "DFC", "DPC", "SDFC", "SDPC"):
            scheme = create_scheme(name, library)
            analysis = analyse_minimum_idle_time(scheme)
            # Apply one port's measured idle pattern to the whole crossbar:
            # idle/standby powers and the transition energy are all
            # whole-crossbar figures, so the report's ratios are consistent.
            idle_power = scheme.idle_leakage().power(scheme.supply_voltage)
            standby_power = scheme.standby_leakage_power()
            report = evaluate_gating(
                intervals, simulation.cycles, analysis, idle_power, standby_power,
                GatingPolicy(idle_detect_cycles=max(2, analysis.minimum_idle_cycles)),
            )
            results[name] = report
        return results

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [name, report.gated_fraction_of_idle * 100, report.sleep_transitions,
         report.net_energy_saved * 1e9, report.saving_fraction * 100]
        for name, report in reports.items()
    ]
    print()
    print(render_table(
        ["scheme", "idle cycles gated (%)", "sleep transitions", "net energy saved (nJ)",
         "saving vs idle leakage (%)"],
        rows, title="Power gating under uniform traffic (whole-crossbar figures)",
    ))
    # The deepest standby states (pre-charged schemes) recover the most idle
    # leakage; no scheme may lose energy when the policy respects its own
    # break-even threshold.
    assert reports["DPC"].saving_fraction >= reports["DFC"].saving_fraction
    assert reports["SDPC"].saving_fraction >= reports["DFC"].saving_fraction
    for report in reports.values():
        assert report.net_energy_saved >= 0.0


def test_noc_injection_rate_sweep(benchmark):
    """Network power versus offered load for the SC and SDPC crossbars."""
    library = default_45nm()
    rates = [0.02, 0.1, 0.25]

    def measure():
        results = {}
        for rate in rates:
            simulation = _simulate(TrafficPattern.UNIFORM, injection_rate=rate, cycles=1500)
            row = {"utilisation": simulation.average_crossbar_utilisation * 100}
            for name in ("SC", "SDPC"):
                scheme = create_scheme(name, library)
                report = NocPowerModel(scheme, NocPowerConfig(gating_enabled=True)).evaluate(simulation)
                row[name] = report.total * 1e3
                row[f"{name}_leak"] = report.crossbar_leakage * 1e3
            results[rate] = row
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [rate, values["utilisation"], values["SC"], values["SDPC"],
         values["SC_leak"], values["SDPC_leak"]]
        for rate, values in results.items()
    ]
    print()
    print(render_table(
        ["injection (flits/node/cyc)", "xbar util (%)", "SC total (mW)", "SDPC total (mW)",
         "SC xbar leak (mW)", "SDPC xbar leak (mW)"],
        rows, title="4x4 mesh network power vs offered load (gating enabled)",
    ))
    for values in results.values():
        assert values["SDPC_leak"] < values["SC_leak"]


def test_noc_gating_benefit_grows_with_burstiness(benchmark):
    """Bursty traffic lengthens idle intervals and increases the gating benefit."""
    library = default_45nm()
    scheme = create_scheme("DPC", library)

    def measure():
        results = {}
        for burst_on in (1.0, 0.3):
            mesh = Mesh(4, 4)
            traffic = TrafficConfig(injection_rate=0.08, burst_on_fraction=burst_on,
                                    burst_phase_length=60, seed=7)
            simulation = NetworkSimulator(mesh, traffic).run(2500, 200)
            report = NocPowerModel(scheme, NocPowerConfig(gating_enabled=True)).evaluate(simulation)
            results[burst_on] = report.gating_net_saving * 1e3
        return results

    savings = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[burst_on, saving] for burst_on, saving in savings.items()]
    print()
    print(render_table(["burst on-fraction", "gating net saving (mW)"], rows,
                       title="Gating benefit vs traffic burstiness (DPC crossbar)"))
    assert savings[0.3] >= 0.0
