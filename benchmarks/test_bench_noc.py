"""NoC-level benchmarks: the standby mode under realistic traffic.

The paper motivates its standby mode with router idle periods; these
benchmarks measure idle-interval distributions on a mesh under several
traffic patterns and injection rates, then apply the Table 1 break-even
thresholds to report how much of the idle leakage each scheme actually
recovers.

Every mesh/traffic/simulation knob comes from the ``noc.*`` branch of
:class:`~repro.core.config.ExperimentConfig` via dotted config paths —
the same vocabulary the engine sweeps and the service accepts — so the
workload these benches measure is one ``with_overrides`` call away from
any other (wider meshes, hotter spots, longer runs), not a hard-coded
constant.
"""

from __future__ import annotations

from repro import ExperimentConfig, create_scheme, default_45nm, get_path
from repro.analysis import render_table
from repro.noc import (
    GatingPolicy,
    NocPowerConfig,
    NocPowerModel,
    TrafficPattern,
    evaluate_gating,
)
from repro.power import analyse_minimum_idle_time

#: The benches' base point: the paper's config plus the simulated-mesh
#: branch spelled out through dotted paths (all defaults made explicit,
#: so the table titles below can quote the config rather than literals).
BASE_CONFIG = ExperimentConfig().with_overrides(**{
    "noc.mesh_columns": 4,
    "noc.mesh_rows": 4,
    "noc.traffic_seed": 3,
    "noc.simulation_cycles": 2000,
    "noc.warmup_cycles": 200,
})


def _mesh_title(config: ExperimentConfig, suffix: str) -> str:
    columns = get_path(config, "noc.mesh_columns")
    rows = get_path(config, "noc.mesh_rows")
    return f"{columns}x{rows} mesh, {suffix}"


def _simulate(config: ExperimentConfig):
    """Run the simulation the config's ``noc`` branch describes."""
    noc = config.noc if config.noc is not None else NocPowerConfig()
    return noc.simulate()


def test_noc_idle_interval_distribution(benchmark):
    """Idle-interval statistics of crossbar output ports under three patterns."""
    base = BASE_CONFIG.with_overrides(**{"noc.injection_rate": 0.1})

    def measure():
        results = {}
        for pattern in (TrafficPattern.UNIFORM, TrafficPattern.TRANSPOSE,
                        TrafficPattern.HOTSPOT):
            config = base.with_overrides(**{"noc.traffic_pattern": pattern.value})
            result = _simulate(config)
            intervals = result.idle_intervals()
            results[pattern.value] = {
                "latency": result.average_latency,
                "utilisation": result.average_crossbar_utilisation,
                "intervals": len(intervals),
                "mean_interval": sum(intervals) / len(intervals) if intervals else 0.0,
                "long_intervals": sum(1 for i in intervals if i >= 10),
            }
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [pattern, values["latency"], values["utilisation"] * 100, values["intervals"],
         values["mean_interval"], values["long_intervals"]]
        for pattern, values in results.items()
    ]
    print()
    rate = get_path(base, "noc.injection_rate")
    print(render_table(
        ["pattern", "avg latency (cyc)", "xbar util (%)", "idle intervals",
         "mean interval (cyc)", "intervals >= 10 cyc"],
        rows, title=_mesh_title(base, f"injection {rate} flits/node/cycle"),
    ))
    for values in results.values():
        assert values["mean_interval"] >= 1.0


def test_noc_power_gating_savings_per_scheme(benchmark):
    """Net leakage energy recovered by the standby mode for each scheme."""
    library = default_45nm()
    config = BASE_CONFIG.with_overrides(**{"noc.injection_rate": 0.08})
    simulation = _simulate(config)
    intervals = simulation.idle_intervals()

    def measure():
        results = {}
        for name in ("SC", "DFC", "DPC", "SDFC", "SDPC"):
            scheme = create_scheme(name, library)
            analysis = analyse_minimum_idle_time(scheme)
            # Apply one port's measured idle pattern to the whole crossbar:
            # idle/standby powers and the transition energy are all
            # whole-crossbar figures, so the report's ratios are consistent.
            idle_power = scheme.idle_leakage().power(scheme.supply_voltage)
            standby_power = scheme.standby_leakage_power()
            report = evaluate_gating(
                intervals, simulation.cycles, analysis, idle_power, standby_power,
                GatingPolicy(idle_detect_cycles=max(2, analysis.minimum_idle_cycles)),
            )
            results[name] = report
        return results

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [name, report.gated_fraction_of_idle * 100, report.sleep_transitions,
         report.net_energy_saved * 1e9, report.saving_fraction * 100]
        for name, report in reports.items()
    ]
    print()
    print(render_table(
        ["scheme", "idle cycles gated (%)", "sleep transitions", "net energy saved (nJ)",
         "saving vs idle leakage (%)"],
        rows, title="Power gating under uniform traffic (whole-crossbar figures)",
    ))
    # The deepest standby states (pre-charged schemes) recover the most idle
    # leakage; no scheme may lose energy when the policy respects its own
    # break-even threshold.
    assert reports["DPC"].saving_fraction >= reports["DFC"].saving_fraction
    assert reports["SDPC"].saving_fraction >= reports["DFC"].saving_fraction
    for report in reports.values():
        assert report.net_energy_saved >= 0.0


def test_noc_injection_rate_sweep(benchmark):
    """Network power versus offered load for the SC and SDPC crossbars."""
    library = default_45nm()
    base = BASE_CONFIG.with_overrides(**{"noc.simulation_cycles": 1500})
    rates = [0.02, 0.1, 0.25]

    def measure():
        results = {}
        for rate in rates:
            config = base.with_overrides(**{"noc.injection_rate": rate})
            simulation = _simulate(config)
            row = {"utilisation": simulation.average_crossbar_utilisation * 100}
            for name in ("SC", "SDPC"):
                scheme = create_scheme(name, library)
                report = NocPowerModel(scheme, NocPowerConfig(gating_enabled=True)).evaluate(simulation)
                row[name] = report.total * 1e3
                row[f"{name}_leak"] = report.crossbar_leakage * 1e3
            results[rate] = row
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [rate, values["utilisation"], values["SC"], values["SDPC"],
         values["SC_leak"], values["SDPC_leak"]]
        for rate, values in results.items()
    ]
    print()
    print(render_table(
        ["injection (flits/node/cyc)", "xbar util (%)", "SC total (mW)", "SDPC total (mW)",
         "SC xbar leak (mW)", "SDPC xbar leak (mW)"],
        rows, title=_mesh_title(base, "network power vs offered load (gating enabled)"),
    ))
    for values in results.values():
        assert values["SDPC_leak"] < values["SC_leak"]


def test_noc_gating_benefit_grows_with_burstiness(benchmark):
    """Bursty traffic lengthens idle intervals and increases the gating benefit."""
    library = default_45nm()
    scheme = create_scheme("DPC", library)
    base = BASE_CONFIG.with_overrides(**{
        "noc.injection_rate": 0.08,
        "noc.traffic_burst_phase_length": 60,
        "noc.traffic_seed": 7,
        "noc.simulation_cycles": 2500,
    })

    def measure():
        results = {}
        for burst_on in (1.0, 0.3):
            config = base.with_overrides(
                **{"noc.traffic_burst_on_fraction": burst_on})
            simulation = _simulate(config)
            report = NocPowerModel(scheme, NocPowerConfig(gating_enabled=True)).evaluate(simulation)
            results[burst_on] = report.gating_net_saving * 1e3
        return results

    savings = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[burst_on, saving] for burst_on, saving in savings.items()]
    print()
    print(render_table(["burst on-fraction", "gating net saving (mW)"], rows,
                       title="Gating benefit vs traffic burstiness (DPC crossbar)"))
    assert savings[0.3] >= 0.0
