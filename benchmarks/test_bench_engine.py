"""Throughput benchmarks for the design-space engine.

Measures points/second over a 32-point grid for the serial and process
executors, verifies the two paths agree bit-for-bit, and verifies a
re-run is served entirely from the cache.

When ``REPRO_BENCH_GATE=1`` (set by the bench smoke job and
``scripts/ci_check.sh``, not by plain ``pytest``): the regression
baseline is the *rolling median* of serial throughput over the recent
``BENCH_history.json`` records (falling back to the committed
``BENCH_engine.json`` snapshot while the history is short) — the run
fails if serial throughput drops below a third of it — and the fresh
numbers are merged back into ``BENCH_engine.json`` plus appended to the
history, so CI tracks the perf trajectory across PRs.  The median
resists one anomalously fast run poisoning the baseline; the 3x margin
absorbs runner-to-runner noise — hardware differs between the machine
that committed the baseline and the machine re-running it — while
still catching a hot path going off a cliff.  Tier-1 runs collect this
file too, so both the gate and the baseline rewrite stay opt-in:
functional CI must be machine-speed-independent.

Honesty note: the recorded ``cpu_count`` matters — on a single-core
container the process executor cannot beat serial (pool start-up is pure
overhead), so the speedup column only becomes meaningful on multi-core
runners.
"""

from __future__ import annotations

import os
import time

from repro import DesignSpace, Evaluator, paper_experiment

#: Fail the smoke job when serial points/sec falls below baseline/3.
REGRESSION_FACTOR = 3.0

#: The regression gate and the BENCH_engine.json rewrite only run when
#: the bench smoke job opts in (ci_check.sh / the CI bench job set this).
#: Plain `pytest` collects this file too — tier-1 must stay functional
#: (machine-speed-independent) and must not silently replace the
#: committed baseline on every developer run.
GATE_ENABLED = os.environ.get("REPRO_BENCH_GATE") == "1"

SCHEMES = ["SC", "SDPC"]
GRID = {
    "static_probability": [0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.9],
    "temperature_celsius": [25.0, 55.0, 85.0, 110.0],
}


def _timed_evaluate(evaluator: Evaluator, space: DesignSpace):
    start = time.perf_counter()
    results = evaluator.evaluate(space)
    return results, time.perf_counter() - start


def test_engine_throughput_and_cache(benchmark, bench_store):
    """Serial vs process points/sec, executor parity, 100 % cache re-run,
    and the >3x throughput-regression gate against the rolling median."""
    baseline_pps = bench_store.rolling_baseline("serial_points_per_second")
    space = DesignSpace.grid(GRID)
    assert len(space) >= 32

    serial = Evaluator(base_config=paper_experiment(), scheme_names=SCHEMES,
                       executor="serial")
    serial_results, serial_s = benchmark.pedantic(
        lambda: _timed_evaluate(serial, space), rounds=1, iterations=1)
    assert serial_results.cache_hit_count == 0

    process = Evaluator(base_config=paper_experiment(), scheme_names=SCHEMES,
                        executor="process")
    process_results, process_s = _timed_evaluate(process, space)

    # The process path must be bit-identical to the serial path.
    assert [p.records for p in process_results] == [p.records for p in serial_results]

    # A second identical run hits the cache on every point.
    cached_results, cached_s = _timed_evaluate(serial, space)
    assert cached_results.cache_hit_count == len(space)
    assert [p.records for p in cached_results] == [p.records for p in serial_results]

    points = len(space)
    payload = {
        "grid_points": points,
        "schemes": SCHEMES,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_s,
        "process_seconds": process_s,
        "cached_seconds": cached_s,
        "serial_points_per_second": points / serial_s,
        "process_points_per_second": points / process_s,
        "cached_points_per_second": points / cached_s,
        "process_speedup_vs_serial": serial_s / process_s,
        "cache_speedup_vs_serial": serial_s / cached_s,
        "cache_hit_rate_second_run": cached_results.cache_hit_count / points,
        "baseline_serial_points_per_second": baseline_pps,
    }
    print()
    print(f"engine throughput ({points} points, schemes {SCHEMES}, "
          f"{payload['cpu_count']} cpu):")
    print(f"  serial : {payload['serial_points_per_second']:8.1f} points/s")
    print(f"  process: {payload['process_points_per_second']:8.1f} points/s "
          f"({payload['process_speedup_vs_serial']:.2f}x serial)")
    print(f"  cached : {payload['cached_points_per_second']:8.1f} points/s "
          f"({payload['cache_speedup_vs_serial']:.0f}x serial)")
    if baseline_pps is not None:
        print(f"  gate   : rolling-median baseline {baseline_pps:.1f} points/s "
              f"(window {bench_store.ROLLING_WINDOW}), "
              f"fail below {baseline_pps / REGRESSION_FACTOR:.1f}")

    # The cache must still beat re-evaluating.  The margin was 10x before
    # the leakage-kernel fast path; with warm kernels a serial point now
    # costs ~0.5 ms, so a disk-backed cache hit is only a small multiple
    # faster — the speedup that matters (vs the pre-kernel 263 points/s
    # cold cost) is tracked by the regression gate below.
    assert payload["cache_speedup_vs_serial"] > 2.0

    if not GATE_ENABLED:
        return

    # Throughput-regression gate (bench smoke job only).  Runs BEFORE the
    # new record is written: a failing run must leave the old baseline in
    # place, or one local re-run would measure against the regressed value
    # and wave it through (the printed numbers document the failing run).
    if baseline_pps is not None:
        floor = baseline_pps / REGRESSION_FACTOR
        assert payload["serial_points_per_second"] >= floor, (
            f"serial throughput regressed more than {REGRESSION_FACTOR:.0f}x: "
            f"{payload['serial_points_per_second']:.1f} points/s vs "
            f"rolling-median baseline {baseline_pps:.1f} (floor {floor:.1f})"
        )

    # Merge (not overwrite): the service bench contributes its own keys
    # to the same snapshot.  The history gets one compact record per run
    # so the gate's rolling median has a trend to stand on.
    bench_store.merge(payload)
    bench_store.append_history({
        "bench": "engine",
        "cpu_count": payload["cpu_count"],
        "grid_points": points,
        "serial_points_per_second": payload["serial_points_per_second"],
        "process_points_per_second": payload["process_points_per_second"],
        "cached_points_per_second": payload["cached_points_per_second"],
    })


def test_engine_disk_cache_cold_start(benchmark, tmp_path):
    """A fresh process (simulated: fresh evaluator) reuses the disk cache."""
    space = DesignSpace.grid({"static_probability": [0.25, 0.5, 0.75]})
    warm = Evaluator(scheme_names=SCHEMES, cache_dir=tmp_path / "engine-cache")
    benchmark.pedantic(lambda: warm.evaluate(space), rounds=1, iterations=1)

    cold = Evaluator(scheme_names=SCHEMES, cache_dir=tmp_path / "engine-cache")
    results = cold.evaluate(space)
    assert results.cache_hit_count == len(space)
    assert cold.cache.stats.disk_hits == len(space)
