"""Benchmarks: regenerate the quantitative content of Figures 1-3.

The figures are circuit schematics; the reproducible content is the
device inventory / Vt partition of one output path (Figs. 1, 2) and the
path-1 vs path-2 asymmetry of the segmented designs (Fig. 3).
"""

from __future__ import annotations

from repro import create_scheme, default_45nm
from repro.analysis import describe_output_path, describe_segmentation, render_table


def test_fig1_dfc_structure(benchmark):
    """Figure 1: the DFC output path (pass devices, keeper, sleep, driver, Vt split)."""
    library = default_45nm()

    def build():
        return {name: describe_output_path(create_scheme(name, library)) for name in ("SC", "DFC")}

    structures = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for name, structure in structures.items():
        rows.append([
            name, structure.device_count, structure.pass_transistor_count,
            structure.has_keeper, structure.has_sleep, structure.high_vt_count,
            ", ".join(structure.high_vt_roles) or "-",
        ])
    print()
    print(render_table(
        ["scheme", "devices", "pass xtors", "keeper", "sleep", "high-Vt devices", "high-Vt roles"],
        rows, title="Figure 1: DFC output path structure (SC shown for contrast)",
    ))
    dfc = structures["DFC"]
    assert dfc.pass_transistor_count == 4
    assert dfc.has_keeper and dfc.has_sleep and not dfc.has_precharge
    assert set(dfc.high_vt_roles) == {"keeper", "sleep"}


def test_fig2_dpc_structure(benchmark):
    """Figure 2: the DPC output path (pre-charge device, asymmetric-Vt driver)."""
    library = default_45nm()

    def build():
        return describe_output_path(create_scheme("DPC", library))

    structure = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(render_table(
        ["devices", "pass xtors", "precharge", "sleep", "high-Vt", "nominal-Vt", "high-Vt roles"],
        [[structure.device_count, structure.pass_transistor_count, structure.has_precharge,
          structure.has_sleep, structure.high_vt_count, structure.nominal_vt_count,
          ", ".join(structure.high_vt_roles)]],
        title="Figure 2: DPC output path structure",
    ))
    assert structure.has_precharge and not structure.has_keeper
    assert "driver" in structure.high_vt_roles and "precharge" in structure.high_vt_roles
    # Asymmetric driver: some driver devices stay nominal.
    assert structure.nominal_vt_count > 0


def test_fig3_segmentation_paths(benchmark):
    """Figure 3: path 1 (near) vs path 2 (far) loads and delays in SDFC / SDPC."""
    library = default_45nm()

    def build():
        return {
            name: describe_segmentation(create_scheme(name, library))
            for name in ("SDFC", "SDPC")
        }

    structures = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for name, seg in structures.items():
        rows.append([
            name, seg.near_inputs, seg.far_inputs,
            seg.near_wire_resistance, seg.far_wire_resistance,
            seg.near_wire_capacitance * 1e15, seg.far_wire_capacitance * 1e15,
            seg.near_path_delay * 1e12, seg.far_path_delay * 1e12,
            seg.near_path_slack_fraction * 100.0,
        ])
    print()
    print(render_table(
        ["scheme", "near inputs", "far inputs", "near R (ohm)", "far R (ohm)",
         "near C (fF)", "far C (fF)", "path1 delay (ps)", "path2 delay (ps)", "path1 slack (%)"],
        rows, title="Figure 3: segmented crossbar path-1 / path-2 asymmetry",
    ))
    for seg in structures.values():
        assert seg.far_path_delay > seg.near_path_delay
        assert seg.near_path_slack_fraction > 0.1


def test_fig3_per_segment_control_inventory(benchmark):
    """Figure 3: per-segment sleep (and pre-charge) devices of the segmented schemes."""
    library = default_45nm()

    def build():
        result = {}
        for name in ("DFC", "SDFC", "DPC", "SDPC"):
            from repro.circuit import DeviceRole

            stats = create_scheme(name, library).output_path_netlist().statistics()
            result[name] = {
                "sleep": stats.count_by_role.get(DeviceRole.SLEEP, 0),
                "precharge": stats.count_by_role.get(DeviceRole.PRECHARGE, 0),
                "segment_switch": stats.count_by_role.get(DeviceRole.SEGMENT_SWITCH, 0),
            }
        return result

    inventory = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [[name, counts["sleep"], counts["precharge"], counts["segment_switch"]]
            for name, counts in inventory.items()]
    print()
    print(render_table(["scheme", "sleep devices", "precharge devices", "segment switches"],
                       rows, title="Figure 3: per-segment control devices (per bit, per output)"))
    assert inventory["SDFC"]["sleep"] == 2 * inventory["DFC"]["sleep"]
    assert inventory["SDPC"]["precharge"] == 2 * inventory["DPC"]["precharge"]
