"""Load smoke for the async evaluation service.

Round-trips a burst of mixed traffic — warm repeats (cache hits), fresh
points (batched misses) and concurrent duplicates (coalesced) — through
the HTTP front on a loopback socket, and measures end-to-end queries
per second *including* the protocol cost.  Under ``REPRO_BENCH_GATE=1``
the throughput record is merged into ``BENCH_engine.json`` (service_*
keys, alongside the engine bench's keys) and appended to
``BENCH_history.json``, so the serving trend is tracked next to the raw
engine trend.

The serial executor keeps the smoke honest on the 1-CPU CI container;
on multicore runners the batching path is where ``--executor process``
turns the same burst into a pool fan-out.
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.engine import EvaluationServer, EvaluationService, ServiceClient

GATE_ENABLED = os.environ.get("REPRO_BENCH_GATE") == "1"

#: Fail the smoke when throughput drops below rolling-median/3 — the
#: same margin as the engine gate (absorbs runner-to-runner noise,
#: catches a hot path going off a cliff).
REGRESSION_FACTOR = 3.0

#: The q/s gate arms only once this many history records carry the
#: metric: a single-sample baseline would gate on noise.
MIN_GATE_RECORDS = 5

SCHEMES = ["SC", "SDPC"]

#: Evaluated up front, so their burst repeats are pure cache hits.
WARM_POINTS = [{"static_probability": p} for p in (0.1, 0.25, 0.5, 0.75)]
#: Fresh misses the burst batches through the executor.
FRESH_POINTS = [{"static_probability": p} for p in (0.15, 0.35, 0.65, 0.85)]
#: Two distinct new points, each queried three times concurrently — the
#: duplicates should coalesce onto the first query's evaluation.
DUPLICATED_POINTS = [{"temperature_celsius": t} for t in (40.0, 70.0)]

BURST = WARM_POINTS * 4 + FRESH_POINTS + DUPLICATED_POINTS * 3


async def _run_load() -> tuple[list[dict], float, dict]:
    service = EvaluationService(scheme_names=SCHEMES, executor="serial",
                                max_batch_size=8, flush_interval=0.005)
    server = await EvaluationServer(service, host="127.0.0.1", port=0).start()
    client = ServiceClient("127.0.0.1", server.port)
    try:
        warmed = await asyncio.gather(
            *[client.evaluate(query) for query in WARM_POINTS])
        assert all(not answer["from_cache"] for answer in warmed)

        start = time.perf_counter()
        answers = await asyncio.gather(
            *[client.evaluate(query) for query in BURST])
        elapsed = time.perf_counter() - start
        stats = await client.stats()
    finally:
        await server.stop()
        await service.stop()
    return answers, elapsed, stats


def test_service_load_smoke(benchmark, bench_store):
    """Mixed hit/miss/coalesce burst through the HTTP front, recorded as
    service_* keys in BENCH_engine.json plus a history entry."""
    answers, elapsed, stats = benchmark.pedantic(
        lambda: asyncio.run(_run_load()), rounds=1, iterations=1)

    assert len(answers) == len(BURST)
    assert all(len(answer["records"]) == len(SCHEMES) for answer in answers)
    hits = sum(answer["from_cache"] for answer in answers)
    coalesced = sum(answer["coalesced"] for answer in answers)
    # The 16 warm repeats must all be cache hits; the other 10 queries
    # split between evaluated misses, coalesced duplicates and (when a
    # duplicate arrives after its twin completed) extra hits — the split
    # depends on arrival timing, the accounting identity cannot.
    assert hits >= len(WARM_POINTS) * 4
    assert hits + coalesced + stats["service"]["evaluated"] - len(WARM_POINTS) \
        == len(BURST)
    assert stats["service"]["batches"] >= 1

    queries_per_second = len(answers) / elapsed
    payload = {
        "service_burst_queries": len(answers),
        "service_burst_seconds": elapsed,
        "service_queries_per_second": queries_per_second,
        "service_cache_hits": hits,
        "service_coalesced": coalesced,
        "service_evaluated": stats["service"]["evaluated"] - len(WARM_POINTS),
        "service_batches": stats["service"]["batches"],
        "service_largest_batch": stats["service"]["largest_batch"],
    }
    print()
    print(f"service load smoke ({len(answers)} queries over HTTP, "
          f"schemes {SCHEMES}):")
    print(f"  end-to-end: {queries_per_second:8.1f} queries/s "
          f"({elapsed * 1e3:.1f} ms total)")
    print(f"  mix       : {hits} hits, {payload['service_evaluated']} "
          f"evaluated in {payload['service_batches']} batches, "
          f"{coalesced} coalesced")

    if not GATE_ENABLED:
        return

    # Throughput-regression gate, armed once the history holds enough
    # records for a meaningful rolling median.  Runs BEFORE the new
    # record is written, so a failing run cannot poison its own baseline.
    bench_store.regression_gate(
        "service_queries_per_second", queries_per_second,
        regression_factor=REGRESSION_FACTOR,
        min_records=MIN_GATE_RECORDS,
        label="gate      ",
    )

    bench_store.merge(payload)
    bench_store.append_history({
        "bench": "service",
        "cpu_count": os.cpu_count(),
        "service_queries_per_second": queries_per_second,
    })
