"""Benchmark: regenerate every row of the paper's Table 1.

Each test times the evaluation that produces one row group and prints
the measured values next to the paper's, in the paper's column order
(SC, DFC, DPC, SDFC, SDPC).
"""

from __future__ import annotations

from repro import compare_schemes, create_scheme, default_45nm, paper_experiment
from repro.analysis import render_table
from repro.power import analyse_leakage, analyse_minimum_idle_time, analyse_total_power

SCHEMES = ["SC", "DFC", "DPC", "SDFC", "SDPC"]


def test_table1_full_comparison(benchmark, paper_values):
    """Time the end-to-end Table 1 regeneration and print the whole table."""
    comparison = benchmark.pedantic(
        lambda: compare_schemes(paper_experiment()), rounds=1, iterations=1
    )
    print()
    print(comparison.as_table_text())


def test_table1_delay_rows(benchmark, table1_records, paper_values):
    """Delay rows: high-to-low and low-to-high / pre-charge delay (ps)."""
    library = default_45nm()

    def measure_delays():
        return {name: create_scheme(name, library).delay_report() for name in SCHEMES}

    reports = benchmark.pedantic(measure_delays, rounds=1, iterations=1)
    rows = []
    for name in SCHEMES:
        rows.append([
            name,
            reports[name].high_to_low * 1e12,
            paper_values[name]["hl_ps"],
            reports[name].low_to_high * 1e12,
            paper_values[name]["lh_ps"],
        ])
    print()
    print(render_table(
        ["scheme", "HL meas (ps)", "HL paper (ps)", "LH meas (ps)", "LH paper (ps)"],
        rows, title="Table 1 delay rows",
    ))


def test_table1_leakage_rows(benchmark, paper_values):
    """Active and standby leakage savings versus SC (percent)."""
    library = default_45nm()

    def measure_leakage():
        analyses = {name: analyse_leakage(create_scheme(name, library)) for name in SCHEMES}
        baseline = analyses["SC"]
        return {
            name: (
                analysis.active_saving_versus(baseline) * 100.0,
                analysis.standby_saving_versus(baseline) * 100.0,
            )
            for name, analysis in analyses.items()
            if name != "SC"
        }

    savings = benchmark.pedantic(measure_leakage, rounds=1, iterations=1)
    rows = []
    for name in SCHEMES[1:]:
        active, standby = savings[name]
        rows.append([
            name, active, paper_values[name]["active_saving"],
            standby, paper_values[name]["standby_saving"],
        ])
    print()
    print(render_table(
        ["scheme", "active meas (%)", "active paper (%)", "standby meas (%)", "standby paper (%)"],
        rows, title="Table 1 leakage-savings rows",
    ))


def test_table1_minimum_idle_time(benchmark, paper_values):
    """Minimum idle time row (cycles at 3 GHz)."""
    library = default_45nm()

    def measure_idle():
        return {
            name: analyse_minimum_idle_time(create_scheme(name, library)).minimum_idle_cycles
            for name in SCHEMES
        }

    cycles = benchmark.pedantic(measure_idle, rounds=1, iterations=1)
    rows = [[name, cycles[name], paper_values[name]["min_idle"]] for name in SCHEMES]
    print()
    print(render_table(["scheme", "measured (cycles)", "paper (cycles)"], rows,
                       title="Table 1 minimum idle time"))


def test_table1_total_power(benchmark, paper_values):
    """Total power row at 3 GHz and 50 % static probability (mW)."""
    library = default_45nm()

    def measure_power():
        return {
            name: analyse_total_power(create_scheme(name, library)).total * 1e3
            for name in SCHEMES
        }

    totals = benchmark.pedantic(measure_power, rounds=1, iterations=1)
    rows = [[name, totals[name], paper_values[name]["total_mw"]] for name in SCHEMES]
    print()
    print(render_table(["scheme", "measured (mW)", "paper (mW)"], rows,
                       title="Table 1 total power (absolute values differ; see EXPERIMENTS.md)"))


def test_table1_delay_penalty_row(benchmark, table1_records, paper_values):
    """Delay penalty row (percent of the SC worst-case delay)."""
    def collect():
        return {name: table1_records[name]["delay_penalty_percent"] for name in SCHEMES}

    penalties = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        [name, penalties[name], paper_values[name]["penalty"] if paper_values[name]["penalty"] is not None else "-"]
        for name in SCHEMES[1:]
    ]
    print()
    print(render_table(["scheme", "measured (%)", "paper (%)"], rows, title="Table 1 delay penalty"))
