"""Slack-driven dual-Vt assignment.

The paper assigns high-Vt devices by hand, guided by which transistors
sit on the critical path and how much slack the non-critical paths have.
This module reproduces that reasoning as an algorithm so the library can
answer "which devices *should* be high-Vt for a given slack budget?",
both to justify the per-scheme assignments the crossbar generators bake
in and to support the design-space exploration example.

The algorithm is a greedy knapsack: every candidate device contributes a
leakage saving if swapped to high-Vt and costs some path delay; sort by
saving per unit delay cost and take candidates while the accumulated
delay fits in the available slack.  Devices off the critical path have
zero delay cost and are always taken — exactly the paper's observation
that the longer slack of path 1 "removes more transistors from the
critical path, allowing designers to use high Vt transistors".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TimingError

__all__ = ["VtCandidate", "VtAssignmentResult", "assign_high_vt"]


@dataclass(frozen=True)
class VtCandidate:
    """One device (or group of identical devices) considered for high-Vt."""

    name: str
    leakage_saving: float
    delay_cost: float
    on_critical_path: bool = True

    def __post_init__(self) -> None:
        if self.leakage_saving < 0:
            raise TimingError(f"candidate {self.name!r}: leakage saving cannot be negative")
        if self.delay_cost < 0:
            raise TimingError(f"candidate {self.name!r}: delay cost cannot be negative")


@dataclass
class VtAssignmentResult:
    """Outcome of a greedy high-Vt assignment."""

    selected: list[VtCandidate] = field(default_factory=list)
    rejected: list[VtCandidate] = field(default_factory=list)
    slack_budget: float = 0.0
    slack_used: float = 0.0

    @property
    def total_leakage_saving(self) -> float:
        """Sum of leakage savings of the selected candidates."""
        return sum(candidate.leakage_saving for candidate in self.selected)

    @property
    def selected_names(self) -> list[str]:
        """Names of selected candidates (stable order)."""
        return [candidate.name for candidate in self.selected]


def assign_high_vt(candidates: list[VtCandidate], slack_budget: float) -> VtAssignmentResult:
    """Greedy slack-constrained high-Vt assignment.

    Off-critical-path candidates are always selected (their delay cost is
    not charged against the slack budget — they are limited by their own
    path's slack, which the caller has already established is ample).
    Critical-path candidates are charged against ``slack_budget``.
    """
    if slack_budget < 0:
        raise TimingError("slack budget cannot be negative")
    result = VtAssignmentResult(slack_budget=slack_budget)
    off_critical = [candidate for candidate in candidates if not candidate.on_critical_path]
    on_critical = [candidate for candidate in candidates if candidate.on_critical_path]
    result.selected.extend(off_critical)

    def efficiency(candidate: VtCandidate) -> float:
        if candidate.delay_cost == 0:
            return float("inf")
        return candidate.leakage_saving / candidate.delay_cost

    remaining = slack_budget
    for candidate in sorted(on_critical, key=efficiency, reverse=True):
        if candidate.delay_cost <= remaining:
            result.selected.append(candidate)
            remaining -= candidate.delay_cost
        else:
            result.rejected.append(candidate)
    result.slack_used = slack_budget - remaining
    return result
