"""Timing substrate: paths, delay analysis, slack and dual-Vt assignment.

See ``DESIGN.md`` S4.
"""

from .delay_analysis import DelayReport, contention_factor, pass_rise_penalty
from .path import TimingPath, TimingStage
from .slack import SlackReport, required_time_from_clock
from .vt_assignment import VtAssignmentResult, VtCandidate, assign_high_vt

__all__ = [
    "DelayReport",
    "SlackReport",
    "TimingPath",
    "TimingStage",
    "VtAssignmentResult",
    "VtCandidate",
    "assign_high_vt",
    "contention_factor",
    "pass_rise_penalty",
    "required_time_from_clock",
]
