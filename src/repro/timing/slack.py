"""Slack bookkeeping.

The paper's argument for the segmented schemes is a slack argument: the
near-segment path (path 1 in Fig. 3a) is faster than the far-segment
path (path 2), so with the clock period set by path 2 the near path has
positive slack, and that slack can be spent on high-Vt devices.  This
module provides the small amount of machinery that argument needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TimingError

__all__ = ["SlackReport", "required_time_from_clock"]


def required_time_from_clock(clock_period: float, utilisation: float = 1.0) -> float:
    """Required arrival time given a clock period and a utilisation budget.

    ``utilisation`` is the fraction of the cycle the crossbar traversal
    is allowed to use (the rest goes to arbitration, buffer read, link
    traversal).  The paper's delays (~60 ps at a 333 ps cycle) imply a
    crossbar budget of roughly 20 % of the cycle, which is the default
    used by the experiment configuration.
    """
    if clock_period <= 0:
        raise TimingError("clock period must be positive")
    if not 0.0 < utilisation <= 1.0:
        raise TimingError("utilisation must be in (0, 1]")
    return clock_period * utilisation


@dataclass(frozen=True)
class SlackReport:
    """Arrival vs. required time for one path."""

    path_name: str
    arrival_time: float
    required_time: float

    def __post_init__(self) -> None:
        if self.arrival_time <= 0:
            raise TimingError("arrival time must be positive")
        if self.required_time <= 0:
            raise TimingError("required time must be positive")

    @property
    def slack(self) -> float:
        """Positive slack means the path is faster than required (seconds)."""
        return self.required_time - self.arrival_time

    @property
    def is_met(self) -> bool:
        """True if the path meets its required time."""
        return self.slack >= 0.0

    @property
    def slack_fraction(self) -> float:
        """Slack as a fraction of the required time."""
        return self.slack / self.required_time
