"""Delay-analysis helpers shared by the crossbar schemes.

Two quantities recur throughout the schemes' timing models:

* **Contention inflation** — when a transition must overpower a keeper,
  the net current available to move the node is the driver current minus
  the keeper current, so the delay inflates by
  ``I_drive / (I_drive - I_keeper)``.  The dual-Vt schemes weaken the
  keeper, shrinking this factor, which is why the DFC's high-to-low
  delay is *faster* than the single-Vt baseline in Table 1.
* **Pass-transistor rise degradation** — an NMOS pass device pulls a
  node up only to ``Vdd - Vt`` and does so with a degraded overdrive, so
  the low-to-high transition through the crossbar is slower than the
  high-to-low one unless a keeper or pre-charge device completes the
  swing.

The :class:`DelayReport` groups the per-scheme results that feed the
Table 1 delay rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TimingError

__all__ = ["contention_factor", "pass_rise_penalty", "DelayReport"]


def contention_factor(drive_current: float, opposing_current: float) -> float:
    """Delay inflation from fighting an opposing (keeper) current.

    Raises if the opposing current is not comfortably smaller than the
    drive current (a keeper that can defeat the driver means the circuit
    does not function, which should fail loudly, not return a huge
    number).
    """
    if drive_current <= 0:
        raise TimingError("drive current must be positive")
    if opposing_current < 0:
        raise TimingError("opposing current cannot be negative")
    if opposing_current >= 0.8 * drive_current:
        raise TimingError(
            "keeper current is within 80% of the drive current; the transition is not robust "
            f"(drive {drive_current:.3e} A vs keeper {opposing_current:.3e} A)"
        )
    return drive_current / (drive_current - opposing_current)


def pass_rise_penalty(supply_voltage: float, pass_threshold_voltage: float) -> float:
    """Delay multiplier for pulling a node high through an NMOS pass device.

    The device saturates as the output approaches ``Vdd - Vt``: the last
    part of the swing is completed by the keeper (feedback schemes) or is
    unnecessary (pre-charged schemes).  The penalty is modelled as the
    ratio of the full swing to the swing the pass device can deliver
    briskly, ``Vdd / (Vdd - Vt)``, which is the standard first-order
    estimate.
    """
    if supply_voltage <= 0:
        raise TimingError("supply voltage must be positive")
    if not 0 < pass_threshold_voltage < supply_voltage:
        raise TimingError("pass-device threshold must lie strictly between 0 and Vdd")
    return supply_voltage / (supply_voltage - pass_threshold_voltage)


@dataclass(frozen=True)
class DelayReport:
    """Worst-case delays of one crossbar scheme (seconds).

    ``high_to_low`` is the output falling transition; ``low_to_high`` is
    the output rising transition for the feedback schemes or the
    pre-charge completion time for the pre-charged schemes (matching how
    Table 1 labels the row).
    """

    scheme: str
    high_to_low: float
    low_to_high: float

    def __post_init__(self) -> None:
        if self.high_to_low <= 0 or self.low_to_high <= 0:
            raise TimingError("delays must be positive")

    @property
    def worst_case(self) -> float:
        """The delay that constrains the crossbar clock period."""
        return max(self.high_to_low, self.low_to_high)

    def penalty_versus(self, baseline: "DelayReport") -> float:
        """Fractional worst-case delay penalty relative to ``baseline``.

        Negative values (the scheme is faster than the baseline) are
        clamped to zero because Table 1 reports "No" penalty in that
        case.
        """
        penalty = self.worst_case / baseline.worst_case - 1.0
        return max(penalty, 0.0)
