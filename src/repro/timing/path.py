"""Timing paths: ordered driver stages with wires, loads and contention.

A crossbar delay path (Figures 1-3) is a chain of stages:

1. the input-port driver pushing the input wire and the pass transistor
   onto the merge node (node A), possibly fighting a keeper;
2. the first driver inverter (I1) switching the internal node;
3. the output inverter (I2) pushing the output wire into the next
   router's input capacitance;
4. for segmented schemes, an extra stage through the segment switch.

Each stage is characterised by an effective driver resistance, an
optional wire (as a pi model), a lumped load capacitance and a
contention factor that inflates the delay when the stage must overpower
a keeper.  The path delay is the sum of the stage delays — standard
stage-based static timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TimingError
from ..interconnect.pi_model import PiModel
from ..circuit.rc_network import LN2

__all__ = ["TimingStage", "TimingPath"]


@dataclass(frozen=True)
class TimingStage:
    """One driver stage of a timing path."""

    name: str
    driver_resistance: float
    load_capacitance: float
    wire: PiModel | None = None
    series_resistance: float = 0.0
    contention_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.driver_resistance < 0:
            raise TimingError(f"stage {self.name!r}: driver resistance cannot be negative")
        if self.load_capacitance < 0:
            raise TimingError(f"stage {self.name!r}: load capacitance cannot be negative")
        if self.series_resistance < 0:
            raise TimingError(f"stage {self.name!r}: series resistance cannot be negative")
        if self.contention_factor < 1.0:
            raise TimingError(
                f"stage {self.name!r}: contention factor is a delay inflation and must be >= 1"
            )

    def delay(self) -> float:
        """50 % delay of this stage in seconds.

        The driver resistance and any series (pass-transistor) resistance
        push through the optional wire into the lumped load; contention
        multiplies the result.
        """
        total_driver = self.driver_resistance + self.series_resistance
        if self.wire is None:
            base = LN2 * total_driver * self.load_capacitance
        else:
            base = self.wire.driver_stage_delay(total_driver, self.load_capacitance)
        return base * self.contention_factor


@dataclass
class TimingPath:
    """An ordered list of stages from a launch point to a capture point."""

    name: str
    stages: list[TimingStage] = field(default_factory=list)

    def add_stage(self, stage: TimingStage) -> None:
        """Append a stage to the path."""
        self.stages.append(stage)

    def delay(self) -> float:
        """Total path delay in seconds."""
        if not self.stages:
            raise TimingError(f"path {self.name!r} has no stages")
        return sum(stage.delay() for stage in self.stages)

    def stage_delays(self) -> dict[str, float]:
        """Per-stage delay breakdown (seconds), keyed by stage name."""
        if not self.stages:
            raise TimingError(f"path {self.name!r} has no stages")
        return {stage.name: stage.delay() for stage in self.stages}

    def critical_stage(self) -> TimingStage:
        """The stage contributing the largest share of the path delay."""
        if not self.stages:
            raise TimingError(f"path {self.name!r} has no stages")
        return max(self.stages, key=lambda stage: stage.delay())
