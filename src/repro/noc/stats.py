"""Simulation statistics: latency, throughput and idle-interval tracking.

The quantity the paper's standby mode lives or dies by is the
distribution of *idle intervals* on each crossbar output port: only
intervals longer than the minimum idle time (Table 1) are worth a sleep
transition.  :class:`IdleIntervalTracker` collects exactly that, per
port, during simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NocError

__all__ = ["IdleIntervalTracker", "LatencyStatistics"]


class IdleIntervalTracker:
    """Tracks busy/idle cycles of one resource and its idle-interval lengths."""

    def __init__(self, name: str = "port") -> None:
        self.name = name
        self.busy_cycles = 0
        self.idle_cycles = 0
        self._current_idle_run = 0
        self._intervals: list[int] = []
        self._closed = False

    def record(self, busy: bool) -> None:
        """Record one cycle of activity."""
        if self._closed:
            raise NocError(f"tracker {self.name!r} already finalised")
        if busy:
            self.busy_cycles += 1
            if self._current_idle_run > 0:
                self._intervals.append(self._current_idle_run)
                self._current_idle_run = 0
        else:
            self.idle_cycles += 1
            self._current_idle_run += 1

    def finalise(self) -> None:
        """Close the trailing idle interval; call once when simulation ends."""
        if self._closed:
            return
        if self._current_idle_run > 0:
            self._intervals.append(self._current_idle_run)
            self._current_idle_run = 0
        self._closed = True

    @property
    def total_cycles(self) -> int:
        """Total recorded cycles."""
        return self.busy_cycles + self.idle_cycles

    @property
    def idle_fraction(self) -> float:
        """Fraction of cycles the resource was idle."""
        if self.total_cycles == 0:
            return 0.0
        return self.idle_cycles / self.total_cycles

    def idle_intervals(self) -> list[int]:
        """All completed idle intervals (call :meth:`finalise` first)."""
        if not self._closed:
            raise NocError(f"tracker {self.name!r} must be finalised before reading intervals")
        return list(self._intervals)

    def intervals_of_at_least(self, threshold: int) -> list[int]:
        """Idle intervals no shorter than ``threshold`` cycles."""
        if threshold < 1:
            raise NocError("threshold must be at least one cycle")
        return [interval for interval in self.idle_intervals() if interval >= threshold]

    def gateable_idle_fraction(self, threshold: int) -> float:
        """Fraction of all cycles spent in idle intervals >= ``threshold``."""
        if self.total_cycles == 0:
            return 0.0
        gateable = sum(self.intervals_of_at_least(threshold))
        return gateable / self.total_cycles


@dataclass
class LatencyStatistics:
    """Injection / ejection counters and latency accumulation."""

    injected_flits: int = 0
    ejected_flits: int = 0
    total_latency_cycles: int = 0
    latencies: list[int] = field(default_factory=list)

    def record_injection(self, count: int = 1) -> None:
        """Count injected flits."""
        self.injected_flits += count

    def record_ejection(self, latency: int) -> None:
        """Count one ejected flit and its latency."""
        if latency < 0:
            raise NocError("latency cannot be negative")
        self.ejected_flits += 1
        self.total_latency_cycles += latency
        self.latencies.append(latency)

    @property
    def average_latency(self) -> float:
        """Mean flit latency in cycles."""
        if self.ejected_flits == 0:
            return 0.0
        return self.total_latency_cycles / self.ejected_flits

    def throughput(self, cycles: int, node_count: int) -> float:
        """Accepted traffic in flits per node per cycle."""
        if cycles <= 0 or node_count <= 0:
            raise NocError("cycles and node count must be positive")
        return self.ejected_flits / (cycles * node_count)
