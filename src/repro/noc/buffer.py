"""Router input buffers.

A bounded FIFO of flits with occupancy statistics.  The buffer also
carries a simple leakage figure per storage cell so the network power
roll-up can include buffer leakage in the style of Chen & Peh (the
paper's reference [1] — buffer leakage optimisation is explicitly the
prior work the crossbar schemes complement).
"""

from __future__ import annotations

from collections import deque

from ..errors import NocError
from .flit import Flit

__all__ = ["FlitBuffer"]


class FlitBuffer:
    """Bounded FIFO of flits."""

    def __init__(self, capacity: int, name: str = "buffer") -> None:
        if capacity < 1:
            raise NocError(f"buffer capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._queue: deque[Flit] = deque()
        self.peak_occupancy = 0
        self.total_pushes = 0
        self.occupancy_cycles = 0
        self.observed_cycles = 0

    # -- FIFO operations ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        """Number of flits currently stored."""
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        """True if no more flits can be accepted."""
        return len(self._queue) >= self.capacity

    @property
    def is_empty(self) -> bool:
        """True if the buffer holds no flits."""
        return not self._queue

    def push(self, flit: Flit) -> None:
        """Append a flit; raises if the buffer is full (back-pressure bug guard)."""
        if self.is_full:
            raise NocError(f"buffer {self.name!r} overflow (capacity {self.capacity})")
        self._queue.append(flit)
        self.total_pushes += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._queue))

    def peek(self) -> Flit:
        """The head-of-line flit without removing it."""
        if not self._queue:
            raise NocError(f"buffer {self.name!r} is empty")
        return self._queue[0]

    def pop(self) -> Flit:
        """Remove and return the head-of-line flit."""
        if not self._queue:
            raise NocError(f"buffer {self.name!r} is empty")
        return self._queue.popleft()

    # -- statistics ------------------------------------------------------------------
    def record_cycle(self) -> None:
        """Accumulate occupancy statistics; call once per simulated cycle."""
        self.occupancy_cycles += len(self._queue)
        self.observed_cycles += 1

    @property
    def average_occupancy(self) -> float:
        """Mean occupancy over the recorded cycles."""
        if self.observed_cycles == 0:
            return 0.0
        return self.occupancy_cycles / self.observed_cycles

    @property
    def utilisation(self) -> float:
        """Average occupancy as a fraction of capacity."""
        return self.average_occupancy / self.capacity
