"""Synthetic traffic generation.

The standard NoC evaluation patterns: uniform random, transpose,
bit-complement, hotspot, plus a bursty (on/off) modulation that creates
exactly the long idle intervals the standby mode exploits.  Generation
is deterministic for a given seed so simulations are reproducible in
tests and benchmarks.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from ..errors import NocError
from .flit import Packet

__all__ = ["TrafficPattern", "TrafficConfig", "TrafficGenerator"]


class TrafficPattern(enum.Enum):
    """Spatial destination distribution."""

    UNIFORM = "uniform"
    TRANSPOSE = "transpose"
    BIT_COMPLEMENT = "bit_complement"
    HOTSPOT = "hotspot"


@dataclass(frozen=True)
class TrafficConfig:
    """Traffic workload description.

    ``injection_rate`` is in flits per node per cycle; with
    ``packet_length`` flits per packet the packet generation probability
    per cycle is ``injection_rate / packet_length``.  ``burst_on_fraction``
    below 1.0 turns on on/off burstiness: nodes alternate between an
    active phase (generating at ``injection_rate / burst_on_fraction``)
    and a silent phase, with the given average phase length.
    """

    injection_rate: float = 0.1
    packet_length: int = 4
    pattern: TrafficPattern = TrafficPattern.UNIFORM
    hotspot_node: tuple[int, int] | None = None
    hotspot_fraction: float = 0.2
    burst_on_fraction: float = 1.0
    burst_phase_length: int = 50
    seed: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.injection_rate <= 1.0:
            raise NocError("injection rate must be in [0, 1] flits/node/cycle")
        if self.packet_length < 1:
            raise NocError("packet length must be at least one flit")
        if not 0.0 < self.burst_on_fraction <= 1.0:
            raise NocError("burst on-fraction must be in (0, 1]")
        if self.burst_phase_length < 1:
            raise NocError("burst phase length must be at least one cycle")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise NocError("hotspot fraction must be in [0, 1]")
        if self.pattern is TrafficPattern.HOTSPOT and self.hotspot_node is None:
            raise NocError("hotspot traffic needs a hotspot node")


class TrafficGenerator:
    """Generates packets for every node of a ``columns x rows`` mesh."""

    def __init__(self, config: TrafficConfig, columns: int, rows: int) -> None:
        if columns < 1 or rows < 1:
            raise NocError("mesh dimensions must be positive")
        self.config = config
        self.columns = columns
        self.rows = rows
        self._random = random.Random(config.seed)
        self._burst_state: dict[tuple[int, int], bool] = {}
        self._burst_timer: dict[tuple[int, int], int] = {}
        self.generated_packets = 0

    # -- destination selection -----------------------------------------------------
    def _destination(self, source: tuple[int, int]) -> tuple[int, int]:
        config = self.config
        if config.pattern is TrafficPattern.TRANSPOSE:
            destination = (source[1] % self.columns, source[0] % self.rows)
        elif config.pattern is TrafficPattern.BIT_COMPLEMENT:
            destination = (self.columns - 1 - source[0], self.rows - 1 - source[1])
        elif config.pattern is TrafficPattern.HOTSPOT:
            if self._random.random() < config.hotspot_fraction:
                destination = config.hotspot_node
            else:
                destination = self._uniform_destination(source)
        else:
            destination = self._uniform_destination(source)
        if destination == source:
            destination = self._uniform_destination(source)
        return destination

    def _uniform_destination(self, source: tuple[int, int]) -> tuple[int, int]:
        if self.columns * self.rows < 2:
            raise NocError("uniform traffic needs at least two nodes")
        while True:
            destination = (
                self._random.randrange(self.columns),
                self._random.randrange(self.rows),
            )
            if destination != source:
                return destination

    # -- burst modulation -------------------------------------------------------------
    def _node_is_active(self, node: tuple[int, int]) -> bool:
        config = self.config
        if config.burst_on_fraction >= 1.0:
            return True
        if node not in self._burst_state:
            self._burst_state[node] = self._random.random() < config.burst_on_fraction
            self._burst_timer[node] = self._random.randrange(1, config.burst_phase_length + 1)
        self._burst_timer[node] -= 1
        if self._burst_timer[node] <= 0:
            currently_on = self._burst_state[node]
            if currently_on:
                self._burst_state[node] = False
                off_length = config.burst_phase_length * (1.0 - config.burst_on_fraction) \
                    / config.burst_on_fraction
                self._burst_timer[node] = max(1, round(off_length))
            else:
                self._burst_state[node] = True
                self._burst_timer[node] = config.burst_phase_length
        return self._burst_state[node]

    # -- generation ----------------------------------------------------------------------
    def generate(self, cycle: int, node: tuple[int, int]) -> list[Packet]:
        """Packets created at ``node`` during ``cycle`` (possibly empty)."""
        config = self.config
        if not self._node_is_active(node):
            return []
        effective_rate = config.injection_rate / config.burst_on_fraction
        probability = min(effective_rate / config.packet_length, 1.0)
        if self._random.random() >= probability:
            return []
        packet = Packet(
            source=node,
            destination=self._destination(node),
            length_flits=config.packet_length,
            creation_cycle=cycle,
            payloads=[self._random.getrandbits(16) for _ in range(config.packet_length)],
        )
        self.generated_packets += 1
        return [packet]
