"""NoC substrate: routers, mesh, traffic, simulation, power gating and power roll-up.

See ``DESIGN.md`` S7.  The simulator exists to ground the paper's
standby-mode claims in measured idle-interval distributions.
"""

from .arbiter import RoundRobinArbiter
from .buffer import FlitBuffer
from .flit import Flit, FlitType, Packet
from .network import NetworkSimulator, SimulationResult
from .noc_power import NetworkPowerReport, NocPowerConfig, NocPowerModel
from .power_gating import (
    GatingPolicy,
    GatingReport,
    evaluate_gating,
    evaluate_oracle_gating,
)
from .router import CrossbarMove, Router
from .routing import xy_route
from .stats import IdleIntervalTracker, LatencyStatistics
from .topology import Mesh, opposite_port
from .traffic import TrafficConfig, TrafficGenerator, TrafficPattern

__all__ = [
    "CrossbarMove",
    "Flit",
    "FlitBuffer",
    "FlitType",
    "GatingPolicy",
    "GatingReport",
    "IdleIntervalTracker",
    "LatencyStatistics",
    "Mesh",
    "NetworkPowerReport",
    "NetworkSimulator",
    "NocPowerConfig",
    "NocPowerModel",
    "Packet",
    "RoundRobinArbiter",
    "Router",
    "SimulationResult",
    "TrafficConfig",
    "TrafficGenerator",
    "TrafficPattern",
    "evaluate_gating",
    "evaluate_oracle_gating",
    "opposite_port",
    "xy_route",
]
