"""Power-gating (standby) controller evaluation.

Connects the circuit-level break-even numbers (Table 1's minimum idle
time) to the architecture-level idle intervals the network simulator
measures: given a gating policy and the idle-interval distribution of a
crossbar output port, how much leakage energy does the standby mode
actually recover, net of transition costs and detection latency?

Two policies are provided:

* :func:`evaluate_gating` — a realistic *timeout* controller: the port
  must be observed idle for ``idle_detect_cycles`` before sleep is
  asserted, so short intervals are never gated and every gated interval
  loses the detection window;
* :func:`evaluate_oracle_gating` — an oracle that knows each interval's
  length in advance and gates exactly those longer than the break-even
  point; the gap between the two is the price of prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NocError
from ..power.idle_time import IdleTimeAnalysis

__all__ = ["GatingPolicy", "GatingReport", "evaluate_gating", "evaluate_oracle_gating"]


@dataclass(frozen=True)
class GatingPolicy:
    """Timeout-based sleep policy."""

    idle_detect_cycles: int = 4
    wakeup_cycles: int = 1

    def __post_init__(self) -> None:
        if self.idle_detect_cycles < 1:
            raise NocError("idle detection needs at least one cycle")
        if self.wakeup_cycles < 0:
            raise NocError("wake-up latency cannot be negative")


@dataclass(frozen=True)
class GatingReport:
    """Outcome of applying a gating policy to an idle-interval population."""

    total_cycles: int
    idle_cycles: int
    gated_cycles: int
    sleep_transitions: int
    leakage_energy_without_gating: float
    leakage_energy_with_gating: float
    transition_energy_spent: float

    @property
    def net_energy_saved(self) -> float:
        """Leakage energy saved minus the transition energy spent (joules)."""
        return (
            self.leakage_energy_without_gating
            - self.leakage_energy_with_gating
            - self.transition_energy_spent
        )

    @property
    def saving_fraction(self) -> float:
        """Net saving as a fraction of the ungated idle leakage energy."""
        if self.leakage_energy_without_gating <= 0:
            return 0.0
        return self.net_energy_saved / self.leakage_energy_without_gating

    @property
    def gated_fraction_of_idle(self) -> float:
        """Fraction of idle cycles actually spent in standby."""
        if self.idle_cycles == 0:
            return 0.0
        return self.gated_cycles / self.idle_cycles


def _report_from_gated(
    idle_intervals: list[int],
    gated_cycles_per_interval: list[int],
    total_cycles: int,
    idle_analysis: IdleTimeAnalysis,
    idle_power: float,
    standby_power: float,
) -> GatingReport:
    if idle_power < standby_power:
        raise NocError("idle power below standby power; gating would never help")
    period = idle_analysis.clock_period
    idle_cycles = sum(idle_intervals)
    gated_cycles = sum(gated_cycles_per_interval)
    transitions = sum(1 for cycles in gated_cycles_per_interval if cycles > 0)
    energy_without = idle_cycles * period * idle_power
    energy_with = (
        (idle_cycles - gated_cycles) * period * idle_power
        + gated_cycles * period * standby_power
    )
    return GatingReport(
        total_cycles=total_cycles,
        idle_cycles=idle_cycles,
        gated_cycles=gated_cycles,
        sleep_transitions=transitions,
        leakage_energy_without_gating=energy_without,
        leakage_energy_with_gating=energy_with,
        transition_energy_spent=transitions * idle_analysis.transition_energy,
    )


def evaluate_gating(
    idle_intervals: list[int],
    total_cycles: int,
    idle_analysis: IdleTimeAnalysis,
    idle_power: float,
    standby_power: float,
    policy: GatingPolicy | None = None,
) -> GatingReport:
    """Apply a timeout gating policy to measured idle intervals."""
    if total_cycles < 1:
        raise NocError("total cycles must be positive")
    chosen = policy if policy is not None else GatingPolicy()
    gated: list[int] = []
    for interval in idle_intervals:
        if interval < 0:
            raise NocError("idle intervals cannot be negative")
        sleepable = interval - chosen.idle_detect_cycles - chosen.wakeup_cycles
        gated.append(max(sleepable, 0))
    return _report_from_gated(
        idle_intervals, gated, total_cycles, idle_analysis, idle_power, standby_power
    )


def evaluate_oracle_gating(
    idle_intervals: list[int],
    total_cycles: int,
    idle_analysis: IdleTimeAnalysis,
    idle_power: float,
    standby_power: float,
) -> GatingReport:
    """Gate exactly the intervals longer than the break-even point."""
    if total_cycles < 1:
        raise NocError("total cycles must be positive")
    threshold = idle_analysis.minimum_idle_cycles
    gated = [interval if interval >= threshold else 0 for interval in idle_intervals]
    return _report_from_gated(
        idle_intervals, gated, total_cycles, idle_analysis, idle_power, standby_power
    )
