"""The five-port mesh router.

Input-buffered router with XY routing and per-output round-robin
arbitration — the standard microarchitecture the paper's crossbar sits
inside.  The router does not move flits by itself; the network simulator
asks it for its routing/arbitration decisions each cycle and applies the
winning moves, which keeps the simulator's two-phase (decide, then
commit) update free of ordering artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crossbar.ports import PortDirection
from ..errors import NocError
from .arbiter import RoundRobinArbiter
from .buffer import FlitBuffer
from .flit import Flit
from .routing import xy_route
from .stats import IdleIntervalTracker

__all__ = ["Router", "CrossbarMove"]


@dataclass(frozen=True)
class CrossbarMove:
    """One granted crossbar traversal: input port -> output port."""

    input_port: PortDirection
    output_port: PortDirection
    flit: Flit


class Router:
    """One router of the 2-D mesh."""

    def __init__(self, position: tuple[int, int], buffer_depth: int = 4) -> None:
        if buffer_depth < 1:
            raise NocError("buffer depth must be at least 1")
        self.position = position
        self.buffer_depth = buffer_depth
        self.input_buffers: dict[PortDirection, FlitBuffer] = {
            port: FlitBuffer(buffer_depth, name=f"{position}:{port.value}")
            for port in PortDirection.ordered()
        }
        self.output_arbiters: dict[PortDirection, RoundRobinArbiter] = {
            port: RoundRobinArbiter(len(PortDirection.ordered()))
            for port in PortDirection.ordered()
        }
        self.output_trackers: dict[PortDirection, IdleIntervalTracker] = {
            port: IdleIntervalTracker(name=f"{position}:{port.value}")
            for port in PortDirection.ordered()
        }
        self.crossbar_traversals = 0

    # -- flit admission --------------------------------------------------------------
    def can_accept(self, port: PortDirection) -> bool:
        """True if the input buffer of ``port`` has space for one flit."""
        return not self.input_buffers[port].is_full

    def accept(self, port: PortDirection, flit: Flit) -> None:
        """Deposit a flit into the input buffer of ``port``."""
        self.input_buffers[port].push(flit)

    # -- per-cycle decision ------------------------------------------------------------
    def decide_moves(self) -> list[CrossbarMove]:
        """Route head-of-line flits and arbitrate each output port.

        Returns at most one move per output port.  The simulator is
        responsible for checking downstream space and for actually
        popping the flits of the moves it commits.
        """
        ports = PortDirection.ordered()
        desired: dict[PortDirection, PortDirection] = {}
        for port in ports:
            buffer = self.input_buffers[port]
            if buffer.is_empty:
                continue
            desired[port] = xy_route(self.position, buffer.peek().destination)
        moves: list[CrossbarMove] = []
        for output in ports:
            requests = [desired.get(input_port) is output for input_port in ports]
            if not any(requests):
                continue
            winner_index = self.output_arbiters[output].grant(requests)
            if winner_index is None:
                continue
            input_port = ports[winner_index]
            moves.append(
                CrossbarMove(
                    input_port=input_port,
                    output_port=output,
                    flit=self.input_buffers[input_port].peek(),
                )
            )
        return moves

    def commit_move(self, move: CrossbarMove) -> Flit:
        """Pop the flit of a committed move and count the traversal."""
        flit = self.input_buffers[move.input_port].pop()
        flit.hops += 1
        self.crossbar_traversals += 1
        return flit

    # -- statistics -----------------------------------------------------------------------
    def record_cycle(self, busy_outputs: set[PortDirection]) -> None:
        """Record per-output activity and buffer occupancy for this cycle."""
        for port in PortDirection.ordered():
            self.output_trackers[port].record(port in busy_outputs)
            self.input_buffers[port].record_cycle()

    def finalise(self) -> None:
        """Close all idle-interval trackers at the end of a simulation."""
        for tracker in self.output_trackers.values():
            tracker.finalise()
