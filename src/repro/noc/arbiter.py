"""Round-robin arbitration.

Each crossbar output port has an arbiter choosing among the input ports
requesting it.  Round-robin is the standard fair policy; the grant it
produces is exactly the ``grant_N/S/W/E`` signal that drives the pass
transistors in the paper's Figure 1.
"""

from __future__ import annotations

from ..errors import NocError

__all__ = ["RoundRobinArbiter"]


class RoundRobinArbiter:
    """Fair single-winner arbiter over ``size`` requesters."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise NocError(f"arbiter needs at least one requester, got {size}")
        self.size = size
        self._priority = 0
        self.grant_count = 0

    def grant(self, requests: list[bool]) -> int | None:
        """Return the index of the granted requester, or ``None`` if no requests.

        The search starts at the rotating priority pointer, which is
        advanced past the winner so that a persistent requester cannot
        starve the others.
        """
        if len(requests) != self.size:
            raise NocError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        for offset in range(self.size):
            index = (self._priority + offset) % self.size
            if requests[index]:
                self._priority = (index + 1) % self.size
                self.grant_count += 1
                return index
        return None

    def reset(self) -> None:
        """Reset the rotating priority and statistics."""
        self._priority = 0
        self.grant_count = 0
