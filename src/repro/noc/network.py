"""Cycle-based mesh network simulator.

Two-phase update per cycle:

1. every router routes its head-of-line flits and arbitrates its output
   ports (:meth:`~repro.noc.router.Router.decide_moves`);
2. moves whose destination buffer has space are committed: ejections are
   recorded, forwarded flits are deposited into the neighbouring
   router's facing input buffer;
3. new packets from the traffic generator are injected into the local
   (PE) input buffers;
4. per-port busy/idle and buffer occupancy statistics are recorded.

The outputs the paper's evaluation needs are the per-port idle-interval
distributions (consumed by :mod:`repro.noc.power_gating`) and the
aggregate utilisation figures (consumed by :mod:`repro.noc.noc_power`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..crossbar.ports import PortDirection
from ..errors import NocError
from .flit import Flit
from .stats import IdleIntervalTracker, LatencyStatistics
from .topology import Mesh, opposite_port
from .traffic import TrafficConfig, TrafficGenerator

__all__ = ["SimulationResult", "NetworkSimulator"]


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run."""

    cycles: int
    node_count: int
    latency: LatencyStatistics
    crossbar_traversals: int
    output_trackers: dict[tuple[tuple[int, int], PortDirection], IdleIntervalTracker]
    injected_flits: int
    dropped_injections: int
    average_buffer_utilisation: float
    per_port_utilisation: dict[tuple[tuple[int, int], PortDirection], float] = field(
        default_factory=dict
    )

    @property
    def accepted_throughput(self) -> float:
        """Ejected flits per node per cycle."""
        return self.latency.throughput(self.cycles, self.node_count)

    @property
    def average_latency(self) -> float:
        """Mean flit latency in cycles."""
        return self.latency.average_latency

    @property
    def average_crossbar_utilisation(self) -> float:
        """Mean fraction of output ports busy per cycle across the network."""
        if not self.output_trackers:
            return 0.0
        fractions = [1.0 - tracker.idle_fraction for tracker in self.output_trackers.values()]
        return sum(fractions) / len(fractions)

    def idle_intervals(self) -> list[int]:
        """All idle intervals of all crossbar output ports, pooled."""
        intervals: list[int] = []
        for tracker in self.output_trackers.values():
            intervals.extend(tracker.idle_intervals())
        return intervals


class NetworkSimulator:
    """Drives a mesh with synthetic traffic for a fixed number of cycles."""

    def __init__(self, mesh: Mesh, traffic: TrafficConfig) -> None:
        self.mesh = mesh
        self.traffic_config = traffic
        self.generator = TrafficGenerator(traffic, mesh.columns, mesh.rows)
        self.latency = LatencyStatistics()
        self._pending_injections: dict[tuple[int, int], deque[Flit]] = {
            position: deque() for position in mesh.positions()
        }
        self.dropped_injections = 0
        self.cycle = 0

    # -- simulation loop ------------------------------------------------------------
    def run(self, cycles: int, warmup_cycles: int = 0) -> SimulationResult:
        """Simulate ``cycles`` cycles (after ``warmup_cycles`` untracked ones)."""
        if cycles < 1:
            raise NocError("simulate at least one cycle")
        if warmup_cycles < 0:
            raise NocError("warm-up cannot be negative")
        for _ in range(warmup_cycles):
            self._step(record=False)
        for _ in range(cycles):
            self._step(record=True)
        for router in self.mesh.routers.values():
            router.finalise()
        return self._collect(cycles)

    def _step(self, record: bool) -> None:
        self._inject_traffic()
        moves_by_router = {
            position: router.decide_moves() for position, router in self.mesh.routers.items()
        }
        busy_by_router: dict[tuple[int, int], set[PortDirection]] = {
            position: set() for position in self.mesh.positions()
        }
        for position, moves in moves_by_router.items():
            router = self.mesh.router(position)
            for move in moves:
                if move.output_port is PortDirection.PE:
                    flit = router.commit_move(move)
                    flit.ejection_cycle = self.cycle
                    if record:
                        self.latency.record_ejection(flit.latency)
                    busy_by_router[position].add(move.output_port)
                    continue
                neighbour = self.mesh.neighbour(position, move.output_port)
                if neighbour is None:
                    # XY routing never points off the mesh edge; reaching this
                    # indicates a corrupted destination.
                    raise NocError(
                        f"flit at {position} routed off the mesh via {move.output_port}"
                    )
                entry_port = opposite_port(move.output_port)
                if not self.mesh.router(neighbour).can_accept(entry_port):
                    continue
                flit = router.commit_move(move)
                self.mesh.router(neighbour).accept(entry_port, flit)
                busy_by_router[position].add(move.output_port)
        if record:
            for position, router in self.mesh.routers.items():
                router.record_cycle(busy_by_router[position])
        self.cycle += 1

    def _inject_traffic(self) -> None:
        for position in self.mesh.positions():
            pending = self._pending_injections[position]
            for packet in self.generator.generate(self.cycle, position):
                for flit in packet.flits():
                    flit.injection_cycle = self.cycle
                    pending.append(flit)
            router = self.mesh.router(position)
            while pending and router.can_accept(PortDirection.PE):
                router.accept(PortDirection.PE, pending.popleft())
                self.latency.record_injection()
            # Bound the source queue so saturated runs do not grow unboundedly.
            while len(pending) > 64:
                pending.popleft()
                self.dropped_injections += 1

    # -- collection --------------------------------------------------------------------
    def _collect(self, cycles: int) -> SimulationResult:
        trackers: dict[tuple[tuple[int, int], PortDirection], IdleIntervalTracker] = {}
        utilisation: dict[tuple[tuple[int, int], PortDirection], float] = {}
        buffer_utilisations: list[float] = []
        traversals = 0
        for position, router in self.mesh.routers.items():
            traversals += router.crossbar_traversals
            for port, tracker in router.output_trackers.items():
                trackers[(position, port)] = tracker
                utilisation[(position, port)] = (
                    1.0 - tracker.idle_fraction if tracker.total_cycles else 0.0
                )
            for buffer in router.input_buffers.values():
                buffer_utilisations.append(buffer.utilisation)
        return SimulationResult(
            cycles=cycles,
            node_count=self.mesh.node_count,
            latency=self.latency,
            crossbar_traversals=traversals,
            output_trackers=trackers,
            injected_flits=self.latency.injected_flits,
            dropped_injections=self.dropped_injections,
            average_buffer_utilisation=(
                sum(buffer_utilisations) / len(buffer_utilisations) if buffer_utilisations else 0.0
            ),
            per_port_utilisation=utilisation,
        )
