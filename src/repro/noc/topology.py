"""2-D mesh topology.

Builds the router grid and answers connectivity questions: which router
and input port a flit leaving a given router/output port arrives at.
"""

from __future__ import annotations

from ..crossbar.ports import PortDirection
from ..errors import NocError
from .router import Router

__all__ = ["Mesh", "opposite_port"]

_OFFSETS: dict[PortDirection, tuple[int, int]] = {
    PortDirection.EAST: (1, 0),
    PortDirection.WEST: (-1, 0),
    PortDirection.NORTH: (0, 1),
    PortDirection.SOUTH: (0, -1),
}

_OPPOSITES: dict[PortDirection, PortDirection] = {
    PortDirection.EAST: PortDirection.WEST,
    PortDirection.WEST: PortDirection.EAST,
    PortDirection.NORTH: PortDirection.SOUTH,
    PortDirection.SOUTH: PortDirection.NORTH,
}


def opposite_port(port: PortDirection) -> PortDirection:
    """The input port on the neighbouring router facing ``port``."""
    try:
        return _OPPOSITES[port]
    except KeyError as exc:
        raise NocError(f"port {port} has no opposite (PE is local)") from exc


class Mesh:
    """A ``columns x rows`` mesh of routers."""

    def __init__(self, columns: int, rows: int, buffer_depth: int = 4) -> None:
        if columns < 1 or rows < 1:
            raise NocError("mesh dimensions must be positive")
        if columns * rows < 2:
            raise NocError("a mesh needs at least two nodes to route traffic")
        self.columns = columns
        self.rows = rows
        self.routers: dict[tuple[int, int], Router] = {
            (x, y): Router((x, y), buffer_depth)
            for x in range(columns)
            for y in range(rows)
        }

    @property
    def node_count(self) -> int:
        """Number of routers in the mesh."""
        return self.columns * self.rows

    def positions(self) -> list[tuple[int, int]]:
        """All router coordinates, column-major order."""
        return list(self.routers)

    def router(self, position: tuple[int, int]) -> Router:
        """The router at ``position``."""
        try:
            return self.routers[position]
        except KeyError as exc:
            raise NocError(f"no router at {position} in a {self.columns}x{self.rows} mesh") from exc

    def neighbour(self, position: tuple[int, int], port: PortDirection) -> tuple[int, int] | None:
        """Coordinates of the router reached through ``port``, or ``None`` at an edge."""
        if port is PortDirection.PE:
            return None
        if position not in self.routers:
            raise NocError(f"no router at {position}")
        dx, dy = _OFFSETS[port]
        candidate = (position[0] + dx, position[1] + dy)
        return candidate if candidate in self.routers else None

    def average_hop_count(self) -> float:
        """Mean XY hop count over all source/destination pairs (analytic)."""
        total = 0
        pairs = 0
        for sx in range(self.columns):
            for sy in range(self.rows):
                for dx in range(self.columns):
                    for dy in range(self.rows):
                        if (sx, sy) == (dx, dy):
                            continue
                        total += abs(sx - dx) + abs(sy - dy)
                        pairs += 1
        return total / pairs if pairs else 0.0
