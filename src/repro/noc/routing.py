"""Routing: dimension-ordered (XY) routing on a 2-D mesh.

XY routing is deadlock-free on a mesh and is the conventional choice for
the class of routers the paper targets.  The router asks the routing
function for an output port given its own coordinates and the flit's
destination.
"""

from __future__ import annotations

from ..crossbar.ports import PortDirection
from ..errors import NocError

__all__ = ["xy_route"]


def xy_route(current: tuple[int, int], destination: tuple[int, int]) -> PortDirection:
    """Output port for a flit at ``current`` heading to ``destination``.

    Coordinates are (x, y) with x growing eastwards and y growing
    northwards.  X is corrected first, then Y; a flit already at its
    destination is ejected to the PE port.
    """
    cx, cy = current
    dx, dy = destination
    if (cx, cy) == (dx, dy):
        return PortDirection.PE
    if dx > cx:
        return PortDirection.EAST
    if dx < cx:
        return PortDirection.WEST
    if dy > cy:
        return PortDirection.NORTH
    if dy < cy:
        return PortDirection.SOUTH
    raise NocError("unreachable routing state")  # pragma: no cover
