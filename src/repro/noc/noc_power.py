"""Network-level power roll-up.

Combines one crossbar scheme's circuit-level figures with the activity a
simulation measured to estimate router and network power:

* **crossbar switching** — energy per traversal times measured traversals;
* **crossbar leakage** — busy ports leak at the active rate, idle ports
  at the idle rate, and (optionally) gated idle cycles at the standby
  rate, using the same gating evaluation as :mod:`repro.noc.power_gating`;
* **buffer leakage** — a Chen-&-Peh-style per-cell figure built from the
  technology library (reference [1] of the paper is the prior work that
  optimises this component; including it keeps the crossbar's share in
  honest proportion);
* **link switching** — per-flit energy of the inter-router wires with
  optimally repeated drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..circuit.dynamic import switching_energy
from ..crossbar.base import CrossbarScheme
from ..errors import NocError
from ..interconnect.repeater import optimal_repeaters
from ..interconnect.wire import Wire
from ..power.idle_time import analyse_minimum_idle_time
from ..technology.transistor import Polarity, VtFlavor
from .network import NetworkSimulator, SimulationResult
from .power_gating import GatingPolicy
from .topology import Mesh
from .traffic import TrafficConfig, TrafficPattern

__all__ = ["NocPowerConfig", "NetworkPowerReport", "NocPowerModel"]


@dataclass(frozen=True)
class NocPowerConfig:
    """Architecture and workload parameters of the network level.

    Beyond the power roll-up knobs, this carries the *simulated
    workload*: mesh shape, traffic pattern/rate/seed and the simulation
    length — so one :class:`~repro.core.config.ExperimentConfig` fully
    describes a network-level experiment and every knob is sweepable as
    a ``noc.*`` dotted path (benchmarks build their meshes and traffic
    from these fields via :meth:`build_mesh` / :meth:`build_traffic` /
    :meth:`simulate` instead of hard-coding constants).
    ``traffic_pattern`` is the string value of a
    :class:`~repro.noc.traffic.TrafficPattern` so the config tree stays
    JSON-safe; hotspot traffic pins its hotspot to node ``(0, 0)``.
    """

    buffer_depth: int = 4
    link_length: float = 1.0e-3
    bit_cell_width: float = 0.3e-6
    static_probability: float = 0.5
    toggle_activity: float = 0.5
    gating_enabled: bool = True
    gating_policy: GatingPolicy = GatingPolicy()
    mesh_columns: int = 4
    mesh_rows: int = 4
    injection_rate: float = 0.1
    traffic_pattern: str = "uniform"
    traffic_seed: int = 1
    traffic_burst_on_fraction: float = 1.0
    traffic_burst_phase_length: int = 50
    simulation_cycles: int = 2000
    warmup_cycles: int = 200

    def __post_init__(self) -> None:
        if self.buffer_depth < 1:
            raise NocError("buffer depth must be at least 1")
        if self.link_length <= 0:
            raise NocError("link length must be positive")
        if self.bit_cell_width <= 0:
            raise NocError("bit cell width must be positive")
        if self.mesh_columns < 1 or self.mesh_rows < 1:
            raise NocError("mesh dimensions must be positive")
        patterns = [pattern.value for pattern in TrafficPattern]
        if self.traffic_pattern not in patterns:
            raise NocError(
                f"unknown traffic pattern {self.traffic_pattern!r}; "
                f"expected one of {patterns}"
            )
        if self.simulation_cycles < 1:
            raise NocError("simulation must run at least one cycle")
        if self.warmup_cycles < 0:
            raise NocError("warm-up cannot be negative")

    def build_mesh(self) -> "Mesh":
        """The ``mesh_columns x mesh_rows`` mesh this config describes."""
        return Mesh(self.mesh_columns, self.mesh_rows,
                    buffer_depth=self.buffer_depth)

    def build_traffic(self) -> TrafficConfig:
        """The traffic workload this config describes (validated by
        :class:`~repro.noc.traffic.TrafficConfig` itself)."""
        pattern = TrafficPattern(self.traffic_pattern)
        return TrafficConfig(
            injection_rate=self.injection_rate,
            pattern=pattern,
            hotspot_node=(0, 0) if pattern is TrafficPattern.HOTSPOT else None,
            burst_on_fraction=self.traffic_burst_on_fraction,
            burst_phase_length=self.traffic_burst_phase_length,
            seed=self.traffic_seed,
        )

    def simulate(self) -> SimulationResult:
        """Run the described workload on the described mesh."""
        return NetworkSimulator(self.build_mesh(), self.build_traffic()).run(
            cycles=self.simulation_cycles, warmup_cycles=self.warmup_cycles)


@dataclass(frozen=True)
class NetworkPowerReport:
    """Per-component network power (watts) for one simulated workload."""

    scheme: str
    crossbar_dynamic: float
    crossbar_leakage: float
    buffer_leakage: float
    link_dynamic: float
    gating_net_saving: float

    @property
    def total(self) -> float:
        """Total network power (watts)."""
        return self.crossbar_dynamic + self.crossbar_leakage + self.buffer_leakage + self.link_dynamic

    @property
    def crossbar_leakage_fraction(self) -> float:
        """Crossbar leakage as a fraction of the total."""
        if self.total == 0:
            return 0.0
        return self.crossbar_leakage / self.total


class NocPowerModel:
    """Estimates network power for one crossbar scheme and one simulation."""

    def __init__(self, scheme: CrossbarScheme, config: NocPowerConfig | None = None) -> None:
        self.scheme = scheme
        if config is None:
            # Inherit the structural buffer depth declared on the crossbar
            # config (sweepable as "crossbar.input_buffer_depth"); an
            # explicit NocPowerConfig still overrides everything.
            config = NocPowerConfig(buffer_depth=scheme.config.input_buffer_depth)
        self.config = config
        self.library = scheme.library

    # -- per-component building blocks ------------------------------------------------
    def crossbar_energy_per_traversal(self) -> float:
        """Switching energy of one flit crossing the crossbar (joules)."""
        per_cycle = self.scheme.dynamic_energy_per_cycle(
            self.config.toggle_activity, self.config.static_probability
        )
        return per_cycle / self.scheme.config.output_count

    @cached_property
    def _buffer_cell_leakage_power(self) -> float:
        """Leakage power of one buffer bit cell (watts), computed once.

        The library shares the sized devices (``make_transistor`` is
        memoised per width), so the unique cell bias point is evaluated
        once and every roll-up multiplies it by the cell count.
        """
        nmos = self.library.make_transistor(
            Polarity.NMOS, VtFlavor.NOMINAL, self.config.bit_cell_width
        )
        pmos = self.library.make_transistor(
            Polarity.PMOS, VtFlavor.NOMINAL, self.config.bit_cell_width
        )
        return (nmos.off_current() + pmos.off_current()) * self.library.supply_voltage

    def buffer_leakage_per_router(self) -> float:
        """Leakage power of one router's input buffers (watts).

        Each stored bit is modelled as a cell with one off NMOS and one
        off PMOS of ``bit_cell_width`` (the dominant leakage paths of an
        SRAM/latch cell), all nominal Vt — reference [1]'s techniques for
        reducing this component are outside this reproduction's scope.
        """
        cells = (
            self.scheme.config.port_count
            * self.config.buffer_depth
            * self.scheme.config.flit_width
        )
        return self._buffer_cell_leakage_power * cells

    def link_energy_per_flit(self) -> float:
        """Switching energy of one flit traversing one inter-router link (joules)."""
        wire = Wire.on_layer(self.library, self.config.link_length, "global")
        design = optimal_repeaters(self.library, wire)
        capacitance = wire.capacitance + design.total_repeater_capacitance
        per_bit = switching_energy(capacitance, self.library.supply_voltage)
        return 0.5 * self.config.toggle_activity * self.scheme.config.flit_width * per_bit

    # -- roll-up -----------------------------------------------------------------------
    def evaluate(self, result: SimulationResult) -> NetworkPowerReport:
        """Estimate network power for the workload captured in ``result``."""
        if result.cycles < 1:
            raise NocError("simulation result covers no cycles")
        frequency = self.library.clock_frequency
        period = self.library.clock_period
        simulated_time = result.cycles * period
        node_count = result.node_count

        crossbar_dynamic_energy = result.crossbar_traversals * self.crossbar_energy_per_traversal()
        crossbar_dynamic = crossbar_dynamic_energy / simulated_time

        # Leakage: apportion each router's crossbar between busy and idle time
        # using the measured per-port utilisation.
        active_power = self.scheme.active_leakage_power(self.config.static_probability)
        idle_power = self.scheme.idle_leakage(self.config.static_probability).power(
            self.scheme.supply_voltage
        )
        standby_power = self.scheme.standby_leakage_power()
        per_port_active = active_power / self.scheme.config.output_count
        per_port_idle = idle_power / self.scheme.config.output_count
        per_port_standby = standby_power / self.scheme.config.output_count

        leakage_energy = 0.0
        gating_saving_energy = 0.0
        idle_analysis = analyse_minimum_idle_time(
            self.scheme, self.config.static_probability, frequency
        ) if self.scheme.has_sleep_mode else None
        per_port_transition = (
            idle_analysis.transition_energy / self.scheme.config.output_count
            if idle_analysis is not None
            else 0.0
        )
        for tracker in result.output_trackers.values():
            busy = tracker.busy_cycles
            idle = tracker.idle_cycles
            leakage_energy += busy * period * per_port_active
            if not (self.config.gating_enabled and self.scheme.has_sleep_mode):
                leakage_energy += idle * period * per_port_idle
                continue
            intervals = tracker.idle_intervals()
            gated = 0
            transitions = 0
            for interval in intervals:
                sleepable = interval - self.config.gating_policy.idle_detect_cycles \
                    - self.config.gating_policy.wakeup_cycles
                if sleepable > 0:
                    gated += sleepable
                    transitions += 1
            ungated_energy = idle * period * per_port_idle
            gated_energy = (
                (idle - gated) * period * per_port_idle
                + gated * period * per_port_standby
                + transitions * per_port_transition
            )
            leakage_energy += min(gated_energy, ungated_energy)
            gating_saving_energy += max(ungated_energy - gated_energy, 0.0)
        crossbar_leakage = leakage_energy / simulated_time

        buffer_leakage = self.buffer_leakage_per_router() * node_count

        # Every crossbar traversal towards a non-local port is followed by a
        # link traversal; approximate the link count by the non-PE share of
        # traversals.
        non_local_fraction = 0.8
        link_energy = result.crossbar_traversals * non_local_fraction * self.link_energy_per_flit()
        link_dynamic = link_energy / simulated_time

        return NetworkPowerReport(
            scheme=self.scheme.name,
            crossbar_dynamic=crossbar_dynamic,
            crossbar_leakage=crossbar_leakage,
            buffer_leakage=buffer_leakage,
            link_dynamic=link_dynamic,
            gating_net_saving=gating_saving_energy / simulated_time,
        )
