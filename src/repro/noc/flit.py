"""Flits and packets.

The crossbar schemes are evaluated per flit; the NoC substrate moves
flits through routers so that the idle-interval statistics the standby
mode depends on come from realistic traffic rather than assumptions.
A packet is a sequence of flits (head / body / tail); the simulator
routes flits individually (each flit carries its destination), which is
a simplification of wormhole switching that preserves the quantities the
paper's evaluation needs — per-port utilisation and idle intervals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count

from ..errors import NocError

__all__ = ["FlitType", "Flit", "Packet"]

_packet_ids = count()


class FlitType(enum.Enum):
    """Position of a flit within its packet."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    SINGLE = "single"


@dataclass
class Flit:
    """One flow-control unit."""

    packet_id: int
    flit_type: FlitType
    source: tuple[int, int]
    destination: tuple[int, int]
    payload: int = 0
    injection_cycle: int = 0
    ejection_cycle: int | None = None
    hops: int = 0

    @property
    def latency(self) -> int:
        """Cycles from injection to ejection (only valid after ejection)."""
        if self.ejection_cycle is None:
            raise NocError("flit has not been ejected yet")
        return self.ejection_cycle - self.injection_cycle


@dataclass
class Packet:
    """A multi-flit message between two mesh nodes."""

    source: tuple[int, int]
    destination: tuple[int, int]
    length_flits: int
    creation_cycle: int = 0
    payloads: list[int] = field(default_factory=list)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.length_flits < 1:
            raise NocError("a packet needs at least one flit")
        if self.payloads and len(self.payloads) != self.length_flits:
            raise NocError("payloads, when given, must have one entry per flit")

    def flits(self) -> list[Flit]:
        """Expand the packet into its flits."""
        flits: list[Flit] = []
        for index in range(self.length_flits):
            if self.length_flits == 1:
                flit_type = FlitType.SINGLE
            elif index == 0:
                flit_type = FlitType.HEAD
            elif index == self.length_flits - 1:
                flit_type = FlitType.TAIL
            else:
                flit_type = FlitType.BODY
            flits.append(
                Flit(
                    packet_id=self.packet_id,
                    flit_type=flit_type,
                    source=self.source,
                    destination=self.destination,
                    payload=self.payloads[index] if self.payloads else 0,
                    injection_cycle=self.creation_cycle,
                )
            )
        return flits
