"""Design-space grids: Cartesian products and explicit point lists.

A :class:`DesignSpace` describes *which* experiment configurations to
evaluate, independently of *how* they are evaluated (that is the
evaluator's and executor's job).  Grids are fully materialised with a
deterministic ordering — row-major over the axes in the order given,
last axis fastest — so results can be cached, fanned out across
processes and reassembled without ambiguity.

Axes are named by config path: the flat ``ExperimentConfig`` scalars
(``"temperature_celsius"``), dotted paths into the nested structure
(``"crossbar.port_count"``, ``"noc.link_length"``), or any unambiguous
leaf alias (``"port_count"``).  Names are normalised to canonical paths
at construction, so a grid built from an alias and one built from the
dotted path are the same design space.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

from ..core.config import ExperimentConfig
from ..core.paths import normalize_path, sweepable_paths
from ..errors import ConfigurationError

__all__ = ["SWEEPABLE_FIELDS", "GridPoint", "DesignSpace"]


class _SweepablePathMap(Mapping):
    """Read-only view of the sweepable-path registry, built on first use.

    Walking the registry instantiates the optional sub-config prototypes
    (which imports the noc package); keeping that lazy preserves the
    config layer's deliberate choice not to hard-import noc on
    ``import repro``.
    """

    _cache: dict[str, str] | None = None

    def _data(self) -> dict[str, str]:
        if self._cache is None:
            # The registry is immutable once built; one copy serves every
            # mapping operation instead of a fresh dict per access.
            type(self)._cache = sweepable_paths()
        return self._cache

    def __getitem__(self, key: str) -> str:
        return self._data()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data())

    def __len__(self) -> int:
        return len(self._data())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SWEEPABLE_FIELDS({self._data()!r})"


#: Every config path a design space may vary, with a note on what it
#: exercises.  Derived lazily from the nested ``ExperimentConfig``
#: dataclass tree (see :mod:`repro.core.paths`); the historical six flat
#: names are the top-level subset and remain valid spellings.
SWEEPABLE_FIELDS: Mapping[str, str] = _SweepablePathMap()


def _canonical_parameter(name: str) -> str:
    """Resolve one axis name (flat field, dotted path, or alias) to its
    canonical config path, rejecting unknown names."""
    return normalize_path(name)


@dataclass(frozen=True)
class GridPoint:
    """One point of a design space: a set of field overrides.

    ``items`` is a tuple of ``(field, value)`` pairs in the design
    space's parameter order, so points are hashable and their identity
    is deterministic.
    """

    index: int
    items: tuple[tuple[str, object], ...]

    @property
    def overrides(self) -> dict[str, object]:
        """The overrides as a plain dict."""
        return dict(self.items)

    def config(self, base: ExperimentConfig) -> ExperimentConfig:
        """Apply this point's overrides to ``base``."""
        return base.with_overrides(**self.overrides)


@dataclass(frozen=True)
class DesignSpace:
    """An ordered, finite set of experiment points over sweepable fields."""

    parameters: tuple[str, ...]
    point_values: tuple[tuple[object, ...], ...]

    @classmethod
    def grid(cls, axes: Mapping[str, Sequence[object]]) -> "DesignSpace":
        """Full Cartesian product of ``axes``.

        Ordering is row-major over the axes in the order given (the
        last axis varies fastest), matching nested for-loops over the
        axis values.
        """
        if not axes:
            raise ConfigurationError("a design-space grid needs at least one axis")
        materialised: dict[str, tuple[object, ...]] = {}
        for name, values in axes.items():
            canonical = _canonical_parameter(name)
            if canonical in materialised:
                raise ConfigurationError(
                    f"axis {name!r} duplicates config path {canonical!r}"
                )
            materialised[canonical] = tuple(values)
        for name, values in materialised.items():
            if not values:
                raise ConfigurationError(f"axis {name!r} needs at least one value")
        parameters = tuple(materialised)
        combos = tuple(itertools.product(*(materialised[name] for name in parameters)))
        return cls(parameters=parameters, point_values=combos)

    @classmethod
    def from_points(cls, points: Sequence[Mapping[str, object]]) -> "DesignSpace":
        """An explicit list of points, all over the same parameter set."""
        if not points:
            raise ConfigurationError("a design space needs at least one point")
        given = tuple(points[0])
        parameters = tuple(_canonical_parameter(name) for name in given)
        if len(set(parameters)) != len(parameters):
            raise ConfigurationError(
                f"point parameters {given} resolve to duplicate config "
                f"paths {parameters}"
            )
        values = []
        for point in points:
            if tuple(point) != given:
                raise ConfigurationError(
                    f"every point must set the same parameters {given}, "
                    f"got {tuple(point)}"
                )
            values.append(tuple(point[name] for name in given))
        return cls(parameters=parameters, point_values=tuple(values))

    @classmethod
    def single_sweep(cls, parameter: str, values: Sequence[object]) -> "DesignSpace":
        """One-axis grid — the legacy ``sweep_parameter`` shape."""
        return cls.grid({parameter: values})

    def __len__(self) -> int:
        return len(self.point_values)

    def points(self) -> list[GridPoint]:
        """All points, in deterministic grid order."""
        return [
            GridPoint(index=i, items=tuple(zip(self.parameters, values)))
            for i, values in enumerate(self.point_values)
        ]

    def configs(self, base: ExperimentConfig | None = None) -> list[ExperimentConfig]:
        """Materialise every point as an :class:`ExperimentConfig`.

        Invalid values (e.g. a static probability outside ``[0, 1]``)
        surface here, before any evaluation is fanned out.
        """
        base_config = base if base is not None else ExperimentConfig()
        return [point.config(base_config) for point in self.points()]
