"""Design-space grids: Cartesian products and explicit point lists.

A :class:`DesignSpace` describes *which* experiment configurations to
evaluate, independently of *how* they are evaluated (that is the
evaluator's and executor's job).  Grids are fully materialised with a
deterministic ordering — row-major over the axes in the order given,
last axis fastest — so results can be cached, fanned out across
processes and reassembled without ambiguity.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..core.config import ExperimentConfig
from ..errors import ConfigurationError

__all__ = ["SWEEPABLE_FIELDS", "GridPoint", "DesignSpace"]

#: Experiment fields a design space may vary, with a note on what they exercise.
SWEEPABLE_FIELDS = {
    "technology_node": "roadmap scaling of wires and devices",
    "temperature_celsius": "leakage's exponential temperature dependence",
    "corner": "process spread",
    "clock_frequency": "how much slack the timing budget leaves for high Vt",
    "static_probability": "data polarity (the pre-charged schemes' weak spot)",
    "toggle_activity": "switching intensity",
}


def _check_parameter(name: str) -> None:
    if name not in SWEEPABLE_FIELDS:
        known = ", ".join(sorted(SWEEPABLE_FIELDS))
        raise ConfigurationError(f"cannot sweep {name!r}; sweepable fields: {known}")


@dataclass(frozen=True)
class GridPoint:
    """One point of a design space: a set of field overrides.

    ``items`` is a tuple of ``(field, value)`` pairs in the design
    space's parameter order, so points are hashable and their identity
    is deterministic.
    """

    index: int
    items: tuple[tuple[str, object], ...]

    @property
    def overrides(self) -> dict[str, object]:
        """The overrides as a plain dict."""
        return dict(self.items)

    def config(self, base: ExperimentConfig) -> ExperimentConfig:
        """Apply this point's overrides to ``base``."""
        return base.with_overrides(**self.overrides)


@dataclass(frozen=True)
class DesignSpace:
    """An ordered, finite set of experiment points over sweepable fields."""

    parameters: tuple[str, ...]
    point_values: tuple[tuple[object, ...], ...]

    @classmethod
    def grid(cls, axes: Mapping[str, Sequence[object]]) -> "DesignSpace":
        """Full Cartesian product of ``axes``.

        Ordering is row-major over the axes in the order given (the
        last axis varies fastest), matching nested for-loops over the
        axis values.
        """
        if not axes:
            raise ConfigurationError("a design-space grid needs at least one axis")
        materialised = {name: tuple(values) for name, values in axes.items()}
        for name, values in materialised.items():
            _check_parameter(name)
            if not values:
                raise ConfigurationError(f"axis {name!r} needs at least one value")
        parameters = tuple(materialised)
        combos = tuple(itertools.product(*(materialised[name] for name in parameters)))
        return cls(parameters=parameters, point_values=combos)

    @classmethod
    def from_points(cls, points: Sequence[Mapping[str, object]]) -> "DesignSpace":
        """An explicit list of points, all over the same parameter set."""
        if not points:
            raise ConfigurationError("a design space needs at least one point")
        parameters = tuple(points[0])
        for name in parameters:
            _check_parameter(name)
        values = []
        for point in points:
            if tuple(point) != parameters:
                raise ConfigurationError(
                    f"every point must set the same parameters {parameters}, "
                    f"got {tuple(point)}"
                )
            values.append(tuple(point[name] for name in parameters))
        return cls(parameters=parameters, point_values=tuple(values))

    @classmethod
    def single_sweep(cls, parameter: str, values: Sequence[object]) -> "DesignSpace":
        """One-axis grid — the legacy ``sweep_parameter`` shape."""
        return cls.grid({parameter: values})

    def __len__(self) -> int:
        return len(self.point_values)

    def points(self) -> list[GridPoint]:
        """All points, in deterministic grid order."""
        return [
            GridPoint(index=i, items=tuple(zip(self.parameters, values)))
            for i, values in enumerate(self.point_values)
        ]

    def configs(self, base: ExperimentConfig | None = None) -> list[ExperimentConfig]:
        """Materialise every point as an :class:`ExperimentConfig`.

        Invalid values (e.g. a static probability outside ``[0, 1]``)
        surface here, before any evaluation is fanned out.
        """
        base_config = base if base is not None else ExperimentConfig()
        return [point.config(base_config) for point in self.points()]
