"""Async evaluation service: one warm cache, many clients.

A long-running :class:`EvaluationService` accepts *design-point queries*
— dotted-path override dicts, the same vocabulary as
:meth:`~repro.core.config.ExperimentConfig.with_overrides` — and answers
them from a single shared :class:`~repro.engine.cache.EvaluationCache`.
Misses are not evaluated one by one: they accumulate in a pending batch
that is flushed through the pluggable executor (the ``run(items)``
contract of :mod:`repro.engine.executor`) when either ``max_batch_size``
points are waiting or ``flush_interval`` seconds have passed since the
batch opened — so concurrent clients share both the cache *and* the
multicore fan-out.  Identical in-flight points coalesce onto one
evaluation: the second client awaits the first client's future instead
of re-submitting the work.

The service is exposed three ways:

* **In-process async API** — ``await service.evaluate(overrides)``;
* **HTTP** — :class:`EvaluationServer` speaks minimal HTTP/1.1 over
  asyncio streams (no third-party dependency): ``POST /evaluate``,
  ``GET /stats``, ``GET /paths``, ``GET /healthz``, with
  :class:`ServiceClient` as the matching asyncio client;
* **CLI** — ``python -m repro.engine.service --host H --port P
  --cache-dir DIR --executor auto`` runs a standalone server.

Request validation reuses :func:`~repro.core.paths.normalize_path`, so
a malformed dotted path fails fast with a structured error naming the
offending path (:class:`InvalidRequestError`), before anything is
cached or fanned out.  Two guard rails keep a loaded service honest:
``timeout_s`` on a query bounds how long the client waits (a structured
``deadline-exceeded`` answer, HTTP 504, while the evaluation itself
continues and still lands in the cache), and ``max_pending`` bounds the
miss batch (overflow earns a structured ``overloaded`` answer, HTTP
503, instead of an unbounded queue).  See ``docs/serving.md`` for the
protocol and ``docs/distributed.md`` for running the service over a
multi-host worker fleet (``--executor distributed``).
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..core.config import ExperimentConfig
from ..core.paths import normalize_path, path_registry_records, set_path
from ..crossbar.factory import available_schemes
from ..errors import ConfigurationError, DistributedError, ReproError
from .cache import CachedEntry, EvaluationCache, point_key
from .executor import ProcessExecutor, WorkItem, resolve_executor

__all__ = [
    "DEFAULT_PORT",
    "InvalidRequestError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "ServiceResult",
    "ServiceStats",
    "EvaluationService",
    "EvaluationServer",
    "ServiceClient",
    "main",
]

#: Default TCP port of the HTTP front (an arbitrary unprivileged port).
DEFAULT_PORT = 8351

#: Largest request body the HTTP front will read, as a denial-of-service
#: guard; a design-point query is a small JSON object.
MAX_BODY_BYTES = 1 << 20

#: Most header lines accepted per message, same rationale (each line is
#: already length-bounded by the stream reader's 64 KiB limit).
MAX_HEADER_LINES = 100


class InvalidRequestError(ConfigurationError):
    """A malformed design-point query, carrying a JSON-safe payload.

    ``payload`` always holds an ``"error"`` code and a ``"message"``;
    path problems add the offending ``"path"`` — so HTTP clients can
    route on structure instead of parsing prose.
    """

    def __init__(self, message: str, payload: Mapping[str, object]) -> None:
        super().__init__(message)
        self.payload = dict(payload)
        self.payload.setdefault("message", message)


class ServiceOverloadedError(ReproError):
    """The pending miss batch is full (``max_pending`` backpressure).

    Not the client's fault and not a server bug: the service is shedding
    load.  ``payload`` is the JSON-safe body the HTTP front answers with
    (status :attr:`status`); clients should back off and retry.
    """

    #: HTTP status the front maps this error to.
    status = 503

    def __init__(self, message: str, payload: Mapping[str, object]) -> None:
        super().__init__(message)
        self.payload = dict(payload)
        self.payload.setdefault("message", message)


class DeadlineExceededError(ReproError):
    """A query's ``timeout_s`` elapsed before its batch was answered.

    The evaluation itself is *not* cancelled — it completes in its
    batch and lands in the cache, so a retry is usually a cheap hit.
    ``payload`` is the JSON-safe body the HTTP front answers with
    (status :attr:`status`).
    """

    #: HTTP status the front maps this error to.
    status = 504

    def __init__(self, message: str, payload: Mapping[str, object]) -> None:
        super().__init__(message)
        self.payload = dict(payload)
        self.payload.setdefault("message", message)


@dataclass(frozen=True)
class ServiceResult:
    """One answered design-point query.

    ``from_cache`` is true for points served from the warm cache;
    ``coalesced`` is true when the query attached to an identical
    in-flight evaluation instead of submitting its own.
    """

    key: str
    overrides: tuple[tuple[str, object], ...]
    records: tuple[dict, ...]
    from_cache: bool
    coalesced: bool

    def as_payload(self) -> dict:
        """The JSON-safe response body the HTTP front sends."""
        return {
            "key": self.key,
            "overrides": dict(self.overrides),
            "records": [dict(record) for record in self.records],
            "from_cache": self.from_cache,
            "coalesced": self.coalesced,
        }


@dataclass
class ServiceStats:
    """Request accounting for one :class:`EvaluationService`."""

    requests: int = 0
    invalid_requests: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    evaluated: int = 0
    batches: int = 0
    largest_batch: int = 0
    cache_write_failures: int = 0
    deadline_exceeded: int = 0
    rejected_overload: int = 0

    def as_payload(self) -> dict:
        """The JSON-safe stats body (service counters only).

        Every counter field, by construction — a counter added to the
        dataclass is automatically part of ``GET /stats``.
        """
        return dataclasses.asdict(self)


@dataclass
class _PendingPoint:
    """One cache miss waiting in the current batch."""

    key: str
    config: ExperimentConfig
    future: asyncio.Future


class EvaluationService:
    """Asyncio service answering design-point queries over one cache.

    Parameters
    ----------
    base_config:
        The configuration every query overrides (default: the paper's
        point).
    scheme_names / baseline_name:
        The fixed scheme set and savings baseline every query is
        evaluated against — part of the cache key, so they are
        service-level, not per-request.
    executor:
        ``"serial"``, ``"process"``, ``"auto"``, or any object with a
        ``run(items) -> results`` method; ``"auto"`` decides using
        ``max_batch_size`` as the batch-size hint.
    cache / cache_dir:
        An existing :class:`EvaluationCache` to share, or a directory
        for a disk-backed one; by default an in-memory cache that lives
        as long as the service.
    max_batch_size / flush_interval:
        Misses flush through the executor when ``max_batch_size`` points
        are pending, or ``flush_interval`` seconds after the first miss
        joined the batch, whichever comes first.
    max_pending:
        Backpressure bound: a fresh miss arriving while this many points
        already wait in the pending batch is rejected with
        :class:`ServiceOverloadedError` (HTTP 503) instead of growing
        the queue without limit.  ``None`` (default) = unbounded.
    default_timeout_s:
        Deadline applied to queries that do not carry their own
        ``timeout_s``; ``None`` (default) = wait indefinitely.
    own_executor:
        Whether :meth:`stop` should close the executor (process pools,
        distributed fleets).  Default: the service owns executors it
        resolved from string specs and borrows executor objects.
    """

    def __init__(self, base_config: ExperimentConfig | None = None,
                 scheme_names: Sequence[str] | None = None,
                 baseline_name: str = "SC",
                 executor: object = "serial",
                 cache: EvaluationCache | None = None,
                 cache_dir: object = None,
                 max_batch_size: int = 16,
                 flush_interval: float = 0.02,
                 max_workers: int | None = None,
                 max_pending: int | None = None,
                 default_timeout_s: float | None = None,
                 own_executor: bool | None = None) -> None:
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be at least 1")
        if flush_interval < 0:
            raise ConfigurationError("flush_interval must be non-negative")
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError("max_pending must be at least 1")
        if default_timeout_s is not None and default_timeout_s <= 0:
            raise ConfigurationError("default_timeout_s must be positive")
        self.base_config = base_config if base_config is not None else ExperimentConfig()
        names = list(scheme_names) if scheme_names is not None else available_schemes()
        if baseline_name not in names:
            raise ConfigurationError(
                f"baseline {baseline_name!r} must be among the evaluated schemes {names}"
            )
        self.scheme_names = tuple(names)
        self.baseline_name = baseline_name
        if cache is not None and cache_dir is not None:
            raise ConfigurationError("pass either cache or cache_dir, not both")
        self.cache = cache if cache is not None else EvaluationCache(directory=cache_dir)
        self.max_batch_size = max_batch_size
        self.flush_interval = flush_interval
        self.max_pending = max_pending
        self.default_timeout_s = default_timeout_s
        self.executor = resolve_executor(executor, point_count=max_batch_size,
                                         max_workers=max_workers)
        self._own_executor = (own_executor if own_executor is not None
                              else not hasattr(executor, "run"))
        if (isinstance(self.executor, ProcessExecutor)
                and self.executor.mp_start_method is None):
            # Batches run from a flush worker thread; forking a
            # multithreaded process there can deadlock the pool workers.
            self.executor.mp_start_method = "spawn"
        self.stats = ServiceStats()
        self._closed = False
        self._pending: list[_PendingPoint] = []
        self._in_flight: dict[str, asyncio.Future] = {}
        self._flush_handle: asyncio.TimerHandle | None = None
        self._flush_lock: asyncio.Lock | None = None
        self._flush_tasks: set[asyncio.Task] = set()

    # -- request validation ------------------------------------------------------
    def canonical_overrides(self, overrides: object) -> dict[str, object]:
        """Validate a query's overrides and canonicalise its paths.

        Every key must resolve through
        :func:`~repro.core.paths.normalize_path`; failures raise
        :class:`InvalidRequestError` whose payload names the offending
        path.  Returns ``{canonical path: value}``.
        """
        if not isinstance(overrides, Mapping):
            raise InvalidRequestError(
                f"overrides must be an object of config-path: value pairs, "
                f"got {type(overrides).__name__}",
                {"error": "invalid-overrides"},
            )
        canonical: dict[str, object] = {}
        for name, value in overrides.items():
            if not isinstance(name, str):
                raise InvalidRequestError(
                    f"config paths must be strings, got {name!r}",
                    {"error": "invalid-path", "path": repr(name)},
                )
            try:
                path = normalize_path(name)
            except ConfigurationError as exc:
                raise InvalidRequestError(
                    f"unknown config path {name!r}",
                    {"error": "unknown-path", "path": name, "message": str(exc)},
                ) from exc
            if path in canonical:
                raise InvalidRequestError(
                    f"override {name!r} duplicates config path {path!r}",
                    {"error": "duplicate-path", "path": path},
                )
            canonical[path] = value
        return canonical

    def _config_for(self, canonical: Mapping[str, object]) -> ExperimentConfig:
        """Apply canonical overrides one path at a time, so a rejected
        value (e.g. a probability outside ``[0, 1]``) is attributed to
        the path that carried it."""
        config = self.base_config
        for path, value in canonical.items():
            try:
                config = set_path(config, path, value)
            except ReproError as exc:
                raise InvalidRequestError(
                    f"invalid value for {path!r}: {exc}",
                    {"error": "invalid-value", "path": path, "message": str(exc)},
                ) from exc
        return config

    def _resolve_timeout(self, timeout_s: object) -> float | None:
        """Validate a query's deadline; fall back to the service default."""
        if timeout_s is None:
            return self.default_timeout_s
        if (isinstance(timeout_s, bool) or not isinstance(timeout_s, (int, float))
                or not math.isfinite(timeout_s) or timeout_s <= 0):
            raise InvalidRequestError(
                f"timeout_s must be a positive finite number, got {timeout_s!r}",
                {"error": "invalid-timeout"},
            )
        return float(timeout_s)

    async def _await_entry(self, future: "asyncio.Future[CachedEntry]",
                           timeout_s: float | None, key: str) -> CachedEntry:
        """Await a batch future, bounded by the query's deadline.

        The future is shielded: a deadline abandons *this query's wait*,
        never the shared evaluation — coalesced twins keep waiting and
        the result still lands in the cache.
        """
        if timeout_s is None:
            return await future
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout_s)
        except asyncio.TimeoutError:
            self.stats.deadline_exceeded += 1
            # The abandoned future may have no other awaiter; retrieve its
            # eventual exception so the loop never logs it as unconsumed.
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None)
            raise DeadlineExceededError(
                f"evaluation exceeded the {timeout_s}s deadline",
                {"error": "deadline-exceeded", "timeout_s": timeout_s,
                 "key": key},
            ) from None

    # -- the query path ----------------------------------------------------------
    async def evaluate(self, overrides: Mapping[str, object],
                       timeout_s: float | None = None) -> ServiceResult:
        """Answer one design-point query, cheapest way possible.

        Cache hits return immediately; a miss joins the pending batch
        (flushed by size or by the flush window) and a miss identical to
        an in-flight point awaits that point's future instead of
        re-evaluating.  ``timeout_s`` bounds the wait
        (:class:`DeadlineExceededError`; the evaluation itself continues
        and is cached).  Raises :class:`InvalidRequestError` for
        malformed overrides and after :meth:`stop`, and
        :class:`ServiceOverloadedError` when the pending batch is full.
        """
        self.stats.requests += 1
        if self._closed:
            self.stats.invalid_requests += 1
            raise InvalidRequestError("service is stopped",
                                      {"error": "service-stopped"})
        try:
            timeout_s = self._resolve_timeout(timeout_s)
            canonical = self.canonical_overrides(overrides)
            config = self._config_for(canonical)
        except InvalidRequestError:
            self.stats.invalid_requests += 1
            raise
        items = tuple(canonical.items())
        key = point_key(config, self.scheme_names, self.baseline_name)

        entry = self.cache.get(key)
        if entry is not None:
            self.stats.cache_hits += 1
            return ServiceResult(key=key, overrides=items,
                                 records=tuple(entry.records),
                                 from_cache=True, coalesced=False)

        existing = self._in_flight.get(key)
        if existing is not None:
            self.stats.coalesced += 1
            entry = await self._await_entry(existing, timeout_s, key)
            return ServiceResult(key=key, overrides=items,
                                 records=tuple(entry.records),
                                 from_cache=False, coalesced=True)

        if self.max_pending is not None and len(self._pending) >= self.max_pending:
            # Backpressure: shedding the query here keeps the pending
            # batch — and therefore worst-case flush latency — bounded.
            self.stats.rejected_overload += 1
            raise ServiceOverloadedError(
                f"pending batch is full ({len(self._pending)} of "
                f"{self.max_pending} points waiting)",
                {"error": "overloaded", "max_pending": self.max_pending,
                 "pending": len(self._pending)},
            )

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._in_flight[key] = future
        self._pending.append(_PendingPoint(key=key, config=config, future=future))
        if len(self._pending) == self.max_batch_size:
            # Exactly the crossing point spawns the flush; arrivals beyond
            # it are covered by that flush (it takes the whole pending
            # list when it acquires the lock), so they spawn nothing.
            self._cancel_flush_timer()
            self._spawn_flush()
        elif len(self._pending) < self.max_batch_size and self._flush_handle is None:
            self._flush_handle = loop.call_later(self.flush_interval,
                                                 self._on_flush_timer)
        entry = await self._await_entry(future, timeout_s, key)
        return ServiceResult(key=key, overrides=items,
                             records=tuple(entry.records),
                             from_cache=False, coalesced=False)

    # -- batching ----------------------------------------------------------------
    def _cancel_flush_timer(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None

    def _on_flush_timer(self) -> None:
        self._flush_handle = None
        self._spawn_flush()

    def _spawn_flush(self) -> None:
        task = asyncio.get_running_loop().create_task(self._flush())
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    def _evaluate_and_persist(
            self, batch: list[_PendingPoint]) -> tuple[list[CachedEntry], int]:
        """Worker-thread half of a flush: evaluate the batch and write it
        to the cache, returning the entries and the write-failure count.

        Runs off the event loop so neither the evaluation nor the disk
        persistence (per-entry writes plus the index flush — possibly on
        slow storage) stalls connections.  Cache mutation from this
        thread is safe against concurrent loop-side lookups: dict
        operations are GIL-atomic, so a racing ``get`` can at worst miss
        an entry mid-insert (costing a duplicate evaluation), never see
        a corrupt structure.  A cache-write failure must not fail — let
        alone hang — the query: the evaluation succeeded, the point just
        is not memoised.
        """
        work = [WorkItem(config=point.config, scheme_names=self.scheme_names,
                         baseline_name=self.baseline_name)
                for point in batch]
        outcomes = list(self.executor.run(work))
        if len(outcomes) != len(batch):
            # A pluggable executor violating the run(items) contract must
            # fail the batch loudly — a silent short zip would strand the
            # tail's futures forever.  RuntimeError, not a ReproError:
            # this is a server fault, reported to HTTP clients as a 500.
            raise RuntimeError(
                f"executor {getattr(self.executor, 'name', self.executor)!r} "
                f"returned {len(outcomes)} results for {len(batch)} items"
            )
        entries = []
        write_failures = 0
        for point, outcome in zip(batch, outcomes):
            entry = CachedEntry(records=outcome.records,
                                comparison=outcome.comparison)
            try:
                self.cache.put(point.key, entry)
            except Exception:
                write_failures += 1
            entries.append(entry)
        try:
            self.cache.flush_index()
        except OSError:
            write_failures += 1
        return entries, write_failures

    async def _flush(self) -> None:
        """Run the pending batch through the executor and settle futures.

        Batches are serialised by a lock: misses arriving while one
        batch evaluates accumulate into the next, which is exactly the
        batching the executor wants.  Evaluation and cache persistence
        happen in a worker thread (:meth:`_evaluate_and_persist`);
        futures are settled and in-flight keys released back on the
        loop, on success and failure alike.
        """
        if self._flush_lock is None:
            self._flush_lock = asyncio.Lock()
        async with self._flush_lock:
            batch, self._pending = self._pending, []
            if not batch:
                return
            self._cancel_flush_timer()
            loop = asyncio.get_running_loop()
            try:
                entries, write_failures = await loop.run_in_executor(
                    None, self._evaluate_and_persist, batch)
            except Exception as exc:
                for point in batch:
                    self._in_flight.pop(point.key, None)
                    if not point.future.done():
                        point.future.set_exception(exc)
                return
            self.stats.cache_write_failures += write_failures
            for point, entry in zip(batch, entries):
                self._in_flight.pop(point.key, None)
                if not point.future.done():
                    point.future.set_result(entry)
            self.stats.batches += 1
            self.stats.evaluated += len(batch)
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))

    async def stop(self) -> None:
        """Stop accepting queries, flush pending batches, persist the
        index, and shut down an owned executor (process pool or
        distributed fleet).

        Every query already awaiting a batch is answered before this
        returns — shutdown never drops accepted work.
        """
        self._closed = True
        self._cancel_flush_timer()
        while self._pending or self._flush_tasks:
            await self._flush()
            if self._flush_tasks:
                await asyncio.gather(*self._flush_tasks, return_exceptions=True)
        try:
            self.cache.flush_index()
        except OSError:
            self.stats.cache_write_failures += 1
        close = getattr(self.executor, "close", None)
        if self._own_executor and callable(close):
            # Pool teardown joins worker processes/threads; keep it off
            # the event loop.
            await asyncio.get_running_loop().run_in_executor(None, close)

    def stats_payload(self) -> dict:
        """Service, cache, kernel and batching counters as JSON.

        Always carries ``service``, ``cache``, ``kernel`` (the
        process-wide leakage-kernel memo aggregate — *this* process
        only, so under process/distributed executors it reflects the
        coordinator, not the workers) and ``config``
        blocks; when the executor is a distributed fleet (anything with
        a ``stats_payload()`` of its own, e.g.
        :class:`~repro.engine.distributed.DistributedExecutor`), its
        counters ride along as a ``distributed`` block so coordinator
        observability needs no second endpoint.
        """
        from ..circuit.biasing import kernel_totals

        payload = {
            "service": self.stats.as_payload(),
            "cache": {
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "disk_hits": self.cache.stats.disk_hits,
                "puts": self.cache.stats.puts,
                "evictions": self.cache.stats.evictions,
                "memory_evictions": self.cache.stats.memory_evictions,
                "hit_rate": self.cache.stats.hit_rate,
                "memory_entries": len(self.cache),
            },
            "kernel": kernel_totals().as_payload(),
            "config": {
                "schemes": list(self.scheme_names),
                "baseline": self.baseline_name,
                "executor": getattr(self.executor, "name", type(self.executor).__name__),
                "max_batch_size": self.max_batch_size,
                "flush_interval": self.flush_interval,
                "max_pending": self.max_pending,
                "default_timeout_s": self.default_timeout_s,
                "pending": len(self._pending),
                "in_flight": len(self._in_flight),
            },
        }
        fleet_stats = getattr(self.executor, "stats_payload", None)
        if callable(fleet_stats):
            payload["distributed"] = fleet_stats()
        return payload


# ---------------------------------------------------------------------------
# HTTP front: minimal HTTP/1.1 over asyncio streams
# ---------------------------------------------------------------------------

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                500: "Internal Server Error", 503: "Service Unavailable",
                504: "Gateway Timeout"}


def _encode_response(status: int, payload: dict, *, close: bool) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        f"\r\n"
    ).encode("latin-1")
    return head + body


async def _read_http_message(reader: asyncio.StreamReader):
    """Parse one HTTP request or response off ``reader``.

    Returns ``(start_line, headers, body)`` with lower-cased header
    names, or ``None`` at a clean end of stream.  Raises
    :class:`ValueError` on a malformed message or an oversized body.
    """
    start_line = await reader.readline()
    if not start_line:
        return None
    start = start_line.decode("latin-1").strip()
    if not start:
        raise ValueError("empty start line")
    headers: dict[str, str] = {}
    header_lines = 0
    while True:
        # Count lines read, not dict entries: repeated same-name headers
        # overwrite one key and would otherwise bypass the bound.
        header_lines += 1
        if header_lines > MAX_HEADER_LINES:
            raise ValueError("too many header lines")
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ValueError("truncated headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError as exc:
        raise ValueError(f"bad Content-Length {raw_length!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError(f"unacceptable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return start, headers, body


class EvaluationServer:
    """Thin HTTP front over an :class:`EvaluationService`.

    Speaks just enough HTTP/1.1 (keep-alive, ``Content-Length`` bodies,
    JSON in and out) for the bundled :class:`ServiceClient`, ``curl``
    and standard HTTP libraries, with no dependency beyond asyncio
    streams.  Port ``0`` binds an ephemeral port, readable from
    :attr:`port` after :meth:`start`.
    """

    def __init__(self, service: EvaluationService, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "EvaluationServer":
        """Bind and start serving; resolves :attr:`port` when it was 0."""
        self._server = await asyncio.start_server(self._handle_connection,
                                                  host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (the ``__main__`` entry point's loop)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listening socket (the service itself keeps running)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    message = await _read_http_message(reader)
                except (ValueError, asyncio.IncompleteReadError):
                    writer.write(_encode_response(
                        400, {"error": "malformed-request"}, close=True))
                    await writer.drain()
                    return
                if message is None:
                    return
                start, headers, body = message
                parts = start.split()
                if len(parts) != 3:
                    writer.write(_encode_response(
                        400, {"error": "malformed-request"}, close=True))
                    await writer.drain()
                    return
                method, target, version = parts
                close = (headers.get("connection", "").lower() == "close"
                         or version == "HTTP/1.0")
                status, payload = await self._dispatch(method.upper(), target, body)
                writer.write(_encode_response(status, payload, close=close))
                await writer.drain()
                if close:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, method: str, target: str, body: bytes):
        """Route one request; returns ``(status, JSON payload)``."""
        target = target.split("?", 1)[0]
        if target == "/evaluate":
            if method != "POST":
                return 405, {"error": "method-not-allowed", "target": target}
            try:
                request = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                return 400, {"error": "invalid-json"}
            if not isinstance(request, dict):
                return 400, {"error": "invalid-json",
                             "message": "request body must be a JSON object"}
            overrides = request.get("overrides", {})
            try:
                result = await self.service.evaluate(
                    overrides, timeout_s=request.get("timeout_s"))
            except InvalidRequestError as exc:
                return 400, {"error": exc.payload.get("error", "invalid-request"),
                             **exc.payload}
            except (ServiceOverloadedError, DeadlineExceededError) as exc:
                return exc.status, dict(exc.payload)
            except DistributedError as exc:
                # Fleet infrastructure failure (workers lost, registration
                # timeout): the query was fine and a retry may succeed
                # once workers return — a 503, never a client error.
                return 503, {"error": "executor-unavailable",
                             "message": str(exc)}
            except ReproError as exc:
                # Model-level rejection of the point (e.g. an unknown
                # technology node only detected at evaluation time):
                # still the client's value, still a 400.
                return 400, {"error": "evaluation-failed", "message": str(exc)}
            except Exception as exc:
                # Server faults (executor contract violations, bugs)
                # must not masquerade as client errors.
                return 500, {"error": "internal-error", "message": str(exc)}
            return 200, result.as_payload()
        if method != "GET":
            return 405, {"error": "method-not-allowed", "target": target}
        if target == "/healthz":
            return 200, {"status": "ok"}
        if target == "/stats":
            return 200, self.service.stats_payload()
        if target == "/paths":
            return 200, {"paths": path_registry_records()}
        return 404, {"error": "unknown-endpoint", "target": target}


class ServiceClient:
    """Asyncio HTTP client for a running :class:`EvaluationServer`.

    Opens one connection per call — simple and stateless; the batching
    win comes from the server coalescing concurrent requests, not from
    connection reuse.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> None:
        self.host = host
        self.port = port

    async def _request(self, method: str, target: str,
                       payload: dict | None = None) -> tuple[int, dict]:
        """One HTTP round-trip; returns ``(status, decoded JSON body)``."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            body = b"" if payload is None else json.dumps(payload).encode("utf-8")
            head = (
                f"{method} {target} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n"
                f"\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()
            message = await _read_http_message(reader)
            if message is None:
                raise ConnectionError("server closed the connection mid-response")
            start, _headers, raw = message
            status = int(start.split()[1])
            return status, json.loads(raw.decode("utf-8")) if raw else {}
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def evaluate(self, overrides: Mapping[str, object],
                       timeout_s: float | None = None) -> dict:
        """Evaluate one design point; returns the response payload.

        ``timeout_s`` rides along as the query's server-side deadline.
        Raises :class:`InvalidRequestError` (with the server's
        structured payload) when the server rejects the query — route on
        ``payload["error"]`` to distinguish overload (``overloaded``)
        and deadline (``deadline-exceeded``) answers from malformed
        queries.
        """
        body: dict[str, object] = {"overrides": dict(overrides)}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        status, payload = await self._request("POST", "/evaluate", body)
        if status != 200:
            raise InvalidRequestError(
                str(payload.get("message", payload.get("error", "request failed"))),
                payload,
            )
        return payload

    async def stats(self) -> dict:
        """The server's ``GET /stats`` payload."""
        status, payload = await self._request("GET", "/stats")
        if status != 200:
            raise ConnectionError(f"GET /stats failed with status {status}")
        return payload

    async def paths(self) -> list[dict]:
        """The sweepable-path registry served at ``GET /paths``."""
        status, payload = await self._request("GET", "/paths")
        if status != 200:
            raise ConnectionError(f"GET /paths failed with status {status}")
        return payload["paths"]

    async def health(self) -> bool:
        """True when ``GET /healthz`` answers ok."""
        status, payload = await self._request("GET", "/healthz")
        return status == 200 and payload.get("status") == "ok"


# ---------------------------------------------------------------------------
# CLI entry point: python -m repro.engine.service
# ---------------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.service",
        description="Serve design-point evaluations over HTTP, sharing one "
                    "warm cache and batching misses through the executor.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port (0 = ephemeral; default {DEFAULT_PORT})")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the shared disk cache "
                             "(default: in-memory only)")
    parser.add_argument("--executor", default="auto",
                        choices=["serial", "process", "auto", "distributed"],
                        help="how batched misses are evaluated")
    parser.add_argument("--workers", type=int, default=None,
                        help="spawn this many local worker processes "
                             "(distributed executor only)")
    parser.add_argument("--listen", default=None, metavar="HOST:PORT",
                        help="where the distributed coordinator accepts "
                             "external worker registrations "
                             "(default 127.0.0.1:0; distributed only)")
    parser.add_argument("--schemes", default=None,
                        help="comma-separated scheme list (default: all)")
    parser.add_argument("--baseline", default="SC", help="savings baseline scheme")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="flush the miss batch at this many points")
    parser.add_argument("--flush-interval", type=float, default=0.02,
                        help="flush the miss batch after this many seconds")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="process-executor worker bound")
    parser.add_argument("--max-disk-entries", type=int, default=None,
                        help="LRU bound on the disk cache entry count "
                             "(requires --cache-dir)")
    parser.add_argument("--max-disk-bytes", type=int, default=None,
                        help="LRU byte budget on the disk cache payload "
                             "total (requires --cache-dir)")
    parser.add_argument("--max-memory-entries", type=int, default=None,
                        help="LRU bound on the in-memory cache layer "
                             "(default: unbounded; set it for long-lived "
                             "servers fed unbounded point streams)")
    parser.add_argument("--writer-id", default=None,
                        help="journal cache index writes under this id "
                             "(multi-host shared caches; requires --cache-dir)")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="reject fresh misses (HTTP 503) while this many "
                             "points wait in the pending batch")
    parser.add_argument("--default-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="deadline applied to queries without their own "
                             "timeout_s (HTTP 504 on expiry)")
    return parser


def _executor_from_args(args: argparse.Namespace) -> object:
    """The executor spec (string or instance) an argv namespace asks for."""
    if args.executor != "distributed":
        if args.workers is not None or args.listen is not None:
            raise ConfigurationError(
                "--workers/--listen configure the worker fleet and need "
                "--executor distributed"
            )
        return args.executor
    from .distributed import DistributedExecutor, parse_address

    listen_host, listen_port = ("127.0.0.1", 0)
    if args.listen is not None:
        listen_host, listen_port = parse_address(args.listen)
    spawn = args.workers if args.workers is not None else 0
    if spawn == 0 and args.listen is None:
        raise ConfigurationError(
            "--executor distributed needs --workers N (spawn a local fleet) "
            "and/or --listen HOST:PORT (accept external workers)"
        )
    return DistributedExecutor(host=listen_host, port=listen_port,
                               spawn_workers=spawn,
                               min_workers=max(1, spawn))


def service_from_args(args: argparse.Namespace) -> EvaluationService:
    """Build the :class:`EvaluationService` an argv namespace describes."""
    cache = None
    if args.cache_dir is not None:
        cache = EvaluationCache(directory=args.cache_dir,
                                max_disk_entries=args.max_disk_entries,
                                max_disk_bytes=getattr(args, "max_disk_bytes", None),
                                max_memory_entries=args.max_memory_entries,
                                writer_id=getattr(args, "writer_id", None))
    elif args.max_disk_entries is not None or getattr(args, "max_disk_bytes", None) is not None:
        raise ConfigurationError(
            "--max-disk-entries/--max-disk-bytes bound the disk store and "
            "need --cache-dir; use --max-memory-entries to bound the "
            "in-memory cache"
        )
    elif getattr(args, "writer_id", None) is not None:
        raise ConfigurationError(
            "--writer-id journals the disk index and needs --cache-dir"
        )
    elif args.max_memory_entries is not None:
        cache = EvaluationCache(max_memory_entries=args.max_memory_entries)
    schemes = None
    if args.schemes:
        schemes = [name.strip() for name in args.schemes.split(",") if name.strip()]
    return EvaluationService(
        scheme_names=schemes,
        baseline_name=args.baseline,
        executor=_executor_from_args(args),
        cache=cache,
        max_batch_size=args.batch_size,
        flush_interval=args.flush_interval,
        max_workers=args.max_workers,
        max_pending=getattr(args, "max_pending", None),
        default_timeout_s=getattr(args, "default_timeout", None),
        own_executor=True,
    )


async def _serve(args: argparse.Namespace) -> None:
    service = service_from_args(args)
    server = EvaluationServer(service, host=args.host, port=args.port)
    await server.start()
    config = service.stats_payload()["config"]
    print(f"evaluation service on http://{args.host}:{server.port} "
          f"(schemes {config['schemes']}, executor {config['executor']}, "
          f"batch<= {config['max_batch_size']}, "
          f"window {config['flush_interval']}s)", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - signal-driven exit
        pass
    finally:
        await server.stop()
        await service.stop()


def main(argv: Sequence[str] | None = None) -> int:
    """Run a standalone evaluation server until interrupted."""
    import sys

    args = _build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
