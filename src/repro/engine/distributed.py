"""Distributed executor: the ``run(items)`` contract over TCP workers.

The executor layer was built pluggable so the same
``run(items: list[WorkItem]) -> list[EvaluatedPoint]`` contract could
span multiple hosts; this module is that span.  A
:class:`DistributedExecutor` is the *coordinator* of a fleet of
persistent worker processes (``python -m repro.engine.worker``): it
listens on a TCP socket, accepts worker registrations, partitions work
items across the registered workers one item at a time (natural load
balancing — a slow host simply takes fewer items), and reassembles the
results in submission order.  Everything is standard library: sockets,
threads and JSON.

Wire protocol
-------------
Messages are JSON objects framed by a 4-byte big-endian length prefix
(:func:`send_frame` / :func:`recv_frame`).  Every message carries a
``"type"``:

========== =========== ====================================================
type       direction   meaning
========== =========== ====================================================
register   w -> c      first frame on any connection: worker id, protocol
                       and model version
registered c -> w      registration accepted (carries the final worker id)
rejected   c -> w      registration refused (version/protocol mismatch)
evaluate   c -> w      one work item: task index, config overrides,
                       scheme list, baseline
result     w -> c      the item's comparison records
error      w -> c      deterministic evaluation failure (fails the run —
                       re-dispatching a model-level rejection elsewhere
                       would fail the same way)
ping/pong  both        idle-connection heartbeat
shutdown   c -> w      drain and exit
========== =========== ====================================================

Configs travel as *dotted-path overrides* against a default
:class:`~repro.core.config.ExperimentConfig`
(:func:`config_to_wire` / :func:`config_from_wire`) — the same
vocabulary as the service's queries — so the wire format is JSON-safe,
compact (defaults are omitted) and automatically covers every field the
path registry knows about.

Failure semantics
-----------------
Worker *death* (socket error, EOF, heartbeat failure) re-queues the
item the worker held and drops the worker; an item that has been
dispatched ``max_attempts`` times without an answer fails the run, as
does losing every worker while items are outstanding.  A worker
*error frame* (the model rejected the point) fails the run immediately
— it is deterministic, so retrying elsewhere cannot help.  Either way
``run`` raises :class:`~repro.errors.DistributedError` only after every
in-flight item has settled, so the executor survives a failed run and
the persistent pool remains usable for the next one.

See ``docs/distributed.md`` for topology and deployment notes.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import subprocess
import sys
import threading
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..core.config import ExperimentConfig
from ..core.paths import PATH_SEPARATOR, get_path, sweepable_paths
from ..errors import ConfigurationError, DistributedError, ReproError
from .executor import EvaluatedPoint, WorkItem

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
    "config_to_wire",
    "config_from_wire",
    "DistributedStats",
    "DistributedExecutor",
    "parse_address",
]

#: Bumped when the frame vocabulary changes incompatibly; registration
#: carries it so a version-skewed worker is rejected instead of fed.
PROTOCOL_VERSION = 1

#: Largest accepted frame.  Comparison records for one point are a few
#: KiB; this bound exists so a corrupt length prefix cannot make either
#: side try to allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH_BYTES = 4

#: JSON-safe scalar types a config leaf may hold on the wire.
_WIRE_SCALARS = (bool, int, float, str, type(None))


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` at a clean end of stream
    (no bytes at all), :class:`DistributedError` on a mid-read EOF."""
    chunks: list[bytes] = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            if received == 0:
                return None
            raise DistributedError("connection closed mid-frame")
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, message: Mapping[str, object]) -> None:
    """Send one length-prefixed JSON message over ``sock``."""
    data = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise DistributedError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    sock.sendall(len(data).to_bytes(_LENGTH_BYTES, "big") + data)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one framed message; ``None`` at a clean end of stream.

    Raises :class:`~repro.errors.DistributedError` for truncated frames,
    oversized or zero length prefixes, and payloads that are not a JSON
    object with a string ``"type"``.
    """
    header = _recv_exact(sock, _LENGTH_BYTES)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if not 0 < length <= MAX_FRAME_BYTES:
        raise DistributedError(f"unacceptable frame length {length}")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise DistributedError("connection closed mid-frame")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DistributedError(f"malformed frame payload: {exc}") from exc
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise DistributedError("frame payload must be an object with a 'type'")
    return message


# ---------------------------------------------------------------------------
# config serialisation: dotted-path overrides against the default config
# ---------------------------------------------------------------------------

def config_to_wire(config: ExperimentConfig) -> dict[str, object]:
    """JSON-safe dotted-path overrides that rebuild ``config``.

    Leaves holding their default value are omitted — except under a
    materialised ``noc`` branch, whose every leaf is sent so the worker
    materialises the branch too (an all-default branch would otherwise
    vanish in transit).  Derived from the live path registry, so a field
    added to any nested config ships without touching this module.
    """
    base = ExperimentConfig()
    noc_prefix = "noc" + PATH_SEPARATOR
    overrides: dict[str, object] = {}
    for path in sweepable_paths():
        if path.startswith(noc_prefix) and config.noc is None:
            continue
        value = get_path(config, path)
        if path.startswith(noc_prefix) or value != get_path(base, path):
            if not isinstance(value, _WIRE_SCALARS):
                raise DistributedError(
                    f"config leaf {path!r} holds non-JSON-safe {value!r}"
                )
            overrides[path] = value
    return overrides


def config_from_wire(overrides: object) -> ExperimentConfig:
    """Rebuild the :class:`ExperimentConfig` a wire message describes.

    The overrides re-validate through the same path layer as service
    queries, so a malformed path or rejected value raises (and the
    worker answers with an ``error`` frame instead of evaluating).
    """
    if not isinstance(overrides, Mapping):
        raise DistributedError(
            f"wire overrides must be an object, got {type(overrides).__name__}"
        )
    try:
        return ExperimentConfig().with_overrides(
            **{str(path): value for path, value in overrides.items()})
    except ReproError:
        raise
    except TypeError as exc:
        raise DistributedError(f"malformed wire overrides: {exc}") from exc


def parse_address(spec: str, default_port: int = 0) -> tuple[str, int]:
    """Parse ``"host:port"`` (or bare ``"host"``) into ``(host, port)``."""
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        return spec, default_port
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ConfigurationError(f"bad port in address {spec!r}") from exc
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"port out of range in address {spec!r}")
    return host or "127.0.0.1", port


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------

@dataclass
class DistributedStats:
    """Fleet accounting for one :class:`DistributedExecutor`."""

    workers_registered: int = 0
    workers_rejected: int = 0
    workers_lost: int = 0
    dispatched: int = 0
    completed: int = 0
    redispatched: int = 0
    heartbeats: int = 0

    def as_payload(self) -> dict:
        """JSON-safe counter dict (every field, by construction)."""
        import dataclasses

        return dataclasses.asdict(self)


class _Shutdown:
    """Queue sentinel: the consuming worker thread drains and exits."""


@dataclass
class _RunState:
    """Completion bookkeeping for one ``run(items)`` call."""

    outstanding: int
    results: dict[int, list] = field(default_factory=dict)
    failure: DistributedError | None = None


@dataclass
class _Task:
    """One dispatchable work item within a run."""

    index: int
    frame: dict
    state: _RunState
    attempts: int = 0


class _WorkerHandle:
    """Coordinator-side state of one registered worker connection."""

    def __init__(self, worker_id: str, sock: socket.socket, address: str) -> None:
        self.worker_id = worker_id
        self.sock = sock
        self.address = address
        self.completed = 0
        self.alive = True
        self.thread: threading.Thread | None = None


class DistributedExecutor:
    """Coordinate a fleet of TCP workers behind the ``run(items)`` contract.

    Parameters
    ----------
    host / port:
        Where the coordinator listens for worker registrations.  Port
        ``0`` binds an ephemeral port, readable from :attr:`address`
        after :meth:`start`.
    spawn_workers:
        Convenience: launch this many local worker subprocesses
        (``python -m repro.engine.worker --connect``) pointed at the
        listening socket.  ``0`` (the default) expects workers to be
        started externally.
    connect:
        Addresses (``"host:port"`` strings or ``(host, port)`` tuples)
        of workers running in ``--listen`` mode; the coordinator dials
        out to them instead of waiting for them to dial in.
    min_workers:
        ``run`` waits until this many workers are registered before
        dispatching (default: the spawned plus dialled count, at least
        one).
    max_attempts:
        Dispatch attempts per item before the run fails (re-dispatch
        happens only on worker death, never on a deterministic
        evaluation error).
    heartbeat_interval:
        Idle workers are pinged this often (seconds); a worker that
        fails its heartbeat is dropped from the pool.
    register_timeout:
        How long to wait for ``min_workers`` registrations, for the
        registration frame of a new connection, and for a dial-out to
        succeed.
    item_timeout:
        Per-dispatch socket timeout (seconds); ``None`` waits as long
        as the worker keeps the connection alive.  A timeout counts as
        worker death: the item is re-dispatched elsewhere.

    The pool is persistent: workers stay registered across ``run``
    calls (the evaluation service's successive batch flushes reuse the
    same fleet), idle connections are kept healthy by heartbeats, and
    :meth:`close` — also reachable as a context manager — shuts the
    fleet down.
    """

    name = "distributed"

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 spawn_workers: int = 0,
                 connect: Sequence[object] = (),
                 min_workers: int | None = None,
                 max_attempts: int = 3,
                 heartbeat_interval: float = 5.0,
                 register_timeout: float = 20.0,
                 item_timeout: float | None = None) -> None:
        if spawn_workers < 0:
            raise ConfigurationError("spawn_workers cannot be negative")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if heartbeat_interval <= 0 or register_timeout <= 0:
            raise ConfigurationError("intervals and timeouts must be positive")
        if item_timeout is not None and item_timeout <= 0:
            raise ConfigurationError("item_timeout must be positive (or None)")
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.connect = [addr if isinstance(addr, tuple) else parse_address(str(addr))
                        for addr in connect]
        expected = spawn_workers + len(self.connect)
        if min_workers is not None and min_workers < 1:
            raise ConfigurationError("min_workers must be at least 1")
        self.min_workers = min_workers if min_workers is not None else max(1, expected)
        self.max_attempts = max_attempts
        self.heartbeat_interval = heartbeat_interval
        self.register_timeout = register_timeout
        self.item_timeout = item_timeout
        self.stats = DistributedStats()
        self._cond = threading.Condition()
        self._tasks: queue.Queue = queue.Queue()
        self._workers: dict[str, _WorkerHandle] = {}
        self._spawned: list[subprocess.Popen] = []
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._run_lock = threading.Lock()
        self._state: _RunState | None = None
        self._started = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The coordinator's listening ``(host, port)`` (after start)."""
        return self.host, self.port

    def start(self) -> "DistributedExecutor":
        """Bind the listener, spawn/dial workers; idempotent."""
        with self._cond:
            if self._closed:
                raise DistributedError("executor is closed")
            if self._started:
                return self
            self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-dist-accept", daemon=True)
        self._accept_thread.start()
        for index in range(self.spawn_workers):
            self._spawned.append(self._spawn_local_worker(index))
        for address in self.connect:
            threading.Thread(target=self._dial_worker, args=(address,),
                             name=f"repro-dist-dial-{address[0]}:{address[1]}",
                             daemon=True).start()
        return self

    def _connect_host(self) -> str:
        """The address spawned local workers dial (wildcards -> loopback)."""
        if self.host in ("", "0.0.0.0", "::"):
            return "127.0.0.1"
        return self.host

    def _spawn_local_worker(self, index: int) -> subprocess.Popen:
        """Launch one local worker subprocess pointed at the listener."""
        import repro

        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (package_root if not existing
                             else package_root + os.pathsep + existing)
        command = [sys.executable, "-m", "repro.engine.worker",
                   "--connect", f"{self._connect_host()}:{self.port}",
                   "--worker-id", f"local-{index}-{os.getpid()}"]
        return subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)

    def _dial_worker(self, address: tuple[str, int]) -> None:
        """Dial out to a ``--listen`` worker, retrying until the
        registration window closes; the accepted socket registers through
        the same handshake as an inbound connection."""
        deadline = time.monotonic() + self.register_timeout
        while not self._closed:
            try:
                sock = socket.create_connection(address, timeout=self.register_timeout)
            except OSError:
                if time.monotonic() >= deadline:
                    return
                time.sleep(0.1)
                continue
            self._register_connection(sock, f"{address[0]}:{address[1]}")
            return

    def close(self) -> None:
        """Shut the fleet down: signal every worker, close the listener,
        reap spawned subprocesses.  Idempotent; the pool cannot be
        restarted afterwards."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            handles = list(self._workers.values())
            # A run blocked on the condition must not wait forever for
            # workers that are about to exit: fail it and wake it now.
            state = self._state
            if state is not None and state.failure is None:
                state.failure = DistributedError(
                    f"executor closed with {state.outstanding} items "
                    f"outstanding"
                )
            self._cond.notify_all()
        for _ in handles:
            self._tasks.put(_Shutdown())
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for handle in handles:
            if handle.thread is not None:
                handle.thread.join(timeout=5.0)
        for process in self._spawned:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    process.kill()
        with self._cond:
            self._workers.clear()

    def __enter__(self) -> "DistributedExecutor":
        """Start the fleet on entry."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Close the fleet on exit."""
        self.close()

    # -- registration ------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._register_connection,
                args=(sock, f"{peer[0]}:{peer[1]}"),
                name="repro-dist-register", daemon=True).start()

    def _register_connection(self, sock: socket.socket, address: str) -> None:
        """Run the registration handshake on a fresh connection and, on
        success, hand the socket to a dedicated dispatch thread."""
        from .. import __version__

        try:
            sock.settimeout(self.register_timeout)
            message = recv_frame(sock)
            if message is None or message["type"] != "register":
                raise DistributedError("expected a register frame")
            problem = None
            if message.get("protocol") != PROTOCOL_VERSION:
                problem = (f"protocol {message.get('protocol')!r} != "
                           f"{PROTOCOL_VERSION}")
            elif message.get("model_version") != __version__:
                # A version-skewed worker would silently poison the cache:
                # results are stored under the coordinator's version key.
                problem = (f"model version {message.get('model_version')!r} "
                           f"!= {__version__!r}")
            if problem is not None:
                # Count before answering: a peer that reads the rejection
                # must already see it in the stats.
                with self._cond:
                    self.stats.workers_rejected += 1
                send_frame(sock, {"type": "rejected", "reason": problem})
                sock.close()
                return
        except (OSError, DistributedError, ValueError, KeyError):
            try:
                sock.close()
            except OSError:
                pass
            return
        # Uniquify and insert under ONE lock acquisition: two concurrent
        # same-id registrations must end up as two tracked handles, not
        # one silently overwriting the other.
        worker_id = str(message.get("worker") or address)
        with self._cond:
            if self._closed:
                sock.close()
                return
            while worker_id in self._workers:
                worker_id += "+"
            handle = _WorkerHandle(worker_id, sock, address)
            self._workers[worker_id] = handle
            self.stats.workers_registered += 1
            self._cond.notify_all()
        try:
            send_frame(sock, {"type": "registered", "worker": worker_id})
            sock.settimeout(None)
        except (OSError, DistributedError):
            self._forget_worker(handle)
            return
        handle.thread = threading.Thread(
            target=self._worker_loop, args=(handle,),
            name=f"repro-dist-{worker_id}", daemon=True)
        handle.thread.start()

    def _alive_count(self) -> int:
        return sum(1 for handle in self._workers.values() if handle.alive)

    def _wait_for_workers(self, needed: int) -> None:
        deadline = time.monotonic() + self.register_timeout
        with self._cond:
            while self._alive_count() < needed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DistributedError(
                        f"only {self._alive_count()} of {needed} workers "
                        f"registered within {self.register_timeout}s"
                    )
                self._cond.wait(remaining)

    # -- dispatch ----------------------------------------------------------------
    def _worker_loop(self, handle: _WorkerHandle) -> None:
        """Sole owner of one worker's socket: pulls tasks off the shared
        queue, heartbeats when idle, exits (re-queueing its task) when
        the worker dies."""
        try:
            while True:
                with self._cond:
                    if self._closed or not handle.alive:
                        return
                try:
                    task = self._tasks.get(timeout=self.heartbeat_interval)
                except queue.Empty:
                    if not self._heartbeat(handle):
                        return
                    continue
                if isinstance(task, _Shutdown):
                    try:
                        send_frame(handle.sock, {"type": "shutdown"})
                    except OSError:
                        pass
                    return
                if task.state.failure is not None:
                    # The run already failed: settle the task without
                    # evaluating so run() can finish draining.
                    self._settle_failed(task)
                    continue
                if not self._dispatch(handle, task):
                    self._requeue(task)
                    return
        finally:
            self._forget_worker(handle)

    def _dispatch(self, handle: _WorkerHandle, task: _Task) -> bool:
        """Send one item and read its answer.  True when the task
        settled (result or deterministic error); False when the worker
        must be dropped and the task re-queued."""
        with self._cond:
            self.stats.dispatched += 1
        try:
            handle.sock.settimeout(self.item_timeout)
            send_frame(handle.sock, task.frame)
            while True:
                message = recv_frame(handle.sock)
                if message is None:
                    return False
                mtype = message["type"]
                if mtype == "pong":
                    continue  # stale heartbeat answer
                if mtype == "result" and message.get("task") == task.index:
                    records = message.get("records")
                    if not isinstance(records, list):
                        return False  # protocol violation: drop the worker
                    self._complete(handle, task, records)
                    return True
                if mtype == "error" and message.get("task") == task.index:
                    self._fail_run(task, DistributedError(
                        f"worker {handle.worker_id!r} failed item "
                        f"{task.index}: {message.get('message')}"
                    ))
                    return True
                return False  # unexpected frame: drop the worker
        except (OSError, DistributedError, ValueError):
            return False

    def _heartbeat(self, handle: _WorkerHandle) -> bool:
        """Ping an idle worker; False means the worker is gone."""
        try:
            handle.sock.settimeout(self.heartbeat_interval)
            send_frame(handle.sock, {"type": "ping"})
            while True:
                message = recv_frame(handle.sock)
                if message is None:
                    return False
                if message["type"] == "pong":
                    with self._cond:
                        self.stats.heartbeats += 1
                    return True
        except (OSError, DistributedError, ValueError):
            return False

    def _complete(self, handle: _WorkerHandle, task: _Task,
                  records: list) -> None:
        with self._cond:
            handle.completed += 1
            self.stats.completed += 1
            task.state.results[task.index] = records
            task.state.outstanding -= 1
            self._cond.notify_all()

    def _fail_run(self, task: _Task, failure: DistributedError) -> None:
        with self._cond:
            if task.state.failure is None:
                task.state.failure = failure
            task.state.outstanding -= 1
            self._cond.notify_all()

    def _settle_failed(self, task: _Task) -> None:
        with self._cond:
            task.state.outstanding -= 1
            self._cond.notify_all()

    def _requeue(self, task: _Task) -> None:
        """Give a died-worker's item another dispatch, or fail the run
        once its attempt budget is spent."""
        task.attempts += 1
        if task.attempts >= self.max_attempts:
            self._fail_run(task, DistributedError(
                f"item {task.index} failed after {task.attempts} dispatch "
                f"attempts (workers kept dying under it)"
            ))
            return
        with self._cond:
            self.stats.redispatched += 1
        self._tasks.put(task)

    def _forget_worker(self, handle: _WorkerHandle) -> None:
        with self._cond:
            was_alive = handle.alive
            handle.alive = False
            self._workers.pop(handle.worker_id, None)
            if was_alive and not self._closed:
                self.stats.workers_lost += 1
                state = self._state
                if (state is not None and state.failure is None
                        and state.outstanding > 0 and self._alive_count() == 0):
                    state.failure = DistributedError(
                        f"all workers lost with {state.outstanding} items "
                        f"outstanding"
                    )
                self._cond.notify_all()
        try:
            handle.sock.close()
        except OSError:
            pass

    # -- the run(items) contract -------------------------------------------------
    def run(self, items: list[WorkItem]) -> list[EvaluatedPoint]:
        """Evaluate ``items`` across the fleet; results return in
        submission order, carrying records only (no live comparison).

        Raises :class:`~repro.errors.DistributedError` when the fleet
        cannot finish the batch; the pool survives a failed run.
        """
        if not items:
            return []
        with self._run_lock:
            self.start()
            self._wait_for_workers(self.min_workers)
            state = _RunState(outstanding=len(items))
            with self._cond:
                self._state = state
            for index, item in enumerate(items):
                frame = {
                    "type": "evaluate",
                    "task": index,
                    "overrides": config_to_wire(item.config),
                    "schemes": list(item.scheme_names),
                    "baseline": item.baseline_name,
                }
                self._tasks.put(_Task(index=index, frame=frame, state=state))
            with self._cond:
                # A failure ends the wait immediately: with every worker
                # gone nobody is left to settle the queued remainder.
                while state.outstanding > 0 and state.failure is None:
                    self._cond.wait()
                self._state = None
                failure = state.failure
            self._drain_tasks()
            if failure is not None:
                raise failure
            return [EvaluatedPoint(records=state.results[index])
                    for index in range(len(items))]

    def _drain_tasks(self) -> None:
        """Drop any tasks a failed run left queued (shutdown sentinels
        are preserved for the worker threads they target)."""
        leftovers = []
        while True:
            try:
                task = self._tasks.get_nowait()
            except queue.Empty:
                break
            if isinstance(task, _Shutdown):
                leftovers.append(task)
        for sentinel in leftovers:
            self._tasks.put(sentinel)

    # -- introspection -----------------------------------------------------------
    def workers_payload(self) -> dict[str, dict]:
        """JSON-safe per-worker snapshot (id -> address, completed count)."""
        with self._cond:
            return {
                worker_id: {"address": handle.address,
                            "completed": handle.completed,
                            "alive": handle.alive}
                for worker_id, handle in self._workers.items()
            }

    def stats_payload(self) -> dict:
        """Fleet counters plus the live per-worker snapshot."""
        payload = self.stats.as_payload()
        payload["workers"] = self.workers_payload()
        payload["address"] = f"{self.host}:{self.port}"
        return payload
