"""Parallel, cached design-space evaluation engine (DESIGN.md S8+).

The engine generalises the single-parameter sweep to arbitrary grids
and explicit point lists (:class:`DesignSpace`), memoises every
evaluated point behind a content-addressed cache
(:class:`EvaluationCache`), fans misses out serially, across a process
pool, or across a TCP worker fleet
(:mod:`repro.engine.executor` / :mod:`repro.engine.distributed` with
``python -m repro.engine.worker`` workers), and returns a queryable
:class:`ResultSet` (filtering, series extraction, Pareto fronts).
For online use, :mod:`repro.engine.service` wraps the same cache and
executor in a long-running asyncio service (HTTP front +
:class:`ServiceClient`; run it with ``python -m repro.engine.service``),
and ``python -m repro.engine.cache`` maintains long-lived disk caches —
shareable across hosts via per-writer index journaling
(``writer_id``).

Axes are config paths: the flat ``ExperimentConfig`` scalars, dotted
paths into the nested structure (``"crossbar.port_count"``,
``"crossbar.flit_width"``), or unambiguous leaf aliases
(``"port_count"``) — see :mod:`repro.core.paths`.  Paths marked
``[network-level]`` in :func:`sweepable_paths` vary the config point for
:class:`~repro.noc.noc_power.NocPowerModel` consumers but not the
Table-1 records the evaluator caches.

Quickstart::

    from repro.engine import DesignSpace, Evaluator

    space = DesignSpace.grid({
        "crossbar.port_count": [3, 5, 8],
        "static_probability": [0.1, 0.5, 0.9],
    })
    results = Evaluator(executor="auto").evaluate(space)
    for value, power in results.filter(static_probability=0.5).series(
            "SDPC", "total_power_mw", axis="crossbar.port_count"):
        print(value, power)
"""

from ..core.paths import describe_path, get_path, normalize_path, set_path, sweepable_paths
from .cache import CacheStats, CachedEntry, EvaluationCache, point_key
from .evaluator import Evaluator
from .executor import ProcessExecutor, SerialExecutor, resolve_executor
from .grid import SWEEPABLE_FIELDS, DesignSpace, GridPoint
from .resultset import PointResult, ResultSet

#: Service and distributed-layer symbols resolved lazily (PEP 562):
#: ``python -m repro.engine.service`` / ``python -m repro.engine.worker``
#: must be able to execute those modules as ``__main__`` without this
#: package having imported them first (runpy warns about exactly that),
#: and ``import repro`` stays light.
_LAZY_EXPORTS = {
    "EvaluationServer": "service",
    "EvaluationService": "service",
    "InvalidRequestError": "service",
    "ServiceOverloadedError": "service",
    "DeadlineExceededError": "service",
    "ServiceClient": "service",
    "ServiceResult": "service",
    "ServiceStats": "service",
    "DistributedExecutor": "distributed",
    "DistributedStats": "distributed",
}


def __getattr__(name: str):
    """Resolve the service- and distributed-layer exports on first access."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CacheStats",
    "CachedEntry",
    "DeadlineExceededError",
    "DesignSpace",
    "DistributedExecutor",
    "DistributedStats",
    "EvaluationCache",
    "EvaluationServer",
    "EvaluationService",
    "Evaluator",
    "GridPoint",
    "InvalidRequestError",
    "PointResult",
    "ProcessExecutor",
    "ResultSet",
    "SWEEPABLE_FIELDS",
    "SerialExecutor",
    "ServiceClient",
    "ServiceOverloadedError",
    "ServiceResult",
    "ServiceStats",
    "describe_path",
    "get_path",
    "normalize_path",
    "point_key",
    "resolve_executor",
    "set_path",
    "sweepable_paths",
]
