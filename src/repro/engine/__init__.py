"""Parallel, cached design-space evaluation engine (DESIGN.md S8+).

The engine generalises the single-parameter sweep to arbitrary grids
and explicit point lists (:class:`DesignSpace`), memoises every
evaluated point behind a content-addressed cache
(:class:`EvaluationCache`), fans misses out serially or across a
process pool (:mod:`repro.engine.executor`), and returns a queryable
:class:`ResultSet` (filtering, series extraction, Pareto fronts).
For online use, :mod:`repro.engine.service` wraps the same cache and
executor in a long-running asyncio service (HTTP front +
:class:`ServiceClient`; run it with ``python -m repro.engine.service``),
and ``python -m repro.engine.cache`` maintains long-lived disk caches.

Axes are config paths: the flat ``ExperimentConfig`` scalars, dotted
paths into the nested structure (``"crossbar.port_count"``,
``"crossbar.flit_width"``), or unambiguous leaf aliases
(``"port_count"``) — see :mod:`repro.core.paths`.  Paths marked
``[network-level]`` in :func:`sweepable_paths` vary the config point for
:class:`~repro.noc.noc_power.NocPowerModel` consumers but not the
Table-1 records the evaluator caches.

Quickstart::

    from repro.engine import DesignSpace, Evaluator

    space = DesignSpace.grid({
        "crossbar.port_count": [3, 5, 8],
        "static_probability": [0.1, 0.5, 0.9],
    })
    results = Evaluator(executor="auto").evaluate(space)
    for value, power in results.filter(static_probability=0.5).series(
            "SDPC", "total_power_mw", axis="crossbar.port_count"):
        print(value, power)
"""

from ..core.paths import describe_path, get_path, normalize_path, set_path, sweepable_paths
from .cache import CacheStats, CachedEntry, EvaluationCache, point_key
from .evaluator import Evaluator
from .executor import ProcessExecutor, SerialExecutor, resolve_executor
from .grid import SWEEPABLE_FIELDS, DesignSpace, GridPoint
from .resultset import PointResult, ResultSet

#: Service symbols resolved lazily (PEP 562): ``python -m
#: repro.engine.service`` must be able to execute the module as
#: ``__main__`` without this package having imported it first (runpy
#: warns about exactly that), and ``import repro`` stays light.
_SERVICE_EXPORTS = frozenset({
    "EvaluationServer",
    "EvaluationService",
    "InvalidRequestError",
    "ServiceClient",
    "ServiceResult",
    "ServiceStats",
})


def __getattr__(name: str):
    """Resolve the service-layer exports on first access."""
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CacheStats",
    "CachedEntry",
    "DesignSpace",
    "EvaluationCache",
    "EvaluationServer",
    "EvaluationService",
    "Evaluator",
    "GridPoint",
    "InvalidRequestError",
    "PointResult",
    "ProcessExecutor",
    "ResultSet",
    "SWEEPABLE_FIELDS",
    "SerialExecutor",
    "ServiceClient",
    "ServiceResult",
    "ServiceStats",
    "describe_path",
    "get_path",
    "normalize_path",
    "point_key",
    "resolve_executor",
    "set_path",
    "sweepable_paths",
]
