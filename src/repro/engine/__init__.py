"""Parallel, cached design-space evaluation engine (DESIGN.md S8+).

The engine generalises the single-parameter sweep to arbitrary grids
and explicit point lists (:class:`DesignSpace`), memoises every
evaluated point behind a content-addressed cache
(:class:`EvaluationCache`), fans misses out serially or across a
process pool (:mod:`repro.engine.executor`), and returns a queryable
:class:`ResultSet` (filtering, series extraction, Pareto fronts).

Quickstart::

    from repro.engine import DesignSpace, Evaluator

    space = DesignSpace.grid({
        "temperature_celsius": [25.0, 70.0, 110.0],
        "static_probability": [0.1, 0.5, 0.9],
    })
    results = Evaluator(executor="auto").evaluate(space)
    for value, power in results.filter(temperature_celsius=110.0).series(
            "SDPC", "total_power_mw", axis="static_probability"):
        print(value, power)
"""

from .cache import CacheStats, CachedEntry, EvaluationCache, point_key
from .evaluator import Evaluator
from .executor import ProcessExecutor, SerialExecutor, resolve_executor
from .grid import SWEEPABLE_FIELDS, DesignSpace, GridPoint
from .resultset import PointResult, ResultSet

__all__ = [
    "CacheStats",
    "CachedEntry",
    "DesignSpace",
    "EvaluationCache",
    "Evaluator",
    "GridPoint",
    "PointResult",
    "ProcessExecutor",
    "ResultSet",
    "SWEEPABLE_FIELDS",
    "SerialExecutor",
    "point_key",
    "resolve_executor",
]
