"""Result container for design-space evaluations.

A :class:`ResultSet` holds one evaluated point per grid point, in grid
order, and answers the questions the analysis layer asks: slice the
space (:meth:`ResultSet.filter`), pull one scheme/metric series along an
axis (:meth:`ResultSet.series`), or find the Pareto-optimal points over
several metrics (:meth:`ResultSet.pareto_front`).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from ..core.comparison import SchemeComparison
from ..core.config import ExperimentConfig
from ..core.paths import normalize_path
from ..errors import ConfigurationError

__all__ = ["PointResult", "ResultSet"]


@dataclass(frozen=True)
class PointResult:
    """One evaluated design point."""

    index: int
    items: tuple[tuple[str, object], ...]
    config: ExperimentConfig
    records: tuple[dict, ...]
    comparison: SchemeComparison | None
    from_cache: bool

    @property
    def overrides(self) -> dict[str, object]:
        """This point's parameter assignment as a plain dict."""
        return dict(self.items)

    def record(self, scheme: str) -> dict:
        """The flat comparison record of one scheme at this point."""
        for record in self.records:
            if record["scheme"] == scheme:
                return record
        raise ConfigurationError(f"scheme {scheme!r} missing from design point")

    def value(self, scheme: str, metric: str) -> float:
        """One scheme metric at this point."""
        record = self.record(scheme)
        if metric not in record:
            raise ConfigurationError(f"unknown metric {metric!r}")
        return float(record[metric])


class ResultSet:
    """All evaluated points of one design space, in grid order."""

    def __init__(self, parameters: tuple[str, ...],
                 points: Sequence[PointResult]) -> None:
        self.parameters = tuple(parameters)
        self.points = list(points)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[PointResult]:
        return iter(self.points)

    @property
    def cache_hit_count(self) -> int:
        """How many of these points were served from cache."""
        return sum(1 for point in self.points if point.from_cache)

    def axis_values(self, parameter: str) -> list[object]:
        """Distinct values of one parameter, in first-appearance order."""
        parameter = self.resolve_parameter(parameter)
        seen: list[object] = []
        for point in self.points:
            value = point.overrides[parameter]
            if value not in seen:
                seen.append(value)
        return seen

    def resolve_parameter(self, parameter: str) -> str:
        """Canonical name of one of this set's parameters.

        Accepts the canonical config path and any spelling
        :func:`~repro.core.paths.normalize_path` resolves to it (e.g.
        ``"port_count"`` for a set varying ``"crossbar.port_count"``).
        """
        if parameter in self.parameters:
            return parameter
        try:
            canonical = normalize_path(parameter)
        except ConfigurationError:
            canonical = None
        if canonical is not None and canonical in self.parameters:
            return canonical
        raise ConfigurationError(
            f"unknown parameter {parameter!r}; this result set varies "
            f"{self.parameters}"
        )

    def filter(self, **fixed: object) -> "ResultSet":
        """Sub-space where every given parameter equals the given value.

        Dotted parameters are passed by unpacking:
        ``results.filter(**{"crossbar.port_count": 5})``.
        """
        resolved: dict[str, object] = {}
        for name, value in fixed.items():
            canonical = self.resolve_parameter(name)
            if canonical in resolved:
                raise ConfigurationError(
                    f"filter() got parameter {name!r} twice (as {canonical!r})"
                )
            resolved[canonical] = value
        kept = [
            point for point in self.points
            if all(point.overrides[name] == value for name, value in resolved.items())
        ]
        return ResultSet(parameters=self.parameters, points=kept)

    def series(self, scheme: str, metric: str,
               axis: str | None = None) -> list[tuple[object, float]]:
        """(axis value, metric) pairs for one scheme, in grid order.

        ``axis`` may be omitted when the result set varies a single
        parameter.  For multi-parameter sets, fix the other parameters
        with :meth:`filter` first (or accept one pair per point).
        """
        if axis is None:
            if len(self.parameters) != 1:
                raise ConfigurationError(
                    f"series() needs an explicit axis when the result set "
                    f"varies {self.parameters}"
                )
            axis = self.parameters[0]
        axis = self.resolve_parameter(axis)
        return [
            (point.overrides[axis], point.value(scheme, metric))
            for point in self.points
        ]

    def pareto_front(self, scheme: str, metrics: Sequence[str],
                     minimize: bool | Sequence[bool] = True) -> list[PointResult]:
        """Non-dominated points of one scheme over several metrics.

        ``minimize`` applies to all metrics when a single bool, or per
        metric when a sequence (``False`` means bigger is better, e.g.
        a savings percentage).
        """
        if not metrics:
            raise ConfigurationError("pareto_front needs at least one metric")
        if isinstance(minimize, bool):
            senses = [minimize] * len(metrics)
        else:
            senses = list(minimize)
            if len(senses) != len(metrics):
                raise ConfigurationError(
                    "minimize must be a bool or match the metric count"
                )
        # Normalise to minimisation by flipping maximised metrics.
        scored = [
            (point, [point.value(scheme, metric) * (1.0 if sense else -1.0)
                     for metric, sense in zip(metrics, senses)])
            for point in self.points
        ]

        def dominates(a: list[float], b: list[float]) -> bool:
            return all(x <= y for x, y in zip(a, b)) and any(
                x < y for x, y in zip(a, b)
            )

        front = [
            point for point, score in scored
            if not any(dominates(other, score)
                       for _, other in scored if other is not score)
        ]
        return front

    def to_records(self) -> list[dict]:
        """Flat rows: parameter assignment merged into each scheme record."""
        rows = []
        for point in self.points:
            for record in point.records:
                row = dict(point.overrides)
                row.update(record)
                rows.append(row)
        return rows
