"""The design-space evaluation engine.

:class:`Evaluator` ties the layers together: it expands a
:class:`~repro.engine.grid.DesignSpace` into configs, serves every point
it can from the content-addressed cache, fans the misses out through the
chosen executor, stores the fresh results, and reassembles everything —
in grid order — into a :class:`~repro.engine.resultset.ResultSet`.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.config import ExperimentConfig
from ..crossbar.factory import available_schemes
from ..errors import ConfigurationError
from .cache import CachedEntry, EvaluationCache, point_key
from .grid import DesignSpace
from .executor import WorkItem, auto_executor_name, resolve_executor
from .resultset import PointResult, ResultSet

__all__ = ["Evaluator"]


class Evaluator:
    """Evaluates design spaces with caching and pluggable execution.

    Parameters
    ----------
    base_config:
        The configuration every grid point overrides (default: the
        paper's point).
    scheme_names / baseline_name:
        Which schemes each point evaluates and which is the savings
        baseline — the same contract as
        :func:`~repro.core.comparison.compare_schemes`.
    executor:
        ``"serial"``, ``"process"``, ``"auto"``, ``"distributed"``, or
        any object with a ``run(items) -> results`` method.  String
        specs are resolved once and the instances reused across
        :meth:`evaluate` calls, so process pools and distributed worker
        fleets persist for the evaluator's lifetime; :meth:`close` (or
        using the evaluator as a context manager) shuts owned executors
        down.  Executor *objects* are borrowed, never closed.
    cache / cache_dir:
        An existing :class:`EvaluationCache` to share, or a directory
        for a new disk-backed one.  By default the evaluator keeps a
        private in-memory cache, so repeated points within and across
        :meth:`evaluate` calls on the same evaluator are free.
    """

    def __init__(self, base_config: ExperimentConfig | None = None,
                 scheme_names: Sequence[str] | None = None,
                 baseline_name: str = "SC",
                 executor: object = "serial",
                 cache: EvaluationCache | None = None,
                 cache_dir: object = None,
                 max_workers: int | None = None) -> None:
        self.base_config = base_config if base_config is not None else ExperimentConfig()
        names = list(scheme_names) if scheme_names is not None else available_schemes()
        if baseline_name not in names:
            raise ConfigurationError(
                f"baseline {baseline_name!r} must be among the evaluated schemes {names}"
            )
        self.scheme_names = tuple(names)
        self.baseline_name = baseline_name
        self.executor = executor
        self.max_workers = max_workers
        #: Executors this evaluator built from string specs, by name —
        #: reused across evaluate() calls and closed by close().
        self._owned_executors: dict[str, object] = {}
        if cache is not None and cache_dir is not None:
            raise ConfigurationError("pass either cache or cache_dir, not both")
        self.cache = cache if cache is not None else EvaluationCache(directory=cache_dir)

    def _resolve_executor(self, point_count: int):
        """The executor for one batch: borrowed objects pass through;
        string specs resolve to owned, session-persistent instances
        (``"auto"`` still picks serial vs process per batch, but reuses
        one process pool across every batch that goes parallel)."""
        spec = self.executor
        if hasattr(spec, "run"):
            return spec
        if spec == "auto":
            spec = auto_executor_name(point_count)
        if not isinstance(spec, str):
            return resolve_executor(spec)  # raises the canonical error
        owned = self._owned_executors.get(spec)
        if owned is None:
            owned = resolve_executor(spec, point_count=point_count,
                                     max_workers=self.max_workers)
            self._owned_executors[spec] = owned
        return owned

    def close(self) -> None:
        """Shut down executors this evaluator owns (process pools,
        distributed fleets); borrowed executor objects are untouched."""
        owned, self._owned_executors = self._owned_executors, {}
        for executor in owned.values():
            close = getattr(executor, "close", None)
            if callable(close):
                close()

    def __enter__(self) -> "Evaluator":
        """Context-managed use: owned executors die with the block."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close owned executors on exit."""
        self.close()

    def evaluate(self, space: DesignSpace) -> ResultSet:
        """Evaluate every point of ``space``, cheapest way possible.

        Each grid point's overrides (flat or dotted) are resolved into a
        fully nested :class:`ExperimentConfig` *before* anything is
        cached or fanned out, so work items are self-contained and the
        cache key always covers the complete nested structure.
        """
        grid_points = space.points()
        configs = [point.config(self.base_config) for point in grid_points]
        keys = [point_key(config, self.scheme_names, self.baseline_name)
                for config in configs]

        entries: list[CachedEntry | None] = [self.cache.get(key) for key in keys]
        from_cache = [entry is not None for entry in entries]

        # Deduplicate misses by key so a point repeated within one batch
        # (overlapping sweeps, duplicated grid values) is evaluated once.
        miss_indices_by_key: dict[str, list[int]] = {}
        for i, entry in enumerate(entries):
            if entry is None:
                miss_indices_by_key.setdefault(keys[i], []).append(i)
        if miss_indices_by_key:
            unique_keys = list(miss_indices_by_key)
            executor = self._resolve_executor(point_count=len(unique_keys))
            items = [WorkItem(config=configs[miss_indices_by_key[key][0]],
                              scheme_names=self.scheme_names,
                              baseline_name=self.baseline_name)
                     for key in unique_keys]
            outcomes = executor.run(items)
            for key, outcome in zip(unique_keys, outcomes):
                entry = CachedEntry(records=outcome.records,
                                    comparison=outcome.comparison)
                self.cache.put(key, entry)
                for i in miss_indices_by_key[key]:
                    entries[i] = entry

        # Index writes are batched inside put(); one flush per batch keeps
        # a cold N-point sweep O(N) in index I/O.  Flushed on the all-hit
        # path too, so LRU recency from disk hits survives the session.
        flush = getattr(self.cache, "flush_index", None)
        if flush is not None:
            flush()

        results = []
        for grid_point, config, entry, cached in zip(grid_points, configs,
                                                     entries, from_cache):
            assert entry is not None
            results.append(PointResult(
                index=grid_point.index,
                items=grid_point.items,
                config=config,
                records=tuple(entry.records),
                comparison=entry.comparison,
                from_cache=cached,
            ))
        return ResultSet(parameters=space.parameters, points=results)

    def evaluate_grid(self, axes: dict) -> ResultSet:
        """Convenience: build the Cartesian grid and evaluate it.

        Axes may be flat fields or dotted config paths::

            Evaluator().evaluate_grid({
                "crossbar.port_count": [3, 5, 8],
                "technology_node": ["65nm", "45nm"],
            })
        """
        return self.evaluate(DesignSpace.grid(axes))
