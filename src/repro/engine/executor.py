"""Executor layer: how design points are fanned out.

Four strategies share one interface:

* ``serial`` — evaluate in-process, in order.  Keeps the live
  :class:`~repro.core.comparison.SchemeComparison` objects, which the
  legacy ``sweep_parameter`` wrapper needs.
* ``process`` — fan out across cores with
  :class:`concurrent.futures.ProcessPoolExecutor`.  Work items travel as
  pickled frozen configs; results come back as the JSON-safe comparison
  records, reassembled in submission order.  The pool is *persistent*:
  it spins up on the first ``run`` and is reused by every subsequent
  one until :meth:`ProcessExecutor.close` (or the context manager)
  shuts it down — a service flushing batch after batch pays pool
  start-up once, not per flush.
* ``auto`` — ``process`` when the machine has more than one core and
  the batch is large enough to amortise pool start-up, else ``serial``.
* ``distributed`` — fan out across *hosts* through
  :class:`~repro.engine.distributed.DistributedExecutor` and its TCP
  worker fleet (``python -m repro.engine.worker``).

Work items carry fully-resolved nested configs, so they need no shared
state to evaluate.  Within each process (the calling one for ``serial``,
every pool worker for ``process``, every fleet worker for
``distributed``) scheme construction goes through the structural cache
in :mod:`repro.core.scheme_evaluator`: consecutive items that differ
only in non-structural scalars (static probability, toggle activity)
reuse the built crossbar geometry and library.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass

from ..core.comparison import SchemeComparison, compare_schemes
from ..core.config import ExperimentConfig
from ..errors import ConfigurationError

__all__ = ["WorkItem", "EvaluatedPoint", "SerialExecutor", "ProcessExecutor",
           "auto_executor_name", "resolve_executor"]

#: Below this many misses, ``auto`` stays serial: pool start-up costs more
#: than the evaluation itself.
AUTO_PROCESS_THRESHOLD = 8


@dataclass(frozen=True)
class WorkItem:
    """One evaluation to perform — fully picklable."""

    config: ExperimentConfig
    scheme_names: tuple[str, ...]
    baseline_name: str


@dataclass
class EvaluatedPoint:
    """The outcome of one work item.

    ``comparison`` is only populated by the serial executor; results
    crossing a process boundary carry records alone.
    """

    records: list[dict]
    comparison: SchemeComparison | None = None


def _evaluate_work_item(item: WorkItem) -> list[dict]:
    """Process-pool worker: evaluate one point and return its records."""
    comparison = compare_schemes(
        item.config,
        scheme_names=list(item.scheme_names),
        baseline_name=item.baseline_name,
    )
    return comparison.as_records()


class SerialExecutor:
    """Evaluate work items one after another in the calling process."""

    name = "serial"

    def run(self, items: list[WorkItem]) -> list[EvaluatedPoint]:
        """Evaluate ``items`` in order; every outcome keeps its live
        :class:`~repro.core.comparison.SchemeComparison`."""
        results = []
        for item in items:
            comparison = compare_schemes(
                item.config,
                scheme_names=list(item.scheme_names),
                baseline_name=item.baseline_name,
            )
            results.append(EvaluatedPoint(records=comparison.as_records(),
                                          comparison=comparison))
        return results


class ProcessExecutor:
    """Fan work items out across a persistent process pool, in order.

    The pool is created lazily on the first :meth:`run` and *reused* by
    every subsequent one — successive batches (an evaluator called in a
    loop, the evaluation service's flushes) amortise worker start-up
    and the per-worker structural cache across the whole session
    instead of per batch.  :meth:`close` (or using the executor as a
    context manager) shuts the pool down; a pool broken by a killed
    worker process is discarded and rebuilt once per run.

    ``mp_start_method`` picks the multiprocessing start method for the
    pool (``None`` = platform default).  Callers that invoke
    :meth:`run` from a non-main thread — the evaluation service's
    batch flushes — must use ``"spawn"``: forking a multithreaded
    process can deadlock the children on locks held at fork time.
    Changing it after the pool exists has no effect until the pool is
    closed and rebuilt.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None,
                 chunksize: int | None = None,
                 mp_start_method: str | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be at least 1")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.mp_start_method = mp_start_method
        self._pool: ProcessPoolExecutor | None = None

    def _resolved_workers(self, item_count: int) -> int:
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, min(workers, item_count))

    def _resolved_chunksize(self, item_count: int, workers: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        # ~4 chunks per worker balances scheduling overhead against skew.
        return max(1, math.ceil(item_count / (workers * 4)))

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The live pool, created on first use at full worker strength
        (idle workers are cheap; resizing per batch is not)."""
        if self._pool is None:
            context = (multiprocessing.get_context(self.mp_start_method)
                       if self.mp_start_method is not None else None)
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers or os.cpu_count() or 1,
                mp_context=context)
        return self._pool

    def run(self, items: list[WorkItem]) -> list[EvaluatedPoint]:
        """Evaluate ``items`` across the pool; results return in
        submission order, carrying records only (no live comparison)."""
        if not items:
            return []
        workers = self._resolved_workers(len(items))
        chunksize = self._resolved_chunksize(len(items), workers)
        try:
            all_records = list(self._ensure_pool().map(
                _evaluate_work_item, items, chunksize=chunksize))
        except BrokenExecutor:
            # A killed worker poisons the whole pool: rebuild it and give
            # the batch one more chance before surfacing the failure.
            self.close()
            all_records = list(self._ensure_pool().map(
                _evaluate_work_item, items, chunksize=chunksize))
        return [EvaluatedPoint(records=records) for records in all_records]

    def close(self) -> None:
        """Shut the pool down (a later :meth:`run` builds a fresh one)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        """Context-managed use: the pool dies with the ``with`` block."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the pool on exit."""
        self.close()


def auto_executor_name(point_count: int) -> str:
    """The ``"auto"`` policy in one place: ``"process"`` when the
    machine is multicore and the batch is large enough to amortise the
    pool, else ``"serial"``."""
    cores = os.cpu_count() or 1
    if cores > 1 and point_count >= AUTO_PROCESS_THRESHOLD:
        return "process"
    return "serial"


def resolve_executor(spec: object, point_count: int = 0,
                     max_workers: int | None = None):
    """Turn an executor spec into an executor instance.

    ``spec`` may be an executor object (anything with a ``run`` method)
    or one of the strings ``"serial"``, ``"process"``, ``"auto"``,
    ``"distributed"``.  The ``"distributed"`` shorthand builds a
    loopback fleet that spawns ``max_workers`` (default: the core
    count) local worker processes; multi-host topologies construct
    :class:`~repro.engine.distributed.DistributedExecutor` directly.
    """
    if hasattr(spec, "run"):
        return spec
    if spec == "serial":
        return SerialExecutor()
    if spec == "process":
        return ProcessExecutor(max_workers=max_workers)
    if spec == "distributed":
        from .distributed import DistributedExecutor

        return DistributedExecutor(
            spawn_workers=max_workers or os.cpu_count() or 1)
    if spec == "auto":
        return resolve_executor(auto_executor_name(point_count),
                                max_workers=max_workers)
    raise ConfigurationError(
        f"unknown executor {spec!r}; expected 'serial', 'process', 'auto', "
        "'distributed' or an object with a run() method"
    )
