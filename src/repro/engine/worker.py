"""Evaluation worker: one process of a distributed executor fleet.

``python -m repro.engine.worker --connect HOST:PORT`` dials a
:class:`~repro.engine.distributed.DistributedExecutor` coordinator,
registers, and then evaluates ``evaluate`` frames until told to shut
down — each frame's dotted-path overrides are rebuilt into an
:class:`~repro.core.config.ExperimentConfig`
(:func:`~repro.engine.distributed.config_from_wire`) and run through
:func:`~repro.core.comparison.compare_schemes`, exactly what the serial
executor would have done in-process.  Because the process is
persistent, the structural memoisation in
:mod:`repro.core.scheme_evaluator` warms up once and then serves every
subsequent item, the same amortisation a process-pool worker only gets
within a single batch.

``--listen [HOST:]PORT`` inverts the transport: the worker listens and
the coordinator dials out (for workers behind ingress-only firewalls).
Either way the worker speaks first — the ``register`` frame opens every
connection, whoever initiated it.

Evaluation failures are answered with structured ``error`` frames (a
model-level rejection is deterministic; the coordinator fails the run
rather than retrying it elsewhere); malformed frames and lost
coordinators end the process with a non-zero exit code so supervisors
notice.  ``--max-items N`` exits cleanly after N evaluations — rolling
restarts for long-lived fleets, and the test suite's way of simulating
worker death mid-run.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
from collections.abc import Sequence

from ..core.comparison import compare_schemes
from ..errors import DistributedError, ReproError
from .distributed import (
    PROTOCOL_VERSION,
    config_from_wire,
    parse_address,
    recv_frame,
    send_frame,
)

__all__ = ["default_worker_id", "serve_connection", "main"]


def default_worker_id() -> str:
    """``hostname-pid``: unique enough across a fleet of real hosts."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _evaluate_frame(sock: socket.socket, message: dict) -> None:
    """Answer one ``evaluate`` frame with a ``result`` or ``error``."""
    task = message.get("task")
    try:
        config = config_from_wire(message.get("overrides", {}))
        schemes = message["schemes"]
        comparison = compare_schemes(
            config,
            scheme_names=[str(name) for name in schemes],
            baseline_name=str(message["baseline"]),
        )
        send_frame(sock, {"type": "result", "task": task,
                          "records": comparison.as_records()})
    except ReproError as exc:
        send_frame(sock, {"type": "error", "task": task,
                          "error": "evaluation-failed", "message": str(exc)})
    except (KeyError, TypeError, ValueError) as exc:
        send_frame(sock, {"type": "error", "task": task,
                          "error": "malformed-item", "message": repr(exc)})


def serve_connection(sock: socket.socket, worker_id: str,
                     max_items: int | None = None) -> str:
    """Speak the worker side of one coordinator connection.

    Registers, then serves ``evaluate``/``ping`` frames until the
    coordinator says ``shutdown`` (returns ``"shutdown"``), the
    connection ends (``"disconnect"``), or ``max_items`` evaluations
    have been answered (``"exhausted"``).  Raises
    :class:`~repro.errors.DistributedError` when registration is
    rejected.
    """
    from .. import __version__

    send_frame(sock, {
        "type": "register",
        "protocol": PROTOCOL_VERSION,
        "worker": worker_id,
        "model_version": __version__,
        "pid": os.getpid(),
    })
    answer = recv_frame(sock)
    if answer is None or answer["type"] != "registered":
        reason = answer.get("reason") if answer else "connection closed"
        raise DistributedError(f"registration rejected: {reason}")
    served = 0
    while True:
        message = recv_frame(sock)
        if message is None:
            return "disconnect"
        mtype = message["type"]
        if mtype == "ping":
            send_frame(sock, {"type": "pong"})
        elif mtype == "shutdown":
            return "shutdown"
        elif mtype == "evaluate":
            _evaluate_frame(sock, message)
            served += 1
            if max_items is not None and served >= max_items:
                return "exhausted"
        # Unknown frame types are ignored (forward compatibility).


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.worker",
        description="Evaluate design points for a distributed executor "
                    "coordinator over TCP.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--connect", metavar="HOST:PORT",
                      help="dial a listening coordinator")
    mode.add_argument("--listen", metavar="[HOST:]PORT",
                      help="listen and let the coordinator dial in")
    parser.add_argument("--worker-id", default=None,
                        help="fleet-visible name (default: hostname-pid)")
    parser.add_argument("--max-items", type=int, default=None,
                        help="exit cleanly after this many evaluations "
                             "(rolling restarts; death injection in tests)")
    parser.add_argument("--connect-attempts", type=int, default=20,
                        help="initial-connection retries before giving up")
    parser.add_argument("--retry-interval", type=float, default=0.25,
                        help="seconds between connection retries")
    return parser


def _run_connect(args: argparse.Namespace, worker_id: str) -> int:
    host, port = parse_address(args.connect)
    sock = None
    for attempt in range(max(1, args.connect_attempts)):
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            break
        except OSError:
            if attempt + 1 >= max(1, args.connect_attempts):
                print(f"worker: cannot reach coordinator at {host}:{port}",
                      file=sys.stderr)
                return 1
            time.sleep(args.retry_interval)
    assert sock is not None
    sock.settimeout(None)
    try:
        outcome = serve_connection(sock, worker_id, max_items=args.max_items)
    except DistributedError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    finally:
        sock.close()
    return 0 if outcome in ("shutdown", "exhausted", "disconnect") else 1


def _run_listen(args: argparse.Namespace, worker_id: str) -> int:
    host, port = parse_address(args.listen, default_port=0)
    if args.listen.isdigit():
        host, port = "127.0.0.1", int(args.listen)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(1)
    bound = listener.getsockname()
    print(f"worker {worker_id} listening on {bound[0]}:{bound[1]}", flush=True)
    try:
        while True:
            sock, _peer = listener.accept()
            sock.settimeout(None)
            try:
                outcome = serve_connection(sock, worker_id,
                                           max_items=args.max_items)
            except DistributedError as exc:
                print(f"worker: {exc}", file=sys.stderr)
                return 2
            finally:
                sock.close()
            if outcome in ("shutdown", "exhausted"):
                return 0
            # disconnect: a coordinator went away; await the next one.
    finally:
        listener.close()


def main(argv: Sequence[str] | None = None) -> int:
    """Run one worker until its coordinator shuts it down."""
    args = _build_parser().parse_args(argv)
    if args.max_items is not None and args.max_items < 1:
        print("worker: --max-items must be at least 1", file=sys.stderr)
        return 2
    worker_id = args.worker_id or default_worker_id()
    try:
        if args.connect:
            return _run_connect(args, worker_id)
        return _run_listen(args, worker_id)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
