"""Content-addressed cache for design-point evaluations.

Every evaluation is keyed by a canonical hash of the full
:class:`~repro.core.config.ExperimentConfig`, the evaluated scheme set,
the baseline, and the model version — so two points that happen to
coincide (overlapping sweeps, benchmark re-runs, a grid revisited with a
wider axis) are evaluated once.  The cache is in-memory by default and
optionally persists the JSON-safe comparison records to a directory,
one file per key, so a later process pays nothing for points it has
already seen.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..core.comparison import SchemeComparison
from ..core.config import ExperimentConfig

__all__ = ["CACHE_SCHEMA_VERSION", "point_key", "CacheStats", "CachedEntry",
           "EvaluationCache"]

#: Bump when the cached record layout changes; invalidates old disk entries.
CACHE_SCHEMA_VERSION = 1


def point_key(config: ExperimentConfig, scheme_names: Sequence[str],
              baseline_name: str = "SC") -> str:
    """Canonical content hash of one evaluation point.

    The key covers everything the result depends on: the experiment
    configuration (including the nested crossbar sizing), the scheme
    list *in order* (record order follows it), the baseline, the model
    version and the cache schema version.
    """
    from .. import __version__

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "model_version": __version__,
        "config": dataclasses.asdict(config),
        "schemes": list(scheme_names),
        "baseline": baseline_name,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class CachedEntry:
    """One cached evaluation: JSON-safe records plus, when the point was
    evaluated in this process, the live comparison object."""

    records: list[dict]
    comparison: SchemeComparison | None = None


@dataclass
class EvaluationCache:
    """In-memory, optionally disk-backed store of evaluated points."""

    directory: Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.directory is not None:
            self.directory = Path(self.directory)
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, CachedEntry] = {}

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def get(self, key: str) -> CachedEntry | None:
        """Look up one key; counts a hit or a miss."""
        entry = self._memory.get(key)
        if entry is not None:
            self.stats.hits += 1
            return entry
        if self.directory is not None:
            path = self._disk_path(key)
            if path.is_file():
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                    records = payload["records"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    records = None  # corrupt entry: treat as a miss
                if isinstance(records, list):
                    entry = CachedEntry(records=records)
                    self._memory[key] = entry
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    return entry
        self.stats.misses += 1
        return None

    def put(self, key: str, entry: CachedEntry) -> None:
        """Store one evaluated point (records go to disk when enabled)."""
        self._memory[key] = entry
        self.stats.puts += 1
        if self.directory is not None:
            path = self._disk_path(key)
            payload = {
                "schema": CACHE_SCHEMA_VERSION,
                "key": key,
                "records": entry.records,
            }
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries, if any, survive)."""
        self._memory.clear()
