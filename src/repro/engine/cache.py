"""Content-addressed cache for design-point evaluations.

Every evaluation is keyed by a canonical hash of the full
:class:`~repro.core.config.ExperimentConfig` (including the nested
crossbar and optional noc sub-configs), the evaluated scheme set, the
baseline, and the model version — so two points that happen to coincide
(overlapping sweeps, benchmark re-runs, a grid revisited with a wider
axis) are evaluated once.  The cache is in-memory by default and
optionally persists the JSON-safe comparison records to a directory.

Disk layout
-----------
Entries are sharded into 256 two-hex-char prefix directories
(``<dir>/ab/<key>.json``) so million-point spaces never degrade on a
single directory scan, with an ``index.json`` recording every entry's
location, size and last-use sequence number.  Keys that are not
filesystem-safe content hashes (anything beyond lowercase hex — in
particular keys containing path separators) are stored under the SHA-256
of the key instead of the key itself, so a hostile or merely unusual key
can never escape the cache directory.  The flat one-file-per-key layout
written by earlier versions is migrated into the shards on first open.

When ``max_disk_entries`` and/or ``max_disk_bytes`` is set, an LRU
eviction pass runs after each write: the entry-count bound caps how many
entries the shards hold, and the byte budget caps their total payload
size using the per-entry sizes the index records.
:meth:`EvaluationCache.compact` re-scans the shards, drops corrupt or
orphaned files, rebuilds the index and enforces both bounds in one
sweep.  ``python -m repro.engine.cache stats|compact DIR`` (with
``--max-entries`` / ``--max-bytes`` on ``compact``) exposes all of it to
the shell for long-lived shared caches (see :func:`main`).

Multi-writer journaling
-----------------------
``index.json`` is rewritten whole, so two processes writing the same
directory (two services on a network mount, a coordinator next to an
offline sweep) would race last-writer-wins on each other's bookkeeping.
A cache opened with a ``writer_id`` therefore never rewrites
``index.json``: it *appends* its puts and evictions, one JSON record
per line, to its own ``index.<writer_id>.journal``.  Readers merge
``index.json`` plus every journal at open, so each writer's entries are
visible everywhere without any write contention; a line truncated by a
crash mid-append is simply skipped (the entry itself is still found by
the canonical shard probe and re-adopted).  :meth:`EvaluationCache.compact`
folds the journals back into a rebuilt ``index.json`` and deletes them —
run it periodically (or via the CLI) when writers are quiescent.  LRU
recency across writers is approximate: per-writer sequence numbers only
order entries within one journal, which can skew *which* entry a
bounded cache evicts first, never correctness.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..core.comparison import SchemeComparison
from ..core.config import ExperimentConfig
from ..errors import ConfigurationError

__all__ = ["CACHE_SCHEMA_VERSION", "config_payload", "point_key", "CacheStats",
           "CachedEntry", "EvaluationCache", "main"]

#: Bump when the cached record layout changes; invalidates old disk entries.
CACHE_SCHEMA_VERSION = 1

#: Name of the shard index file inside a cache directory.
INDEX_FILENAME = "index.json"

#: ``put`` rewrites the index at most once per this many entries; call
#: :meth:`EvaluationCache.flush_index` at batch boundaries for the rest.
INDEX_WRITE_INTERVAL = 64

#: Journal files of all writers sharing one directory.
JOURNAL_GLOB = "index.*.journal"

#: Writer ids become journal file names; keep them filesystem-safe.
_WRITER_ID = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.-]{0,63}")

#: Keys matching this are content hashes, safe to use as file names and
#: sharded by their own first two characters.
_HEX_KEY = re.compile(r"[0-9a-f]{8,128}")

#: Fields added to the config tree after PR 1, with the default values
#: under which they are omitted from the canonical key payload.  This
#: keeps keys (and therefore existing disk caches) byte-identical for
#: every point that does not use the new structure.
_ROOT_EXTENSION_DEFAULTS: dict[str, object] = {"noc": None}
_CROSSBAR_EXTENSION_DEFAULTS: dict[str, object] = {"input_buffer_depth": 4}


def config_payload(config: ExperimentConfig) -> dict:
    """JSON-safe nested dict of ``config`` for canonical hashing.

    Post-PR-1 extension fields are omitted while they hold their
    defaults, so flat-only points keep the keys they have always had.
    """
    payload = dataclasses.asdict(config)
    for name, default in _ROOT_EXTENSION_DEFAULTS.items():
        if payload.get(name) == default:
            payload.pop(name, None)
    crossbar = payload.get("crossbar")
    if isinstance(crossbar, dict):
        for name, default in _CROSSBAR_EXTENSION_DEFAULTS.items():
            if crossbar.get(name) == default:
                crossbar.pop(name, None)
    return payload


def point_key(config: ExperimentConfig, scheme_names: Sequence[str],
              baseline_name: str = "SC") -> str:
    """Canonical content hash of one evaluation point.

    The key covers everything the result depends on: the experiment
    configuration (including the nested crossbar sizing and, when set,
    the noc branch), the scheme list *in order* (record order follows
    it), the baseline, the model version and the cache schema version.
    """
    from .. import __version__

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "model_version": __version__,
        "config": config_payload(config),
        "schemes": list(scheme_names),
        "baseline": baseline_name,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    puts: int = 0
    evictions: int = 0
    memory_evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups observed (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class CachedEntry:
    """One cached evaluation: JSON-safe records plus, when the point was
    evaluated in this process, the live comparison object."""

    records: list[dict]
    comparison: SchemeComparison | None = None


def _shard_and_name(key: str) -> tuple[str, str]:
    """(shard directory, file stem) for one key.

    Content-hash keys shard by their own two-hex-char prefix; any other
    key — too short, mixed case, or containing path separators — is
    replaced by its SHA-256, which both sanitises the file name and
    gives it a uniform shard.
    """
    if _HEX_KEY.fullmatch(key):
        return key[:2], key
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
    return digest[:2], digest


#: File stems that are safe to look up in the legacy flat layout.
_LEGACY_SAFE = re.compile(r"[A-Za-z0-9_-]{1,200}")


@dataclass
class EvaluationCache:
    """In-memory, optionally disk-backed store of evaluated points.

    ``max_disk_entries`` bounds the sharded store by entry count and
    ``max_disk_bytes`` by total payload bytes (per-entry sizes from the
    index); ``None`` means unbounded, and both may be set together.
    The bounds are enforced LRU-wise, after each write, over the
    entries the index knows about: files left by a session that
    crashed before flushing its index batch are adopted when a lookup
    touches them, and :meth:`compact` reconciles everything on disk.

    ``max_memory_entries`` likewise bounds the in-memory layer LRU-wise
    (``None`` = unbounded) — long-lived holders such as the evaluation
    service should set it so a scan over millions of distinct points
    cannot exhaust RAM; evicted entries remain served from disk when a
    directory is configured.

    ``writer_id`` switches index persistence to per-writer journaling
    (see the module docstring): this writer appends to
    ``index.<writer_id>.journal`` instead of rewriting the shared
    ``index.json``, making concurrent writers on one directory safe.
    Every open still *merges* all journals it finds, writer id or not.
    """

    directory: Path | None = None
    max_disk_entries: int | None = None
    max_disk_bytes: int | None = None
    max_memory_entries: int | None = None
    writer_id: str | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_disk_entries is not None and self.max_disk_entries < 1:
            raise ConfigurationError("max_disk_entries must be at least 1")
        if self.max_disk_bytes is not None and self.max_disk_bytes < 1:
            raise ConfigurationError("max_disk_bytes must be at least 1")
        if self.max_memory_entries is not None and self.max_memory_entries < 1:
            raise ConfigurationError("max_memory_entries must be at least 1")
        if self.writer_id is not None:
            if self.directory is None:
                raise ConfigurationError("writer_id requires a cache directory")
            if not _WRITER_ID.fullmatch(self.writer_id):
                raise ConfigurationError(
                    f"writer_id {self.writer_id!r} must be 1-64 characters of "
                    "[A-Za-z0-9_.-] and start alphanumeric"
                )
        self._memory: dict[str, CachedEntry] = {}
        self._index: dict[str, dict] = {}
        self._index_bytes = 0
        self._sequence = 0
        self._index_dirty = False
        self._puts_since_index_write = 0
        self._journal_pending: list[dict] = []
        self._legacy_possible = False
        if self.directory is not None:
            self.directory = Path(self.directory)
            self.directory.mkdir(parents=True, exist_ok=True)
            self._load_index()
            self._migrate_flat_layout()

    def __len__(self) -> int:
        """Number of entries in the in-memory layer."""
        return len(self._memory)

    # -- disk layout -------------------------------------------------------------
    @property
    def _index_path(self) -> Path:
        assert self.directory is not None
        return self.directory / INDEX_FILENAME

    def _disk_path(self, key: str) -> Path:
        """Sharded, sanitised location of one key's entry file."""
        assert self.directory is not None
        shard, name = _shard_and_name(key)
        return self.directory / shard / f"{name}.json"

    def _legacy_path(self, key: str) -> Path | None:
        """Pre-shard flat location, only for keys that cannot traverse."""
        assert self.directory is not None
        if not _LEGACY_SAFE.fullmatch(key):
            return None
        return self.directory / f"{key}.json"

    @staticmethod
    def _sane_index_file(name: str) -> bool:
        """True when an on-disk index 'file' value stays inside the cache
        directory: relative, no parent traversal, no absolute override
        (``dir / "/abs"`` discards ``dir`` entirely)."""
        path = Path(name)
        return not path.is_absolute() and ".." not in path.parts

    @property
    def _journal_path(self) -> Path:
        assert self.directory is not None and self.writer_id is not None
        return self.directory / f"index.{self.writer_id}.journal"

    @staticmethod
    def _sanitised_meta(meta: object) -> dict | None:
        """A clean ``{file, size, seq}`` dict, or ``None`` for garbage."""
        if not (isinstance(meta, dict) and isinstance(meta.get("file"), str)):
            return None
        if not EvaluationCache._sane_index_file(meta["file"]):
            return None
        seq = meta.get("seq", 0)
        size = meta.get("size", 0)
        return {
            "file": meta["file"],
            "size": size if isinstance(size, int) else 0,
            "seq": seq if isinstance(seq, int) else 0,
        }

    def _merge_journals(self, loaded: dict[str, dict]) -> None:
        """Apply every writer's journal to ``loaded``, in journal-name
        order then line order.  Journals are as untrusted as the index:
        malformed lines — including the half-written line a crash
        mid-append leaves behind — are skipped."""
        assert self.directory is not None
        for journal in sorted(self.directory.glob(JOURNAL_GLOB)):
            try:
                text = journal.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                key = record.get("key")
                if not isinstance(key, str):
                    continue
                op = record.get("op", "put")
                if op == "del":
                    loaded.pop(key, None)
                    continue
                if op != "put":
                    continue
                meta = self._sanitised_meta(record)
                if meta is not None:
                    loaded[key] = meta

    def _load_index(self) -> None:
        """Best-effort load of ``index.json`` plus every writer journal:
        the index is untrusted — malformed entries are dropped and a
        corrupt file is simply ignored (``get`` probes the canonical
        shard path anyway, and :meth:`compact` rebuilds)."""
        loaded: dict[str, dict] = {}
        try:
            payload = json.loads(self._index_path.read_text(encoding="utf-8"))
            entries = payload["entries"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            entries = {}
        if isinstance(entries, dict):
            for key, meta in entries.items():
                meta = self._sanitised_meta(meta)
                if meta is not None:
                    loaded[key] = meta
        self._merge_journals(loaded)
        if not loaded:
            return
        # The in-memory index is kept in recency order (oldest first) so
        # eviction is O(1); restore that invariant from the stored seqs.
        # Across writers the per-journal seqs interleave arbitrarily —
        # recency is approximate, which only biases LRU choice.
        self._index = dict(sorted(loaded.items(), key=lambda kv: kv[1]["seq"]))
        self._index_bytes = sum(meta["size"] for meta in self._index.values())
        self._sequence = max(
            (meta["seq"] for meta in self._index.values()), default=0
        )

    def _write_index(self) -> None:
        assert self.directory is not None
        payload = {"schema": CACHE_SCHEMA_VERSION, "entries": self._index}
        tmp = self._index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self._index_path)
        self._index_dirty = False
        self._puts_since_index_write = 0

    def _append_journal(self) -> None:
        """Flush buffered put/del records to this writer's journal.

        Append-only and line-framed: concurrent writers each own their
        file, and a reader that races an append at worst skips the
        still-partial last line."""
        if not self._journal_pending:
            return
        lines = "".join(json.dumps(record, sort_keys=True) + "\n"
                        for record in self._journal_pending)
        with open(self._journal_path, "a", encoding="utf-8") as handle:
            handle.write(lines)
        self._journal_pending.clear()
        self._puts_since_index_write = 0

    def _persist_index(self) -> None:
        """Write index state the way this cache's mode persists it:
        journal appends for journaled writers, an ``index.json`` rewrite
        otherwise."""
        if self.writer_id is not None:
            self._append_journal()
            self._index_dirty = False
        else:
            self._write_index()

    def flush_index(self) -> None:
        """Persist the index if it has unwritten changes.

        ``put`` batches index writes (every ``INDEX_WRITE_INTERVAL``
        entries) so a cold N-point sweep stays O(N) in index I/O; batch
        owners — the evaluator, or anything driving many puts — call
        this once at the end.  A stale index is never a correctness
        problem (``get`` probes the canonical shard path regardless), it
        only costs the probe.  Journaled writers append their buffered
        records instead of rewriting the shared ``index.json``."""
        if self.directory is not None and self._index_dirty:
            self._persist_index()

    def _migrate_flat_layout(self) -> None:
        """Move flat ``<key>.json`` files written by the PR-1 layout into
        their shard directories, indexing them as they go."""
        assert self.directory is not None
        moved = False
        for flat in self.directory.glob("*.json"):
            if flat.name == INDEX_FILENAME or not flat.is_file():
                continue
            key = flat.stem
            target = self._disk_path(key)
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(flat, target)
            except OSError:
                # Couldn't move it: lookups must keep probing flat paths.
                self._legacy_possible = True
                continue
            self._remember_entry(key, target)
            moved = True
        if moved:
            self._index_dirty = True
            self._persist_index()

    def _remember_entry(self, key: str, path: Path) -> None:
        assert self.directory is not None
        self._sequence += 1
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        # Pop-then-insert keeps the index dict in recency order.
        replaced = self._index.pop(key, None)
        if replaced is not None:
            self._index_bytes -= replaced.get("size", 0)
        meta = {
            "file": path.relative_to(self.directory).as_posix(),
            "size": size,
            "seq": self._sequence,
        }
        self._index[key] = meta
        self._index_bytes += size
        if self.writer_id is not None:
            self._journal_pending.append({"op": "put", "key": key, **meta})

    # -- lookups -----------------------------------------------------------------
    def _read_records(self, path: Path, key: str) -> list[dict] | None:
        """Records stored at ``path``, or ``None`` when the file is
        corrupt or holds a *different* key — a misdirected (or hostile)
        index entry must never alias one design point to another."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            records = payload["records"]
            stored_key = payload["key"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            return None
        if stored_key != key or not isinstance(records, list):
            return None
        return records

    def _remember_memory(self, key: str, entry: CachedEntry) -> None:
        """Insert at the recent end of the memory layer; enforce the bound.

        The memory dict is kept in recency order (oldest first), so the
        LRU eviction is O(1) per dropped entry."""
        self._memory.pop(key, None)
        self._memory[key] = entry
        if self.max_memory_entries is not None:
            while len(self._memory) > self.max_memory_entries:
                self._memory.pop(next(iter(self._memory)))
                self.stats.memory_evictions += 1

    def get(self, key: str) -> CachedEntry | None:
        """Look up one key; counts a hit or a miss."""
        entry = self._memory.get(key)
        if entry is not None:
            if self.max_memory_entries is not None:
                # Keep recency accurate for the bounded memory layer.
                self._memory.pop(key)
                self._memory[key] = entry
            self.stats.hits += 1
            return entry
        if self.directory is not None:
            for path in self._candidate_paths(key):
                if path is None or not path.is_file():
                    continue
                records = self._read_records(path, key)
                if records is None:
                    continue  # corrupt or mismatched entry: treat as a miss
                entry = CachedEntry(records=records)
                self._remember_memory(key, entry)
                meta = self._index.pop(key, None)
                if meta is not None:  # move to the recent end of the index
                    self._sequence += 1
                    meta["seq"] = self._sequence
                    self._index[key] = meta
                    self._index_dirty = True  # persist recency at next flush
                elif path == self._disk_path(key):
                    # Found via the canonical shard probe but unknown to
                    # the index (written by a crashed/unflushed session):
                    # adopt it so the size bound can see and evict it.
                    self._remember_entry(key, path)
                    self._index_dirty = True
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return entry
        self.stats.misses += 1
        return None

    def _candidate_paths(self, key: str):
        """Where a key's entry may live, most authoritative first."""
        assert self.directory is not None
        meta = self._index.get(key)
        if meta is not None and self._sane_index_file(meta["file"]):
            yield self.directory / meta["file"]
        yield self._disk_path(key)
        if self._legacy_possible:
            # Only when migration left flat files behind — otherwise this
            # would be a wasted stat() on every miss of a big sweep.
            yield self._legacy_path(key)

    def put(self, key: str, entry: CachedEntry) -> None:
        """Store one evaluated point (records go to disk when enabled)."""
        self._remember_memory(key, entry)
        self.stats.puts += 1
        if self.directory is not None:
            path = self._disk_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "schema": CACHE_SCHEMA_VERSION,
                "key": key,
                "records": entry.records,
            }
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
            self._remember_entry(key, path)
            self._evict_to_bound()
            self._index_dirty = True
            self._puts_since_index_write += 1
            if self._puts_since_index_write >= INDEX_WRITE_INTERVAL:
                self._persist_index()

    # -- maintenance -------------------------------------------------------------
    def _over_bounds(self) -> bool:
        """True while the index exceeds the entry-count or byte budget."""
        if not self._index:
            return False
        if self.max_disk_entries is not None and len(self._index) > self.max_disk_entries:
            return True
        return (self.max_disk_bytes is not None
                and self._index_bytes > self.max_disk_bytes)

    def _evict_to_bound(self) -> None:
        """Drop least-recently-used disk entries beyond the configured
        bounds (``max_disk_entries`` entries and/or ``max_disk_bytes``
        total payload bytes, using the per-entry sizes the index records).

        The index dict is maintained in recency order (oldest first), so
        each eviction is O(1) — a bounded million-point sweep never pays
        a per-put scan."""
        if (self.max_disk_entries is None and self.max_disk_bytes is None) \
                or self.directory is None:
            return
        while self._over_bounds():
            victim = next(iter(self._index))
            self._index_bytes -= self._index.pop(victim).get("size", 0)
            self.stats.evictions += 1
            if self.writer_id is not None:
                self._journal_pending.append({"op": "del", "key": victim})
            # Unlink the victim's *canonical* location, never the index's
            # stored path: a corrupt/hostile index entry could otherwise
            # aim eviction at index.json or another key's valid file.
            try:
                self._disk_path(victim).unlink(missing_ok=True)
            except OSError:
                pass

    def compact(self) -> int:
        """Re-scan the shards: drop corrupt entries and stray temp files,
        rebuild the index from what is actually on disk (preserving known
        recency), enforce the size bound, fold every writer's journal back
        into the rebuilt ``index.json`` (the journals are then deleted),
        and return the entry count.

        Run it when writers are quiescent: a writer appending while its
        journal is folded away loses only recency bookkeeping — its entry
        files are still on disk and are re-adopted by the next lookup or
        compact."""
        if self.directory is None:
            return 0
        old_seq = {key: meta.get("seq", 0) for key, meta in self._index.items()}
        rebuilt: dict[str, dict] = {}
        for shard in sorted(self.directory.iterdir()):
            if not shard.is_dir():
                continue
            for entry_file in sorted(shard.glob("*")):
                if not entry_file.is_file():
                    continue  # leave unexpected subdirectories alone
                if entry_file.suffix != ".json":  # includes stray *.json.tmp
                    entry_file.unlink(missing_ok=True)
                    continue
                try:
                    payload = json.loads(entry_file.read_text(encoding="utf-8"))
                    key = payload["key"]
                    records = payload["records"]
                except (OSError, json.JSONDecodeError, KeyError, TypeError):
                    entry_file.unlink(missing_ok=True)
                    continue
                if not isinstance(key, str) or not isinstance(records, list):
                    entry_file.unlink(missing_ok=True)
                    continue
                rebuilt[key] = {
                    "file": entry_file.relative_to(self.directory).as_posix(),
                    "size": entry_file.stat().st_size,
                    "seq": old_seq.get(key, 0),
                }
        # Restore the recency-order invariant (oldest first) for O(1) eviction.
        self._index = dict(sorted(rebuilt.items(), key=lambda kv: kv[1]["seq"]))
        self._index_bytes = sum(meta["size"] for meta in self._index.values())
        self._sequence = max(
            (meta["seq"] for meta in self._index.values()), default=self._sequence
        )
        self._evict_to_bound()
        # The fold: the rebuilt index.json now carries every journaled
        # entry, so the journals themselves are spent.
        self._journal_pending.clear()
        self._write_index()
        for journal in self.directory.glob(JOURNAL_GLOB):
            try:
                journal.unlink()
            except OSError:
                pass
        return len(self._index)

    def disk_stats(self) -> dict:
        """Summary of the on-disk store, from the loaded index.

        Returns a JSON-safe dict with the cache ``directory``, indexed
        ``entries``, their total ``bytes``, the configured
        ``max_disk_entries`` bound (``None`` = unbounded), this writer's
        ``writer_id`` (``None`` when not journaling) and the number of
        ``journals`` currently on disk.  Counts what the index knows
        about; run :meth:`compact` first for an exact on-disk
        reconciliation.
        """
        journals = 0
        if self.directory is not None:
            journals = sum(1 for _ in self.directory.glob(JOURNAL_GLOB))
        return {
            "directory": str(self.directory) if self.directory is not None else None,
            "entries": len(self._index),
            "bytes": self._index_bytes,
            "max_disk_entries": self.max_disk_entries,
            "max_disk_bytes": self.max_disk_bytes,
            "writer_id": self.writer_id,
            "journals": journals,
        }

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries, if any, survive)."""
        self._memory.clear()


# ---------------------------------------------------------------------------
# maintenance CLI: python -m repro.engine.cache
# ---------------------------------------------------------------------------

def main(argv: Sequence[str] | None = None) -> int:
    """Maintain a long-lived shared cache directory from the shell.

    ``stats DIR`` prints the indexed entry count and byte total;
    ``compact DIR`` re-scans the shards, drops corrupt/orphaned files
    and rebuilds the index, optionally applying the LRU bounds with
    ``--max-entries N`` (entry count) and/or ``--max-bytes N`` (total
    payload bytes).  Both print a JSON report to stdout.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.cache",
        description="Inspect and maintain an on-disk evaluation cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_stats = sub.add_parser(
        "stats", help="print entry count, byte total and eviction bound")
    p_stats.add_argument("directory", help="cache directory")
    p_compact = sub.add_parser(
        "compact", help="re-scan shards, rebuild the index, enforce bounds")
    p_compact.add_argument("directory", help="cache directory")
    p_compact.add_argument("--max-entries", type=int, default=None,
                           help="evict least-recently-used entries beyond "
                                "this count during the compact")
    p_compact.add_argument("--max-bytes", type=int, default=None,
                           help="evict least-recently-used entries until the "
                                "indexed payload total fits this byte budget")
    args = parser.parse_args(argv)

    if not Path(args.directory).is_dir():
        print(json.dumps({"error": "no-such-directory",
                          "directory": args.directory}))
        return 2
    cache = EvaluationCache(
        directory=args.directory,
        max_disk_entries=getattr(args, "max_entries", None),
        max_disk_bytes=getattr(args, "max_bytes", None),
    )
    report: dict[str, object] = {"command": args.command}
    if args.command == "compact":
        report["entries_after_compact"] = cache.compact()
        report["evictions"] = cache.stats.evictions
    report.update(cache.disk_stats())
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    raise SystemExit(main())
