"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch a single base class.
The sub-classes partition errors by subsystem so test suites and callers
can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TechnologyError(ReproError):
    """Raised for invalid or inconsistent technology parameters.

    Examples: a negative wire width, an unknown technology node, a
    threshold voltage larger than the supply voltage.
    """


class CircuitError(ReproError):
    """Raised for malformed circuits or netlists.

    Examples: connecting a device to a node that does not exist, asking
    for the Elmore delay of a node that is not part of the RC tree,
    evaluating leakage with an incomplete node-state assignment.
    """


class TimingError(ReproError):
    """Raised for invalid timing analyses.

    Examples: requesting a path between unconnected pins, negative
    required times, a slack query for a path that was never analysed.
    """


class CrossbarError(ReproError):
    """Raised for invalid crossbar configurations.

    Examples: a port count below two, a flit width of zero, granting two
    inputs to the same output simultaneously, an unknown scheme name.
    """


class PowerError(ReproError):
    """Raised for invalid power analyses.

    Examples: a static probability outside ``[0, 1]``, a non-positive
    clock frequency, a break-even analysis on a scheme with no standby
    mode.
    """


class NocError(ReproError):
    """Raised for invalid network-on-chip configurations or simulations.

    Examples: a mesh with zero rows, injecting a packet to a node outside
    the topology, reading statistics before a simulation has run.
    """


class ConfigurationError(ReproError):
    """Raised when an experiment configuration is internally inconsistent."""


class DistributedError(ReproError):
    """Raised for distributed-execution failures.

    Examples: a malformed or oversized wire frame, a worker registration
    that never arrives, an item re-dispatched more times than allowed,
    every worker lost while items are still outstanding.
    """
