"""Structural device instances.

The electrical behaviour of a transistor lives in
:class:`repro.technology.transistor.Mosfet`; this module wraps it with
the *structural* information a netlist needs: an instance name, the nets
its terminals connect to, and a functional role tag.  Role tags are what
the figure-reproduction benchmarks aggregate over ("how many pass
transistors, keepers, sleep devices, driver devices does each scheme
instantiate, and which of them are high-Vt?").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import CircuitError
from ..technology.transistor import Mosfet, Polarity, VtFlavor

__all__ = ["DeviceRole", "DeviceInstance"]


class DeviceRole(enum.Enum):
    """Functional role of a device inside a crossbar output path."""

    PASS_TRANSISTOR = "pass_transistor"
    SLEEP = "sleep"
    PRECHARGE = "precharge"
    KEEPER = "keeper"
    DRIVER = "driver"
    INPUT_DRIVER = "input_driver"
    SEGMENT_SWITCH = "segment_switch"
    CONTROL = "control"
    OTHER = "other"


@dataclass(frozen=True)
class DeviceInstance:
    """One transistor instance in a netlist.

    Attributes
    ----------
    name:
        Unique instance name within its netlist (e.g. ``"out_PE.bit0.N1"``).
    mosfet:
        The sized electrical model.
    gate, drain, source:
        Net names the terminals connect to.  The body terminal is tied to
        the appropriate rail implicitly.
    role:
        Functional role tag used for reporting.
    """

    name: str
    mosfet: Mosfet
    gate: str
    drain: str
    source: str
    role: DeviceRole = DeviceRole.OTHER

    def __post_init__(self) -> None:
        if not self.name:
            raise CircuitError("device instance name cannot be empty")
        for terminal in (self.gate, self.drain, self.source):
            if not terminal:
                raise CircuitError(f"device {self.name!r} has an empty terminal net name")

    @property
    def polarity(self) -> Polarity:
        """Channel polarity of the device."""
        return self.mosfet.polarity

    @property
    def vt_flavor(self) -> VtFlavor:
        """Threshold-voltage flavor of the device."""
        return self.mosfet.vt_flavor

    @property
    def width(self) -> float:
        """Drawn width in metres."""
        return self.mosfet.width

    def terminals(self) -> tuple[str, str, str]:
        """The (gate, drain, source) net names."""
        return (self.gate, self.drain, self.source)
