"""Linear RC transient solver (modified nodal analysis).

The Elmore delay used throughout the library is a first-moment
approximation.  To keep the approximation honest, this module solves the
actual linear RC network response to a step input and extracts the 50 %
crossing time.  The test suite cross-checks Elmore against the transient
solver on representative crossbar-like topologies; the benchmark suite
uses Elmore (it is orders of magnitude faster).

The network is the same grounded-capacitance RC tree used elsewhere, but
the solver works on arbitrary connected RC graphs: nodes with
capacitance to ground, resistive branches between nodes, one node driven
by an ideal step source through a driver resistance.

The system is ``C dv/dt = -G v + b(t)``; with a step source it is solved
with the exponential of the state matrix on a fixed time grid (the
matrices are small — tens of nodes — so dense linear algebra is fine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import expm

from ..errors import CircuitError
from .rc_network import RCTree

__all__ = ["RCTransientSolver", "TransientResult"]


@dataclass
class TransientResult:
    """Sampled node voltage waveform from a transient run."""

    times: np.ndarray
    voltages: np.ndarray
    node_names: list[str] = field(default_factory=list)

    def voltage_of(self, node: str) -> np.ndarray:
        """Waveform of one node."""
        try:
            index = self.node_names.index(node)
        except ValueError as exc:
            raise CircuitError(f"node {node!r} was not part of the transient run") from exc
        return self.voltages[:, index]

    def crossing_time(self, node: str, threshold: float) -> float:
        """First time the node crosses ``threshold`` volts (linear interpolation).

        Raises if the waveform never crosses, which usually means the
        simulation window was too short.
        """
        waveform = self.voltage_of(node)
        rising = waveform[-1] >= waveform[0]
        for index in range(1, len(waveform)):
            previous, current = waveform[index - 1], waveform[index]
            crossed = (previous < threshold <= current) if rising else (previous > threshold >= current)
            if crossed:
                if current == previous:
                    return float(self.times[index])
                fraction = (threshold - previous) / (current - previous)
                return float(self.times[index - 1] + fraction * (self.times[index] - self.times[index - 1]))
        raise CircuitError(
            f"node {node!r} never crossed {threshold} V within the simulated window"
        )


class RCTransientSolver:
    """Step-response solver for an :class:`~repro.circuit.rc_network.RCTree`."""

    def __init__(self, tree: RCTree, driver_resistance: float, supply_voltage: float,
                 minimum_capacitance: float = 1e-18) -> None:
        if driver_resistance <= 0:
            raise CircuitError("the transient solver needs a positive driver resistance")
        if supply_voltage <= 0:
            raise CircuitError("supply voltage must be positive")
        self.tree = tree
        self.driver_resistance = driver_resistance
        self.supply_voltage = supply_voltage
        #: Nodes with zero capacitance get a tiny floor so the state matrix stays invertible.
        self.minimum_capacitance = minimum_capacitance

    def _build_matrices(self) -> tuple[np.ndarray, np.ndarray, list[str]]:
        names = self.tree.nodes()
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        conductance = np.zeros((n, n))
        capacitance = np.zeros(n)
        for name in names:
            capacitance[index[name]] = max(self.tree.node_capacitance(name), self.minimum_capacitance)
        # Resistive branches: each non-root node connects to its parent.
        for name in names:
            path = self.tree.path_to_root(name)
            if len(path) < 2:
                continue
            parent = path[1]
            # Re-derive the branch resistance from the Elmore bookkeeping:
            # delay difference between node and parent over downstream cap.
            downstream = self.tree.downstream_capacitance(name)
            resistance = (self.tree.elmore_delay(name) - self.tree.elmore_delay(parent)) / downstream
            if resistance <= 0:
                resistance = 1e-3  # ideal connections get a milliohm placeholder
            g = 1.0 / resistance
            i, j = index[name], index[parent]
            conductance[i, i] += g
            conductance[j, j] += g
            conductance[i, j] -= g
            conductance[j, i] -= g
        # Driver: root connects to the source through the driver resistance.
        g_drv = 1.0 / self.driver_resistance
        conductance[index[self.tree.root], index[self.tree.root]] += g_drv
        return conductance, capacitance, names

    def rising_step(self, duration: float, samples: int = 400) -> TransientResult:
        """Drive the root from 0 to Vdd at t = 0 and sample all node voltages."""
        return self._step(duration, samples, rising=True)

    def falling_step(self, duration: float, samples: int = 400) -> TransientResult:
        """Drive the root from Vdd to 0 at t = 0 and sample all node voltages."""
        return self._step(duration, samples, rising=False)

    def _step(self, duration: float, samples: int, rising: bool) -> TransientResult:
        if duration <= 0:
            raise CircuitError("simulation duration must be positive")
        if samples < 2:
            raise CircuitError("need at least two samples")
        conductance, capacitance, names = self._build_matrices()
        n = len(names)
        c_inv = np.diag(1.0 / capacitance)
        a = -c_inv @ conductance
        source_vector = np.zeros(n)
        source_vector[names.index(self.tree.root)] = (
            (self.supply_voltage if rising else 0.0) / self.driver_resistance
        )
        b = c_inv @ source_vector
        initial = np.full(n, 0.0 if rising else self.supply_voltage)
        # Steady state: A v_ss + b = 0.
        v_ss = np.linalg.solve(-a, b)
        times = np.linspace(0.0, duration, samples)
        dt = times[1] - times[0]
        propagator = expm(a * dt)
        voltages = np.empty((samples, n))
        state = initial - v_ss
        for k in range(samples):
            voltages[k] = state + v_ss
            state = propagator @ state
        return TransientResult(times=times, voltages=voltages, node_names=names)

    def fifty_percent_delay(self, sink: str, rising: bool = True, duration: float | None = None) -> float:
        """50 % crossing time of ``sink`` for a step at t = 0 (seconds)."""
        if duration is None:
            # Ten Elmore time constants comfortably cover the settling.
            duration = 10.0 * max(
                self.tree.elmore_delay_from_driver(sink, self.driver_resistance), 1e-15
            )
        result = self.rising_step(duration) if rising else self.falling_step(duration)
        return result.crossing_time(sink, 0.5 * self.supply_voltage)
