"""Gate-level building blocks used by the crossbar generators.

Each class combines the small number of transistors making up one
circuit idiom from the paper's Figures 1-3 — CMOS inverters/buffers for
the wire drivers (I1, I2), NMOS pass transistors for the crossbar switch
points (N1-N4), the shared sleep transistor (N5), the pre-charge PMOS
(P1 in Fig. 2), and the feedback keeper (P1 in Fig. 1) — and exposes the
three things the analysis layers need from it:

* **Electrical figures** for delay: input capacitance, output (diffusion)
  capacitance, pull-up / pull-down effective resistance.
* **Leakage** as a function of the logic state of its terminals, via
  the library's memoised :class:`~repro.circuit.biasing.LeakageKernel`
  (same numbers as :func:`repro.circuit.biasing.leakage_from_node_voltages`,
  each unique bias point evaluated once).
* **Structure**: a list of :class:`~repro.circuit.devices.DeviceInstance`
  suitable for insertion into a :class:`~repro.circuit.netlist.Netlist`.

Widths are always explicit constructor arguments; the schemes own the
sizing decisions.
"""

from __future__ import annotations

from ..errors import CircuitError
from ..technology.library import TechnologyLibrary
from ..technology.transistor import Mosfet, Polarity, VtFlavor
from .biasing import kernel_for
from .devices import DeviceInstance, DeviceRole
from .leakage import LeakageBreakdown
from .netlist import GROUND_NET, SUPPLY_NET

__all__ = [
    "Inverter",
    "Buffer",
    "PassTransistorSwitch",
    "TransmissionGate",
    "SleepTransistor",
    "PrechargeTransistor",
    "Keeper",
    "Nand2",
    "Nor2",
]


def _level(value: bool, vdd: float) -> float:
    """Logic value to rail voltage."""
    return vdd if value else 0.0


class Inverter:
    """A static CMOS inverter with independently chosen Vt per device.

    The asymmetric-Vt driver inverters of the DPC/SDPC schemes are
    expressed by passing different flavors for the NMOS and PMOS.
    """

    def __init__(
        self,
        library: TechnologyLibrary,
        nmos_width: float,
        pmos_width: float,
        nmos_flavor: VtFlavor = VtFlavor.NOMINAL,
        pmos_flavor: VtFlavor = VtFlavor.NOMINAL,
        name: str = "inv",
    ) -> None:
        self.library = library
        self._kernel = kernel_for(library)
        self.name = name
        self.nmos: Mosfet = library.make_transistor(Polarity.NMOS, nmos_flavor, nmos_width)
        self.pmos: Mosfet = library.make_transistor(Polarity.PMOS, pmos_flavor, pmos_width)

    # -- electrical ------------------------------------------------------------
    def input_capacitance(self) -> float:
        """Capacitance presented to whatever drives this inverter (farads)."""
        return self.nmos.gate_capacitance() + self.pmos.gate_capacitance()

    def output_capacitance(self) -> float:
        """Self-loading diffusion capacitance on the output (farads)."""
        return self.nmos.diffusion_capacitance() + self.pmos.diffusion_capacitance()

    def pull_down_resistance(self) -> float:
        """Effective resistance when the output falls (ohms)."""
        return self.nmos.effective_resistance()

    def pull_up_resistance(self) -> float:
        """Effective resistance when the output rises (ohms)."""
        return self.pmos.effective_resistance()

    # -- leakage -----------------------------------------------------------------
    def leakage(self, input_is_high: bool) -> LeakageBreakdown:
        """Leakage with the input parked at a rail."""
        vdd = self.library.supply_voltage
        vin = _level(input_is_high, vdd)
        vout = _level(not input_is_high, vdd)
        nmos = self._kernel.evaluate(self.nmos, vin, vout, 0.0)
        pmos = self._kernel.evaluate(self.pmos, vin, vout, vdd)
        return nmos + pmos

    def average_leakage(self, probability_input_high: float = 0.5) -> LeakageBreakdown:
        """State-probability-weighted leakage."""
        if not 0.0 <= probability_input_high <= 1.0:
            raise CircuitError("probability must be in [0, 1]")
        high = self.leakage(True).scaled(probability_input_high)
        low = self.leakage(False).scaled(1.0 - probability_input_high)
        return high + low

    # -- structure ------------------------------------------------------------------
    def devices(self, input_net: str, output_net: str, prefix: str,
                role: DeviceRole = DeviceRole.DRIVER) -> list[DeviceInstance]:
        """Structural device instances for a netlist."""
        return [
            DeviceInstance(f"{prefix}.{self.name}.mp", self.pmos, input_net, output_net, SUPPLY_NET, role),
            DeviceInstance(f"{prefix}.{self.name}.mn", self.nmos, input_net, output_net, GROUND_NET, role),
        ]

    def transistors(self) -> dict[str, Mosfet]:
        """Named transistors (for tests and reports)."""
        return {"nmos": self.nmos, "pmos": self.pmos}


class Buffer:
    """Two cascaded inverters: the paper's I1-I2 output driver."""

    def __init__(self, first: Inverter, second: Inverter, name: str = "buf") -> None:
        self.first = first
        self.second = second
        self.name = name

    def input_capacitance(self) -> float:
        """Capacitance presented at the buffer input (farads)."""
        return self.first.input_capacitance()

    def intermediate_capacitance(self) -> float:
        """Capacitance on the internal node between the two inverters."""
        return self.first.output_capacitance() + self.second.input_capacitance()

    def output_capacitance(self) -> float:
        """Diffusion capacitance on the buffer output."""
        return self.second.output_capacitance()

    def leakage(self, input_is_high: bool) -> LeakageBreakdown:
        """Leakage with the input parked at a rail (internal node follows)."""
        return self.first.leakage(input_is_high) + self.second.leakage(not input_is_high)

    def average_leakage(self, probability_input_high: float = 0.5) -> LeakageBreakdown:
        """State-probability-weighted leakage."""
        high = self.leakage(True).scaled(probability_input_high)
        low = self.leakage(False).scaled(1.0 - probability_input_high)
        return high + low

    def devices(self, input_net: str, output_net: str, prefix: str,
                role: DeviceRole = DeviceRole.DRIVER) -> list[DeviceInstance]:
        """Structural devices; the internal net is ``<prefix>.<name>.mid``."""
        internal = f"{prefix}.{self.name}.mid"
        return self.first.devices(input_net, internal, f"{prefix}.{self.name}.i1", role) + \
            self.second.devices(internal, output_net, f"{prefix}.{self.name}.i2", role)


class PassTransistorSwitch:
    """An NMOS pass transistor: one crosspoint of the matrix crossbar.

    The gate is driven by the arbiter's grant signal; drain and source
    connect the input wire to the shared output (merge) node.
    """

    def __init__(self, library: TechnologyLibrary, width: float,
                 flavor: VtFlavor = VtFlavor.NOMINAL, name: str = "pass") -> None:
        self.library = library
        self._kernel = kernel_for(library)
        self.name = name
        self.nmos: Mosfet = library.make_transistor(Polarity.NMOS, flavor, width)

    def on_resistance(self) -> float:
        """Channel resistance when granted (ohms), with pass-gate degradation."""
        return self.nmos.pass_resistance()

    def grant_capacitance(self) -> float:
        """Capacitance presented to the grant (gate) line."""
        return self.nmos.gate_capacitance()

    def terminal_capacitance(self) -> float:
        """Diffusion capacitance added to each of the two connected nets."""
        return self.nmos.diffusion_capacitance()

    def leakage(self, granted: bool, input_voltage: float, output_voltage: float) -> LeakageBreakdown:
        """Leakage for the given grant state and terminal voltages."""
        vdd = self.library.supply_voltage
        gate = _level(granted, vdd)
        return self._kernel.evaluate(self.nmos, gate, input_voltage, output_voltage)

    def devices(self, grant_net: str, input_net: str, output_net: str, prefix: str,
                role: DeviceRole = DeviceRole.PASS_TRANSISTOR) -> list[DeviceInstance]:
        """Structural device instance (``role`` distinguishes crosspoints from segment switches)."""
        return [
            DeviceInstance(
                f"{prefix}.{self.name}", self.nmos, grant_net, output_net, input_net, role,
            )
        ]


class TransmissionGate:
    """Complementary NMOS + PMOS pass structure (full-swing crosspoint).

    Not used by the paper's schemes (they use single NMOS devices plus a
    keeper or pre-charge), but provided so the design-space exploration
    can quantify what the paper gave up by not paying for the PMOS.
    """

    def __init__(self, library: TechnologyLibrary, nmos_width: float, pmos_width: float,
                 flavor: VtFlavor = VtFlavor.NOMINAL, name: str = "tgate") -> None:
        self.library = library
        self._kernel = kernel_for(library)
        self.name = name
        self.nmos = library.make_transistor(Polarity.NMOS, flavor, nmos_width)
        self.pmos = library.make_transistor(Polarity.PMOS, flavor, pmos_width)

    def on_resistance(self) -> float:
        """Parallel channel resistance when enabled (ohms)."""
        rn = self.nmos.effective_resistance()
        rp = self.pmos.effective_resistance()
        return rn * rp / (rn + rp)

    def grant_capacitance(self) -> float:
        """Total gate capacitance across both control inputs."""
        return self.nmos.gate_capacitance() + self.pmos.gate_capacitance()

    def terminal_capacitance(self) -> float:
        """Diffusion capacitance added to each connected net."""
        return self.nmos.diffusion_capacitance() + self.pmos.diffusion_capacitance()

    def leakage(self, granted: bool, input_voltage: float, output_voltage: float) -> LeakageBreakdown:
        """Leakage for the given enable state and terminal voltages."""
        vdd = self.library.supply_voltage
        n_gate = _level(granted, vdd)
        p_gate = _level(not granted, vdd)
        nmos = self._kernel.evaluate(self.nmos, n_gate, input_voltage, output_voltage)
        pmos = self._kernel.evaluate(self.pmos, p_gate, input_voltage, output_voltage)
        return nmos + pmos

    def devices(self, grant_net: str, grant_bar_net: str, input_net: str, output_net: str,
                prefix: str) -> list[DeviceInstance]:
        """Structural device instances."""
        return [
            DeviceInstance(f"{prefix}.{self.name}.mn", self.nmos, grant_net, output_net, input_net,
                           DeviceRole.PASS_TRANSISTOR),
            DeviceInstance(f"{prefix}.{self.name}.mp", self.pmos, grant_bar_net, output_net, input_net,
                           DeviceRole.PASS_TRANSISTOR),
        ]


class SleepTransistor:
    """The N5 device of Figures 1-3: an NMOS that forces the merge node to GND.

    When the router has been idle long enough, ``sleep`` is raised and
    the merge node (node A) is pulled to ground, collapsing the voltage
    across the pass-transistor gate oxides and parking the driver in a
    known state.
    """

    def __init__(self, library: TechnologyLibrary, width: float,
                 flavor: VtFlavor = VtFlavor.HIGH, name: str = "sleep") -> None:
        self.library = library
        self._kernel = kernel_for(library)
        self.name = name
        self.nmos: Mosfet = library.make_transistor(Polarity.NMOS, flavor, width)

    def on_resistance(self) -> float:
        """Resistance with which the merge node is pulled down in standby."""
        return self.nmos.effective_resistance()

    def control_capacitance(self) -> float:
        """Capacitance the sleep-control driver must switch."""
        return self.nmos.gate_capacitance()

    def node_capacitance(self) -> float:
        """Diffusion capacitance it adds to the merge node."""
        return self.nmos.diffusion_capacitance()

    def leakage(self, sleeping: bool, node_voltage: float) -> LeakageBreakdown:
        """Leakage of the sleep device itself."""
        vdd = self.library.supply_voltage
        gate = _level(sleeping, vdd)
        return self._kernel.evaluate(self.nmos, gate, node_voltage, 0.0)

    def devices(self, sleep_net: str, node_net: str, prefix: str) -> list[DeviceInstance]:
        """Structural device instance."""
        return [
            DeviceInstance(f"{prefix}.{self.name}", self.nmos, sleep_net, node_net, GROUND_NET,
                           DeviceRole.SLEEP)
        ]


class PrechargeTransistor:
    """The clocked PMOS (P1 of Fig. 2) that pre-charges the merge node to Vdd.

    Active-low control: the device conducts while ``pre`` is low (the
    negative clock phase).  When the arbiter has no requests, or in sleep
    mode, ``pre`` is held high to stop the pre-charge activity.
    """

    def __init__(self, library: TechnologyLibrary, width: float,
                 flavor: VtFlavor = VtFlavor.HIGH, name: str = "precharge") -> None:
        self.library = library
        self._kernel = kernel_for(library)
        self.name = name
        self.pmos: Mosfet = library.make_transistor(Polarity.PMOS, flavor, width)

    def on_resistance(self) -> float:
        """Resistance through which the node is pre-charged."""
        return self.pmos.effective_resistance()

    def control_capacitance(self) -> float:
        """Clock load added by the pre-charge gate."""
        return self.pmos.gate_capacitance()

    def node_capacitance(self) -> float:
        """Diffusion capacitance it adds to the pre-charged node."""
        return self.pmos.diffusion_capacitance()

    def leakage(self, precharging: bool, node_voltage: float) -> LeakageBreakdown:
        """Leakage of the pre-charge device for the given phase and node value."""
        vdd = self.library.supply_voltage
        gate = _level(not precharging, vdd)  # active-low control
        return self._kernel.evaluate(self.pmos, gate, node_voltage, vdd)

    def devices(self, precharge_net: str, node_net: str, prefix: str) -> list[DeviceInstance]:
        """Structural device instance."""
        return [
            DeviceInstance(f"{prefix}.{self.name}", self.pmos, precharge_net, node_net, SUPPLY_NET,
                           DeviceRole.PRECHARGE)
        ]


class Keeper:
    """The feedback level-restoring PMOS (P1 of Fig. 1).

    Its gate is driven by the first driver inverter's output, so it turns
    on whenever the merge node is high, restoring the ``Vdd - Vt`` level
    the NMOS pass transistor leaves behind.  The cost is contention: any
    high-to-low transition of the merge node must overpower it, burning
    crowbar current and slowing the edge.  Making the keeper high-Vt (the
    DFC/SDFC choice) weakens it, reducing both penalties at the price of
    a slower level restore.
    """

    def __init__(self, library: TechnologyLibrary, width: float,
                 flavor: VtFlavor = VtFlavor.NOMINAL, name: str = "keeper") -> None:
        self.library = library
        self._kernel = kernel_for(library)
        self.name = name
        self.pmos: Mosfet = library.make_transistor(Polarity.PMOS, flavor, width)

    def opposing_current(self) -> float:
        """Current (amperes) the keeper sources against a falling merge node."""
        return self.pmos.saturation_current()

    def restore_resistance(self) -> float:
        """Resistance with which the keeper completes a rising merge node."""
        return self.pmos.effective_resistance()

    def node_capacitance(self) -> float:
        """Diffusion capacitance added to the merge node."""
        return self.pmos.diffusion_capacitance()

    def feedback_capacitance(self) -> float:
        """Gate capacitance added to the feedback (driver-internal) node."""
        return self.pmos.gate_capacitance()

    def leakage(self, node_is_high: bool) -> LeakageBreakdown:
        """Leakage of the keeper for the given merge-node value.

        When the node is high the keeper is on (gate low) — it gate-leaks
        but cannot sub-threshold leak.  When the node is low the keeper
        is off with the full supply across it.
        """
        vdd = self.library.supply_voltage
        node = _level(node_is_high, vdd)
        gate = _level(not node_is_high, vdd)  # feedback inverts the node
        return self._kernel.evaluate(self.pmos, gate, node, vdd)

    def devices(self, feedback_net: str, node_net: str, prefix: str) -> list[DeviceInstance]:
        """Structural device instance."""
        return [
            DeviceInstance(f"{prefix}.{self.name}", self.pmos, feedback_net, node_net, SUPPLY_NET,
                           DeviceRole.KEEPER)
        ]


class _TwoInputGate:
    """Shared machinery for NAND2/NOR2 control gates."""

    def __init__(self, library: TechnologyLibrary, nmos_width: float, pmos_width: float,
                 flavor: VtFlavor, name: str) -> None:
        self.library = library
        self._kernel = kernel_for(library)
        self.name = name
        self.nmos_a = library.make_transistor(Polarity.NMOS, flavor, nmos_width)
        self.nmos_b = library.make_transistor(Polarity.NMOS, flavor, nmos_width)
        self.pmos_a = library.make_transistor(Polarity.PMOS, flavor, pmos_width)
        self.pmos_b = library.make_transistor(Polarity.PMOS, flavor, pmos_width)

    def input_capacitance(self) -> float:
        """Capacitance per input pin."""
        return self.nmos_a.gate_capacitance() + self.pmos_a.gate_capacitance()

    def output_capacitance(self) -> float:
        """Diffusion capacitance on the output node."""
        return (
            self.nmos_a.diffusion_capacitance()
            + self.pmos_a.diffusion_capacitance()
            + self.pmos_b.diffusion_capacitance()
        )


class Nand2(_TwoInputGate):
    """Two-input NAND used in the sleep/pre-charge control logic."""

    def __init__(self, library: TechnologyLibrary, nmos_width: float, pmos_width: float,
                 flavor: VtFlavor = VtFlavor.NOMINAL, name: str = "nand2") -> None:
        super().__init__(library, nmos_width, pmos_width, flavor, name)

    def pull_down_resistance(self) -> float:
        """Worst-case (series stack) pull-down resistance."""
        return self.nmos_a.effective_resistance() + self.nmos_b.effective_resistance()

    def pull_up_resistance(self) -> float:
        """Worst-case (single device) pull-up resistance."""
        return self.pmos_a.effective_resistance()

    def leakage(self, a_high: bool, b_high: bool) -> LeakageBreakdown:
        """Leakage for a specific input combination."""
        vdd = self.library.supply_voltage
        va, vb = _level(a_high, vdd), _level(b_high, vdd)
        out_low = a_high and b_high
        vout = _level(not out_low, vdd)
        # Series NMOS stack: internal node sits near ground unless both are off.
        stack_depth = 2 if (not a_high and not b_high) else 1
        internal = 0.0
        result = self._kernel.evaluate(self.nmos_a, va, internal, 0.0, stack_depth)
        result = result + self._kernel.evaluate(self.nmos_b, vb, vout, internal, stack_depth)
        result = result + self._kernel.evaluate(self.pmos_a, va, vout, vdd)
        result = result + self._kernel.evaluate(self.pmos_b, vb, vout, vdd)
        return result

    def average_leakage(self) -> LeakageBreakdown:
        """Leakage averaged over the four equiprobable input states."""
        total = LeakageBreakdown.zero()
        for a_high in (False, True):
            for b_high in (False, True):
                total = total + self.leakage(a_high, b_high).scaled(0.25)
        return total


class Nor2(_TwoInputGate):
    """Two-input NOR used in the request-detection logic of the DPC scheme."""

    def __init__(self, library: TechnologyLibrary, nmos_width: float, pmos_width: float,
                 flavor: VtFlavor = VtFlavor.NOMINAL, name: str = "nor2") -> None:
        super().__init__(library, nmos_width, pmos_width, flavor, name)

    def pull_down_resistance(self) -> float:
        """Worst-case (single device) pull-down resistance."""
        return self.nmos_a.effective_resistance()

    def pull_up_resistance(self) -> float:
        """Worst-case (series stack) pull-up resistance."""
        return self.pmos_a.effective_resistance() + self.pmos_b.effective_resistance()

    def leakage(self, a_high: bool, b_high: bool) -> LeakageBreakdown:
        """Leakage for a specific input combination."""
        vdd = self.library.supply_voltage
        va, vb = _level(a_high, vdd), _level(b_high, vdd)
        out_high = not (a_high or b_high)
        vout = _level(out_high, vdd)
        stack_depth = 2 if (a_high and b_high) else 1
        internal = vdd
        result = self._kernel.evaluate(self.pmos_a, va, internal, vdd, stack_depth)
        result = result + self._kernel.evaluate(self.pmos_b, vb, vout, internal, stack_depth)
        result = result + self._kernel.evaluate(self.nmos_a, va, vout, 0.0)
        result = result + self._kernel.evaluate(self.nmos_b, vb, vout, 0.0)
        return result

    def average_leakage(self) -> LeakageBreakdown:
        """Leakage averaged over the four equiprobable input states."""
        total = LeakageBreakdown.zero()
        for a_high in (False, True):
            for b_high in (False, True):
                total = total + self.leakage(a_high, b_high).scaled(0.25)
        return total
