"""Map node voltages to device leakage.

The crossbar schemes know the logic value parked on every net in a given
circuit state (active with data 1, active with data 0, standby, ...).
This module turns a device plus its three terminal voltages into a
:class:`~repro.circuit.leakage.LeakageBreakdown`, handling the NMOS/PMOS
sign conventions and the difference between an inverted-channel (on)
device — which gate-leaks through the whole channel but does not
sub-threshold leak — and an off device, which sub-threshold leaks across
its channel and gate-leaks only through the gate-drain overlap region.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from ..errors import CircuitError
from ..technology.leakage_model import stack_factor
from ..technology.library import TechnologyLibrary
from ..technology.transistor import Mosfet, Polarity
from .leakage import LeakageBreakdown

__all__ = ["leakage_from_node_voltages", "OFF_OVERLAP_GATE_FRACTION",
           "LeakageKernel", "KernelStats", "kernel_for",
           "kernel_totals", "reset_kernel_totals"]

#: Fraction of the full-channel gate tunnelling current that flows through
#: the gate-drain overlap of an *off* device whose drain sits a full supply
#: away from its gate (edge direct tunnelling).  Representative value for
#: 45 nm-class oxides.
OFF_OVERLAP_GATE_FRACTION = 0.3


def leakage_from_node_voltages(
    device: Mosfet,
    gate_voltage: float,
    drain_voltage: float,
    source_voltage: float,
    series_off_devices: int = 1,
) -> LeakageBreakdown:
    """Leakage of ``device`` given the voltages on its three terminals.

    Parameters
    ----------
    device:
        The sized transistor.
    gate_voltage, drain_voltage, source_voltage:
        Absolute node voltages in volts (0 .. Vdd).
    series_off_devices:
        Stack depth for the sub-threshold component (see
        :func:`repro.technology.leakage_model.stack_factor`).
    """
    vdd = device.supply_voltage
    for name, value in (
        ("gate", gate_voltage),
        ("drain", drain_voltage),
        ("source", source_voltage),
    ):
        if value < -1e-9 or value > vdd + 1e-9:
            raise CircuitError(f"{name} voltage {value} V outside the rail range [0, {vdd}] V")
    if series_off_devices < 1:
        raise CircuitError("series_off_devices must be >= 1")

    if device.polarity is Polarity.NMOS:
        low_terminal = min(drain_voltage, source_voltage)
        high_terminal = max(drain_voltage, source_voltage)
        vgs = gate_voltage - low_terminal
        vds = high_terminal - low_terminal
        channel_reference = low_terminal
    else:
        # For PMOS work with magnitudes referenced to the highest terminal.
        high_terminal = max(drain_voltage, source_voltage)
        low_terminal = min(drain_voltage, source_voltage)
        vgs = high_terminal - gate_voltage
        vds = high_terminal - low_terminal
        channel_reference = high_terminal

    threshold = device.parameters.threshold_voltage
    device_is_on = vgs >= threshold

    subthreshold = 0.0
    if not device_is_on and vds > 0:
        subthreshold = device.subthreshold_current(vgs=vgs, vds=vds)
        if series_off_devices > 1:
            subthreshold *= stack_factor(series_off_devices)

    if device_is_on:
        # Inverted channel: the full gate area tunnels across |Vg - Vchannel|.
        oxide_voltage = abs(gate_voltage - channel_reference)
        gate = device.gate_leakage(gate_voltage=oxide_voltage)
    else:
        # Off device: only the gate-drain overlap tunnels.
        if device.polarity is Polarity.NMOS:
            overlap_voltage = abs(gate_voltage - high_terminal)
        else:
            overlap_voltage = abs(gate_voltage - low_terminal)
        gate = OFF_OVERLAP_GATE_FRACTION * device.gate_leakage(gate_voltage=overlap_voltage)

    junction = device.junction_leakage(vds=vds) if vds > 0 else 0.0
    return LeakageBreakdown(subthreshold=subthreshold, gate=gate, junction=junction)


# ---------------------------------------------------------------------------
# memoised bias-point evaluation: the leakage kernel fast path
# ---------------------------------------------------------------------------

@dataclass
class KernelStats:
    """Hit/miss accounting for leakage-kernel memoisation."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total bias-point evaluations requested."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_payload(self) -> dict:
        """JSON-safe counters (for ``GET /stats`` and the benches)."""
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": self.hit_rate}


#: Process-wide aggregate over every kernel instance, so the structural
#: cache stats API and ``GET /stats`` can report kernel effectiveness
#: without chasing per-library objects (which the structural cache may
#: have evicted).
_TOTALS = KernelStats()

#: Every live kernel, weakly held, so a reset can zero per-kernel stats
#: in lockstep with the aggregate — a kernel's counters are always a
#: *share* of the totals, even across resets.
_LIVE_KERNELS: "weakref.WeakSet[LeakageKernel]" = weakref.WeakSet()


def kernel_totals() -> KernelStats:
    """Aggregate hit/miss counters across every :class:`LeakageKernel`.

    Returns the live counter object — snapshot the ints before timing a
    region if you need a before/after delta.
    """
    return _TOTALS


def reset_kernel_totals() -> None:
    """Zero the process-wide kernel counters (mainly for tests/benches).

    Also zeroes the per-kernel counters of every live kernel, so each
    kernel's stats remain a share of the aggregate after the reset.
    """
    _TOTALS.hits = 0
    _TOTALS.misses = 0
    for kernel in _LIVE_KERNELS:
        kernel.stats.hits = 0
        kernel.stats.misses = 0


class LeakageKernel:
    """Memoised :func:`leakage_from_node_voltages` for one technology library.

    The schemes only ever bias a device at a handful of rail and
    intermediate node voltages, while a single design-point evaluation
    asks for those same few bias points thousands of times — so each
    unique ``(device, vg, vd, vs, series_off_devices)`` operating point
    is evaluated once (full rail validation included) and every repeat
    is a dict lookup returning the same immutable breakdown.

    Keys hold the :class:`~repro.technology.transistor.Mosfet` *object*
    (identity-hashed), which both pins the device alive — an ``id()``
    key could alias a recycled address — and scopes the memo to devices
    that are genuinely shared, as the structurally-cached gates and
    schemes share theirs.  The memo is bounded: schemes bias shared
    devices at rail voltages, so a healthy kernel holds a few dozen
    entries per scheme; overflowing ``max_entries`` (a sweep churning
    libraries or voltages) clears the memo rather than growing without
    bound — correctness never depends on retention.

    Not an ``functools.lru_cache``: the kernel is owned per library (via
    :func:`kernel_for`), so dropping the library drops its memo, and the
    hit/miss counters feed the structural-cache stats API.
    """

    __slots__ = ("max_entries", "stats", "_memo", "__weakref__")

    def __init__(self, max_entries: int = 8192) -> None:
        if max_entries < 1:
            raise CircuitError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.stats = KernelStats()
        self._memo: dict[tuple, LeakageBreakdown] = {}
        _LIVE_KERNELS.add(self)

    def __len__(self) -> int:
        """Number of memoised bias points."""
        return len(self._memo)

    def evaluate(
        self,
        device: Mosfet,
        gate_voltage: float,
        drain_voltage: float,
        source_voltage: float,
        series_off_devices: int = 1,
    ) -> LeakageBreakdown:
        """Leakage of ``device`` at the given bias, memoised.

        Same contract (and same validation errors, raised on first
        sight of a bias point) as :func:`leakage_from_node_voltages`.
        """
        key = (device, gate_voltage, drain_voltage, source_voltage,
               series_off_devices)
        memo = self._memo
        cached = memo.get(key)
        if cached is not None:
            self.stats.hits += 1
            _TOTALS.hits += 1
            return cached
        result = leakage_from_node_voltages(
            device, gate_voltage, drain_voltage, source_voltage,
            series_off_devices,
        )
        self.stats.misses += 1
        _TOTALS.misses += 1
        if len(memo) >= self.max_entries:
            memo.clear()
        memo[key] = result
        return result

    def clear(self) -> None:
        """Drop every memoised bias point (counters are kept)."""
        self._memo.clear()


def kernel_for(library: TechnologyLibrary) -> LeakageKernel:
    """The leakage kernel owned by ``library``, created on first use.

    One kernel per library keeps the memo coherent by construction:
    devices from different libraries differ by identity, and dropping a
    library (structural-cache eviction) drops its kernel with it.
    """
    kernel = library.leakage_kernel
    if kernel is None:
        kernel = LeakageKernel()
        library.leakage_kernel = kernel
    return kernel
