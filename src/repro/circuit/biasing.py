"""Map node voltages to device leakage.

The crossbar schemes know the logic value parked on every net in a given
circuit state (active with data 1, active with data 0, standby, ...).
This module turns a device plus its three terminal voltages into a
:class:`~repro.circuit.leakage.LeakageBreakdown`, handling the NMOS/PMOS
sign conventions and the difference between an inverted-channel (on)
device — which gate-leaks through the whole channel but does not
sub-threshold leak — and an off device, which sub-threshold leaks across
its channel and gate-leaks only through the gate-drain overlap region.
"""

from __future__ import annotations

from ..errors import CircuitError
from ..technology.transistor import Mosfet, Polarity
from .leakage import LeakageBreakdown

__all__ = ["leakage_from_node_voltages", "OFF_OVERLAP_GATE_FRACTION"]

#: Fraction of the full-channel gate tunnelling current that flows through
#: the gate-drain overlap of an *off* device whose drain sits a full supply
#: away from its gate (edge direct tunnelling).  Representative value for
#: 45 nm-class oxides.
OFF_OVERLAP_GATE_FRACTION = 0.3


def leakage_from_node_voltages(
    device: Mosfet,
    gate_voltage: float,
    drain_voltage: float,
    source_voltage: float,
    series_off_devices: int = 1,
) -> LeakageBreakdown:
    """Leakage of ``device`` given the voltages on its three terminals.

    Parameters
    ----------
    device:
        The sized transistor.
    gate_voltage, drain_voltage, source_voltage:
        Absolute node voltages in volts (0 .. Vdd).
    series_off_devices:
        Stack depth for the sub-threshold component (see
        :func:`repro.technology.leakage_model.stack_factor`).
    """
    from ..technology.leakage_model import stack_factor

    vdd = device.supply_voltage
    for name, value in (
        ("gate", gate_voltage),
        ("drain", drain_voltage),
        ("source", source_voltage),
    ):
        if value < -1e-9 or value > vdd + 1e-9:
            raise CircuitError(f"{name} voltage {value} V outside the rail range [0, {vdd}] V")
    if series_off_devices < 1:
        raise CircuitError("series_off_devices must be >= 1")

    if device.polarity is Polarity.NMOS:
        low_terminal = min(drain_voltage, source_voltage)
        high_terminal = max(drain_voltage, source_voltage)
        vgs = gate_voltage - low_terminal
        vds = high_terminal - low_terminal
        channel_reference = low_terminal
    else:
        # For PMOS work with magnitudes referenced to the highest terminal.
        high_terminal = max(drain_voltage, source_voltage)
        low_terminal = min(drain_voltage, source_voltage)
        vgs = high_terminal - gate_voltage
        vds = high_terminal - low_terminal
        channel_reference = high_terminal

    threshold = device.parameters.threshold_voltage
    device_is_on = vgs >= threshold

    subthreshold = 0.0
    if not device_is_on and vds > 0:
        subthreshold = device.subthreshold_current(vgs=vgs, vds=vds)
        if series_off_devices > 1:
            subthreshold *= stack_factor(series_off_devices)

    if device_is_on:
        # Inverted channel: the full gate area tunnels across |Vg - Vchannel|.
        oxide_voltage = abs(gate_voltage - channel_reference)
        gate = device.gate_leakage(gate_voltage=oxide_voltage)
    else:
        # Off device: only the gate-drain overlap tunnels.
        if device.polarity is Polarity.NMOS:
            overlap_voltage = abs(gate_voltage - high_terminal)
        else:
            overlap_voltage = abs(gate_voltage - low_terminal)
        gate = OFF_OVERLAP_GATE_FRACTION * device.gate_leakage(gate_voltage=overlap_voltage)

    junction = device.junction_leakage(vds=vds) if vds > 0 else 0.0
    return LeakageBreakdown(subthreshold=subthreshold, gate=gate, junction=junction)
