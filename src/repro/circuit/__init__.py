"""Circuit substrate: netlists, gates, RC delay and state-dependent leakage.

See ``DESIGN.md`` S2.  This layer replaces the paper's SPICE decks with
analytical models of the same circuits.
"""

from .biasing import (
    OFF_OVERLAP_GATE_FRACTION,
    KernelStats,
    LeakageKernel,
    kernel_for,
    kernel_totals,
    leakage_from_node_voltages,
    reset_kernel_totals,
)
from .devices import DeviceInstance, DeviceRole
from .dynamic import (
    contention_energy,
    dynamic_power,
    precharge_energy_per_cycle,
    switching_energy,
)
from .gates import (
    Buffer,
    Inverter,
    Keeper,
    Nand2,
    Nor2,
    PassTransistorSwitch,
    PrechargeTransistor,
    SleepTransistor,
    TransmissionGate,
)
from .leakage import (
    BiasState,
    LeakageAccumulator,
    LeakageBreakdown,
    StateLeakage,
    device_leakage,
)
from .netlist import GROUND_NET, SUPPLY_NET, Netlist, NetlistStatistics
from .rc_network import LN2, RCTree, lumped_stage_delay
from .transient import RCTransientSolver, TransientResult

__all__ = [
    "BiasState",
    "Buffer",
    "DeviceInstance",
    "DeviceRole",
    "GROUND_NET",
    "Inverter",
    "Keeper",
    "KernelStats",
    "LN2",
    "LeakageAccumulator",
    "LeakageBreakdown",
    "LeakageKernel",
    "Nand2",
    "Netlist",
    "NetlistStatistics",
    "Nor2",
    "OFF_OVERLAP_GATE_FRACTION",
    "PassTransistorSwitch",
    "PrechargeTransistor",
    "RCTransientSolver",
    "RCTree",
    "SUPPLY_NET",
    "SleepTransistor",
    "StateLeakage",
    "TransientResult",
    "TransmissionGate",
    "contention_energy",
    "device_leakage",
    "dynamic_power",
    "kernel_for",
    "kernel_totals",
    "leakage_from_node_voltages",
    "lumped_stage_delay",
    "precharge_energy_per_cycle",
    "reset_kernel_totals",
    "switching_energy",
]
