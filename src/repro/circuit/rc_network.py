"""RC tree representation and Elmore delay.

Crossbar delay estimation reduces to driving RC trees: a driver with an
effective resistance pushes charge through wire resistance into node and
gate capacitances.  The Elmore delay (first moment of the impulse
response) is the standard closed-form estimate; multiplied by ln(2) it
approximates the 50 % crossing time of a step response and is accurate
to ~10 % for the monotonic, near-single-pole responses these paths
exhibit — the same fidelity class as the rest of the analytical stack.

The tree is held explicitly (parent pointers + edge resistances), so the
Elmore delay to any node is the textbook sum over the path from root to
node of ``R_edge * C_downstream``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import CircuitError

__all__ = ["RCTree", "LN2", "lumped_stage_delay"]

#: ln(2): converts an Elmore (first-moment) delay into a 50 % step delay.
LN2 = math.log(2.0)


@dataclass
class _TreeNode:
    name: str
    capacitance: float = 0.0
    parent: str | None = None
    resistance_to_parent: float = 0.0
    children: list[str] = field(default_factory=list)


class RCTree:
    """A grounded-capacitance RC tree rooted at a driver node.

    The root node represents the driver output *before* its effective
    resistance: add the driver resistance as the edge from the root to
    the first physical node, or use :meth:`elmore_delay_from_driver`
    which takes the driver resistance separately.
    """

    def __init__(self, root: str = "root") -> None:
        self._nodes: dict[str, _TreeNode] = {root: _TreeNode(name=root)}
        self._root = root

    # -- construction ---------------------------------------------------------
    @property
    def root(self) -> str:
        """Name of the root (driver) node."""
        return self._root

    def nodes(self) -> list[str]:
        """All node names, root first, in insertion order."""
        return list(self._nodes)

    def has_node(self, name: str) -> bool:
        """True if ``name`` is a node of this tree."""
        return name in self._nodes

    def add_node(self, name: str, parent: str, resistance: float, capacitance: float = 0.0) -> None:
        """Add a node connected to ``parent`` through ``resistance`` ohms."""
        if name in self._nodes:
            raise CircuitError(f"node {name!r} already exists in the RC tree")
        if parent not in self._nodes:
            raise CircuitError(f"parent node {parent!r} does not exist in the RC tree")
        if resistance < 0:
            raise CircuitError(f"edge resistance cannot be negative, got {resistance}")
        if capacitance < 0:
            raise CircuitError(f"node capacitance cannot be negative, got {capacitance}")
        self._nodes[name] = _TreeNode(
            name=name, capacitance=capacitance, parent=parent, resistance_to_parent=resistance
        )
        self._nodes[parent].children.append(name)

    def add_capacitance(self, name: str, capacitance: float) -> None:
        """Add extra grounded capacitance to an existing node."""
        if name not in self._nodes:
            raise CircuitError(f"node {name!r} does not exist in the RC tree")
        if capacitance < 0:
            raise CircuitError("added capacitance cannot be negative")
        self._nodes[name].capacitance += capacitance

    def add_wire(
        self,
        from_node: str,
        to_node: str,
        total_resistance: float,
        total_capacitance: float,
        segments: int = 5,
    ) -> None:
        """Add a distributed wire as an RC ladder of ``segments`` sections.

        Each section carries ``R/n`` and ``C/n``; five sections bring the
        ladder within ~2 % of the true distributed-line Elmore delay.
        The final ladder node is created with the name ``to_node``.
        """
        if segments < 1:
            raise CircuitError("a wire needs at least one segment")
        if total_resistance < 0 or total_capacitance < 0:
            raise CircuitError("wire R and C cannot be negative")
        previous = from_node
        section_r = total_resistance / segments
        section_c = total_capacitance / segments
        for index in range(segments):
            name = to_node if index == segments - 1 else f"{to_node}__seg{index}"
            self.add_node(name, previous, section_r, section_c)
            previous = name

    # -- queries ----------------------------------------------------------------
    def node_capacitance(self, name: str) -> float:
        """Grounded capacitance attached directly to ``name``."""
        if name not in self._nodes:
            raise CircuitError(f"node {name!r} does not exist in the RC tree")
        return self._nodes[name].capacitance

    def total_capacitance(self) -> float:
        """Sum of all grounded capacitance in the tree (the switched load)."""
        return sum(node.capacitance for node in self._nodes.values())

    def downstream_capacitance(self, name: str) -> float:
        """Capacitance of ``name`` and everything below it."""
        if name not in self._nodes:
            raise CircuitError(f"node {name!r} does not exist in the RC tree")
        total = self._nodes[name].capacitance
        for child in self._nodes[name].children:
            total += self.downstream_capacitance(child)
        return total

    def path_to_root(self, name: str) -> list[str]:
        """Node names from ``name`` up to (and including) the root."""
        if name not in self._nodes:
            raise CircuitError(f"node {name!r} does not exist in the RC tree")
        path = [name]
        current = self._nodes[name]
        while current.parent is not None:
            path.append(current.parent)
            current = self._nodes[current.parent]
        return path

    # -- Elmore delay --------------------------------------------------------------
    def elmore_delay(self, sink: str) -> float:
        """Elmore delay (seconds) from the root to ``sink``.

        This is the first moment of the impulse response:
        ``sum over edges on the root->sink path of R_edge * C_downstream(edge)``.
        """
        if sink not in self._nodes:
            raise CircuitError(f"sink node {sink!r} does not exist in the RC tree")
        delay = 0.0
        current = self._nodes[sink]
        while current.parent is not None:
            delay += current.resistance_to_parent * self.downstream_capacitance(current.name)
            current = self._nodes[current.parent]
        return delay

    def elmore_delay_from_driver(self, sink: str, driver_resistance: float) -> float:
        """Elmore delay including a lumped driver resistance at the root."""
        if driver_resistance < 0:
            raise CircuitError("driver resistance cannot be negative")
        return driver_resistance * self.total_capacitance() + self.elmore_delay(sink)

    def step_delay_from_driver(self, sink: str, driver_resistance: float) -> float:
        """50 % step-response delay estimate: ``ln(2)`` times the Elmore delay."""
        return LN2 * self.elmore_delay_from_driver(sink, driver_resistance)


def lumped_stage_delay(driver_resistance: float, load_capacitance: float,
                       wire_resistance: float = 0.0, wire_capacitance: float = 0.0) -> float:
    """50 % delay of one driver stage with an optional lumped wire.

    Classic closed form: ``0.69 * Rd * (Cw + CL) + 0.69 * Rw * CL
    + 0.38 * Rw * Cw`` — driver charges everything, the wire resistance
    sees the load fully and its own capacitance distributed.
    """
    if driver_resistance < 0 or load_capacitance < 0:
        raise CircuitError("driver resistance and load capacitance cannot be negative")
    if wire_resistance < 0 or wire_capacitance < 0:
        raise CircuitError("wire parasitics cannot be negative")
    return (
        LN2 * driver_resistance * (wire_capacitance + load_capacitance)
        + LN2 * wire_resistance * load_capacitance
        + 0.38 * wire_resistance * wire_capacitance
    )
