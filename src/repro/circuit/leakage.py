"""State-dependent leakage accounting.

The paper's leakage numbers are state dependent: which transistors leak,
and through which mechanism, depends on the logic values parked on the
circuit nodes (active mode with a given static probability) or forced by
the sleep/pre-charge control (standby mode).  This module provides the
bookkeeping:

* :class:`LeakageBreakdown` — immutable record of sub-threshold, gate and
  junction leakage currents (amperes) that supports addition and scaling,
  plus conversion to power at a supply voltage.
* :class:`LeakageAccumulator` — the mutable companion for hot loops: a
  running component-wise sum that collapses long ``__add__``/``scaled``
  chains into plain float adds, frozen into a validated
  :class:`LeakageBreakdown` once at the end.
* :class:`BiasState` — the terminal voltages that determine a device's
  leakage.
* :func:`device_leakage` — evaluate one device in one bias state.
* :class:`StateLeakage` — a weighted collection of (device, bias,
  multiplicity) contributions, e.g. "the DPC output path with node A
  high", which the power layer combines across states using the static
  probability.

Allocation discipline
---------------------
:class:`LeakageBreakdown` is the single hottest allocation of a design
point evaluation (tens of thousands of instances per point before the
fast path existed), so it is a ``slots`` dataclass and its arithmetic
goes through an unvalidated constructor: components are validated
non-negative once at a construction boundary (``__init__`` or
:meth:`LeakageAccumulator.freeze`), and sums/products of non-negative
floats cannot go negative, so re-validating every intermediate would
only burn the inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CircuitError
from ..technology.leakage_model import stack_factor
from ..technology.transistor import Mosfet

__all__ = ["LeakageBreakdown", "LeakageAccumulator", "BiasState",
           "device_leakage", "StateLeakage"]


@dataclass(frozen=True, slots=True)
class LeakageBreakdown:
    """Leakage currents in amperes, split by mechanism."""

    subthreshold: float = 0.0
    gate: float = 0.0
    junction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("subthreshold", "gate", "junction"):
            if getattr(self, name) < 0:
                raise CircuitError(f"leakage component {name} cannot be negative")

    @property
    def total(self) -> float:
        """Total leakage current in amperes."""
        return self.subthreshold + self.gate + self.junction

    def __add__(self, other: "LeakageBreakdown") -> "LeakageBreakdown":
        return _unchecked(
            self.subthreshold + other.subthreshold,
            self.gate + other.gate,
            self.junction + other.junction,
        )

    def scaled(self, factor: float) -> "LeakageBreakdown":
        """Return this breakdown multiplied by ``factor`` (e.g. a device count)."""
        if factor < 0:
            raise CircuitError("scaling factor cannot be negative")
        return _unchecked(
            self.subthreshold * factor,
            self.gate * factor,
            self.junction * factor,
        )

    def power(self, supply_voltage: float) -> float:
        """Leakage power in watts at the given supply voltage."""
        if supply_voltage <= 0:
            raise CircuitError("supply voltage must be positive")
        return self.total * supply_voltage

    @staticmethod
    def zero() -> "LeakageBreakdown":
        """The additive identity."""
        return LeakageBreakdown()


def _unchecked(subthreshold: float, gate: float, junction: float) -> LeakageBreakdown:
    """Build a breakdown without re-validating (arithmetic fast path).

    Only for results derived from already-validated breakdowns: sums and
    non-negative scalings of non-negative components stay non-negative.
    """
    out = object.__new__(LeakageBreakdown)
    object.__setattr__(out, "subthreshold", subthreshold)
    object.__setattr__(out, "gate", gate)
    object.__setattr__(out, "junction", junction)
    return out


class LeakageAccumulator:
    """Mutable component-wise sum of breakdowns for hot loops.

    ``total = total + breakdown.scaled(n)`` allocates two breakdowns per
    contribution; the accumulator performs the same arithmetic (same
    float operation order, so results are bit-identical) as three float
    multiply-adds on mutable slots, and allocates exactly once — at
    :meth:`freeze`, the validated construction boundary.
    """

    __slots__ = ("subthreshold", "gate", "junction")

    def __init__(self) -> None:
        self.subthreshold = 0.0
        self.gate = 0.0
        self.junction = 0.0

    def add(self, breakdown: LeakageBreakdown, scale: float = 1.0) -> "LeakageAccumulator":
        """Add ``breakdown`` times ``scale`` (e.g. a device count); returns self."""
        if scale < 0:
            raise CircuitError("scaling factor cannot be negative")
        if scale == 1.0:
            self.subthreshold += breakdown.subthreshold
            self.gate += breakdown.gate
            self.junction += breakdown.junction
        else:
            self.subthreshold += breakdown.subthreshold * scale
            self.gate += breakdown.gate * scale
            self.junction += breakdown.junction * scale
        return self

    def freeze(self) -> LeakageBreakdown:
        """The accumulated sum as a validated immutable breakdown."""
        return LeakageBreakdown(
            subthreshold=self.subthreshold,
            gate=self.gate,
            junction=self.junction,
        )


@dataclass(frozen=True)
class BiasState:
    """Terminal conditions of a device for leakage evaluation.

    All voltages are magnitudes in volts (the models are symmetric for
    NMOS/PMOS once magnitudes are used).

    Attributes
    ----------
    vgs:
        Gate-source voltage magnitude.  0 for an off device, Vdd for a
        fully-on device, intermediate values for e.g. a pass transistor
        whose source has risen.
    vds:
        Drain-source voltage magnitude.  An off device with the full
        supply across it leaks the most; a device whose drain and source
        are at the same potential does not sub-threshold leak at all.
    gate_oxide_voltage:
        Voltage magnitude across the gate oxide, which drives gate
        tunnelling.  For an on device this is typically Vdd (gate to
        inverted channel); for an off device with a high drain it is the
        gate-drain overlap voltage.
    series_off_devices:
        Number of off devices stacked in series with this one in its
        leakage path (including itself); 2 or more engages the stack
        effect.
    """

    vgs: float = 0.0
    vds: float = 0.0
    gate_oxide_voltage: float = 0.0
    series_off_devices: int = 1

    def __post_init__(self) -> None:
        if self.vds < 0 or self.gate_oxide_voltage < 0:
            raise CircuitError("bias voltages are magnitudes and must be non-negative")
        if self.series_off_devices < 1:
            raise CircuitError("series_off_devices counts this device and must be >= 1")


def device_leakage(device: Mosfet, bias: BiasState) -> LeakageBreakdown:
    """Leakage of one device in one bias state.

    The stack effect is applied to the sub-threshold component only
    (gate tunnelling does not benefit from stacking).
    """
    subthreshold = device.subthreshold_current(vgs=bias.vgs, vds=bias.vds)
    if bias.series_off_devices > 1:
        subthreshold *= stack_factor(bias.series_off_devices)
    gate = device.gate_leakage(gate_voltage=bias.gate_oxide_voltage)
    junction = device.junction_leakage(vds=bias.vds)
    return LeakageBreakdown(subthreshold=subthreshold, gate=gate, junction=junction)


@dataclass
class StateLeakage:
    """Leakage of a circuit in one named logic state.

    Contributions are accumulated with :meth:`add`; each contribution is
    one device, its bias and a multiplicity (how many identical copies of
    that device exist in the circuit — e.g. 128 bits x 5 output ports).
    """

    state_name: str
    contributions: list[tuple[str, LeakageBreakdown, float]] = field(default_factory=list)

    def add(self, label: str, device: Mosfet, bias: BiasState, multiplicity: float = 1.0) -> None:
        """Add ``multiplicity`` copies of ``device`` in ``bias`` to the state."""
        if multiplicity < 0:
            raise CircuitError("multiplicity cannot be negative")
        self.contributions.append((label, device_leakage(device, bias), multiplicity))

    def add_breakdown(self, label: str, breakdown: LeakageBreakdown, multiplicity: float = 1.0) -> None:
        """Add a pre-computed breakdown (used by gate-level helpers)."""
        if multiplicity < 0:
            raise CircuitError("multiplicity cannot be negative")
        self.contributions.append((label, breakdown, multiplicity))

    def total(self) -> LeakageBreakdown:
        """Sum of all contributions, weighted by multiplicity."""
        acc = LeakageAccumulator()
        for _, breakdown, multiplicity in self.contributions:
            acc.add(breakdown, multiplicity)
        return acc.freeze()

    def total_current(self) -> float:
        """Total leakage current in amperes."""
        return self.total().total

    def power(self, supply_voltage: float) -> float:
        """Total leakage power in watts."""
        return self.total().power(supply_voltage)

    def by_label(self) -> dict[str, LeakageBreakdown]:
        """Aggregate contributions by their label (e.g. per gate role)."""
        grouped: dict[str, LeakageBreakdown] = {}
        for label, breakdown, multiplicity in self.contributions:
            current = grouped.get(label, LeakageBreakdown.zero())
            grouped[label] = current + breakdown.scaled(multiplicity)
        return grouped
