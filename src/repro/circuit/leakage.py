"""State-dependent leakage accounting.

The paper's leakage numbers are state dependent: which transistors leak,
and through which mechanism, depends on the logic values parked on the
circuit nodes (active mode with a given static probability) or forced by
the sleep/pre-charge control (standby mode).  This module provides the
bookkeeping:

* :class:`LeakageBreakdown` — immutable record of sub-threshold, gate and
  junction leakage currents (amperes) that supports addition and scaling,
  plus conversion to power at a supply voltage.
* :class:`BiasState` — the terminal voltages that determine a device's
  leakage.
* :func:`device_leakage` — evaluate one device in one bias state.
* :class:`StateLeakage` — a weighted collection of (device, bias,
  multiplicity) contributions, e.g. "the DPC output path with node A
  high", which the power layer combines across states using the static
  probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CircuitError
from ..technology.transistor import Mosfet

__all__ = ["LeakageBreakdown", "BiasState", "device_leakage", "StateLeakage"]


@dataclass(frozen=True)
class LeakageBreakdown:
    """Leakage currents in amperes, split by mechanism."""

    subthreshold: float = 0.0
    gate: float = 0.0
    junction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("subthreshold", "gate", "junction"):
            if getattr(self, name) < 0:
                raise CircuitError(f"leakage component {name} cannot be negative")

    @property
    def total(self) -> float:
        """Total leakage current in amperes."""
        return self.subthreshold + self.gate + self.junction

    def __add__(self, other: "LeakageBreakdown") -> "LeakageBreakdown":
        return LeakageBreakdown(
            subthreshold=self.subthreshold + other.subthreshold,
            gate=self.gate + other.gate,
            junction=self.junction + other.junction,
        )

    def scaled(self, factor: float) -> "LeakageBreakdown":
        """Return this breakdown multiplied by ``factor`` (e.g. a device count)."""
        if factor < 0:
            raise CircuitError("scaling factor cannot be negative")
        return LeakageBreakdown(
            subthreshold=self.subthreshold * factor,
            gate=self.gate * factor,
            junction=self.junction * factor,
        )

    def power(self, supply_voltage: float) -> float:
        """Leakage power in watts at the given supply voltage."""
        if supply_voltage <= 0:
            raise CircuitError("supply voltage must be positive")
        return self.total * supply_voltage

    @staticmethod
    def zero() -> "LeakageBreakdown":
        """The additive identity."""
        return LeakageBreakdown()


@dataclass(frozen=True)
class BiasState:
    """Terminal conditions of a device for leakage evaluation.

    All voltages are magnitudes in volts (the models are symmetric for
    NMOS/PMOS once magnitudes are used).

    Attributes
    ----------
    vgs:
        Gate-source voltage magnitude.  0 for an off device, Vdd for a
        fully-on device, intermediate values for e.g. a pass transistor
        whose source has risen.
    vds:
        Drain-source voltage magnitude.  An off device with the full
        supply across it leaks the most; a device whose drain and source
        are at the same potential does not sub-threshold leak at all.
    gate_oxide_voltage:
        Voltage magnitude across the gate oxide, which drives gate
        tunnelling.  For an on device this is typically Vdd (gate to
        inverted channel); for an off device with a high drain it is the
        gate-drain overlap voltage.
    series_off_devices:
        Number of off devices stacked in series with this one in its
        leakage path (including itself); 2 or more engages the stack
        effect.
    """

    vgs: float = 0.0
    vds: float = 0.0
    gate_oxide_voltage: float = 0.0
    series_off_devices: int = 1

    def __post_init__(self) -> None:
        if self.vds < 0 or self.gate_oxide_voltage < 0:
            raise CircuitError("bias voltages are magnitudes and must be non-negative")
        if self.series_off_devices < 1:
            raise CircuitError("series_off_devices counts this device and must be >= 1")


def device_leakage(device: Mosfet, bias: BiasState) -> LeakageBreakdown:
    """Leakage of one device in one bias state.

    The stack effect is applied to the sub-threshold component only
    (gate tunnelling does not benefit from stacking).
    """
    from ..technology.leakage_model import stack_factor

    subthreshold = device.subthreshold_current(vgs=bias.vgs, vds=bias.vds)
    if bias.series_off_devices > 1:
        subthreshold *= stack_factor(bias.series_off_devices)
    gate = device.gate_leakage(gate_voltage=bias.gate_oxide_voltage)
    junction = device.junction_leakage(vds=bias.vds)
    return LeakageBreakdown(subthreshold=subthreshold, gate=gate, junction=junction)


@dataclass
class StateLeakage:
    """Leakage of a circuit in one named logic state.

    Contributions are accumulated with :meth:`add`; each contribution is
    one device, its bias and a multiplicity (how many identical copies of
    that device exist in the circuit — e.g. 128 bits x 5 output ports).
    """

    state_name: str
    contributions: list[tuple[str, LeakageBreakdown, float]] = field(default_factory=list)

    def add(self, label: str, device: Mosfet, bias: BiasState, multiplicity: float = 1.0) -> None:
        """Add ``multiplicity`` copies of ``device`` in ``bias`` to the state."""
        if multiplicity < 0:
            raise CircuitError("multiplicity cannot be negative")
        self.contributions.append((label, device_leakage(device, bias), multiplicity))

    def add_breakdown(self, label: str, breakdown: LeakageBreakdown, multiplicity: float = 1.0) -> None:
        """Add a pre-computed breakdown (used by gate-level helpers)."""
        if multiplicity < 0:
            raise CircuitError("multiplicity cannot be negative")
        self.contributions.append((label, breakdown, multiplicity))

    def total(self) -> LeakageBreakdown:
        """Sum of all contributions, weighted by multiplicity."""
        result = LeakageBreakdown.zero()
        for _, breakdown, multiplicity in self.contributions:
            result = result + breakdown.scaled(multiplicity)
        return result

    def total_current(self) -> float:
        """Total leakage current in amperes."""
        return self.total().total

    def power(self, supply_voltage: float) -> float:
        """Total leakage power in watts."""
        return self.total().power(supply_voltage)

    def by_label(self) -> dict[str, LeakageBreakdown]:
        """Aggregate contributions by their label (e.g. per gate role)."""
        grouped: dict[str, LeakageBreakdown] = {}
        for label, breakdown, multiplicity in self.contributions:
            current = grouped.get(label, LeakageBreakdown.zero())
            grouped[label] = current + breakdown.scaled(multiplicity)
        return grouped
