"""Transistor-level netlist container.

The crossbar generators emit a :class:`Netlist` per scheme.  It is not a
SPICE deck — there is no simulator attached — but it carries everything
the structural analyses need:

* the device inventory (instances, widths, polarities, Vt flavors,
  roles), which is what the Figure 1-3 reproduction benchmarks report;
* net connectivity as a graph (via :mod:`networkx`), used for sanity
  checks such as "every signal net has a path to a rail through channel
  terminals" and for counting the fan-in of the crossbar merge node;
* aggregate statistics (total transistor width, device counts by flavor)
  that feed the area-overhead discussion.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import networkx as nx

from ..errors import CircuitError
from ..technology.transistor import Polarity, VtFlavor
from .devices import DeviceInstance, DeviceRole

__all__ = ["Netlist", "NetlistStatistics"]

#: Conventional rail net names.
SUPPLY_NET = "vdd"
GROUND_NET = "gnd"


@dataclass(frozen=True)
class NetlistStatistics:
    """Aggregate numbers describing a netlist."""

    device_count: int
    total_width: float
    count_by_flavor: dict[VtFlavor, int]
    count_by_polarity: dict[Polarity, int]
    count_by_role: dict[DeviceRole, int]
    width_by_flavor: dict[VtFlavor, float]

    @property
    def high_vt_fraction(self) -> float:
        """Fraction of devices (by count) using the high-Vt flavor."""
        if self.device_count == 0:
            return 0.0
        return self.count_by_flavor.get(VtFlavor.HIGH, 0) / self.device_count

    @property
    def high_vt_width_fraction(self) -> float:
        """Fraction of total transistor width using the high-Vt flavor."""
        if self.total_width == 0:
            return 0.0
        return self.width_by_flavor.get(VtFlavor.HIGH, 0.0) / self.total_width


class Netlist:
    """A named collection of nets and transistor instances."""

    def __init__(self, name: str) -> None:
        if not name:
            raise CircuitError("netlist name cannot be empty")
        self.name = name
        self._devices: dict[str, DeviceInstance] = {}
        self._nets: set[str] = {SUPPLY_NET, GROUND_NET}

    # -- construction -----------------------------------------------------------
    def add_net(self, net: str) -> str:
        """Declare a net (idempotent) and return its name."""
        if not net:
            raise CircuitError("net name cannot be empty")
        self._nets.add(net)
        return net

    def add_device(self, device: DeviceInstance) -> DeviceInstance:
        """Add a device instance, declaring any nets it references."""
        if device.name in self._devices:
            raise CircuitError(f"duplicate device instance name {device.name!r}")
        for net in device.terminals():
            self._nets.add(net)
        self._devices[device.name] = device
        return device

    # -- queries ------------------------------------------------------------------
    @property
    def nets(self) -> set[str]:
        """All declared net names (including the rails)."""
        return set(self._nets)

    @property
    def devices(self) -> list[DeviceInstance]:
        """All device instances in insertion order."""
        return list(self._devices.values())

    def device(self, name: str) -> DeviceInstance:
        """Look up a device by instance name."""
        try:
            return self._devices[name]
        except KeyError as exc:
            raise CircuitError(f"no device named {name!r} in netlist {self.name!r}") from exc

    def devices_with_role(self, role: DeviceRole) -> list[DeviceInstance]:
        """All devices tagged with ``role``."""
        return [device for device in self._devices.values() if device.role is role]

    def devices_on_net(self, net: str) -> list[DeviceInstance]:
        """All devices with any terminal on ``net``."""
        if net not in self._nets:
            raise CircuitError(f"net {net!r} is not declared in netlist {self.name!r}")
        return [device for device in self._devices.values() if net in device.terminals()]

    def channel_graph(self) -> nx.Graph:
        """Undirected graph of nets connected by device channels (drain-source).

        Gate terminals do not create connectivity (a MOS gate is an open
        circuit at DC), which makes this graph the right structure for
        checking that every output net can actually be driven to a rail.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self._nets)
        for device in self._devices.values():
            graph.add_edge(device.drain, device.source, device=device.name)
        return graph

    def net_is_drivable(self, net: str) -> bool:
        """True if ``net`` has a channel path to Vdd or GND."""
        graph = self.channel_graph()
        if net not in graph:
            raise CircuitError(f"net {net!r} is not declared in netlist {self.name!r}")
        return nx.has_path(graph, net, SUPPLY_NET) or nx.has_path(graph, net, GROUND_NET)

    def fan_in(self, net: str) -> int:
        """Number of distinct devices whose drain or source touches ``net``."""
        return len(self.devices_on_net(net))

    # -- statistics ------------------------------------------------------------------
    def statistics(self) -> NetlistStatistics:
        """Aggregate device statistics for reporting."""
        by_flavor: Counter[VtFlavor] = Counter()
        by_polarity: Counter[Polarity] = Counter()
        by_role: Counter[DeviceRole] = Counter()
        width_by_flavor: dict[VtFlavor, float] = {}
        total_width = 0.0
        for device in self._devices.values():
            by_flavor[device.vt_flavor] += 1
            by_polarity[device.polarity] += 1
            by_role[device.role] += 1
            width_by_flavor[device.vt_flavor] = (
                width_by_flavor.get(device.vt_flavor, 0.0) + device.width
            )
            total_width += device.width
        return NetlistStatistics(
            device_count=len(self._devices),
            total_width=total_width,
            count_by_flavor=dict(by_flavor),
            count_by_polarity=dict(by_polarity),
            count_by_role=dict(by_role),
            width_by_flavor=width_by_flavor,
        )

    def __len__(self) -> int:
        return len(self._devices)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Netlist({self.name!r}, devices={len(self._devices)}, nets={len(self._nets)})"
