"""Dynamic (switching) power models.

Three dynamic components matter for the paper's Table 1:

* **Switching energy** of the capacitances toggled by data transitions
  (input wires, the crossbar merge node, driver internal nodes, output
  wires): the familiar ``alpha * C * Vdd^2 * f``.
* **Contention (crowbar) energy** burned when a transition must fight a
  keeper or another weak opposing device: the keeper sources current for
  the duration of the transition, and that charge is drawn from the
  supply.  The dual-Vt schemes weaken the keeper (high-Vt), which is one
  of the reasons their *total* power drops by more than the leakage
  savings alone would suggest.
* **Pre-charge energy** of the DPC/SDPC schemes: every cycle in which
  the output was left low, the pre-charge device must pull the wire back
  to Vdd, so the pre-charge penalty grows with the probability of the
  "0" state — which is why the paper quotes 50 % static probability as
  the worst case.
"""

from __future__ import annotations

from ..errors import PowerError

__all__ = [
    "switching_energy",
    "dynamic_power",
    "contention_energy",
    "precharge_energy_per_cycle",
]


def switching_energy(capacitance: float, supply_voltage: float) -> float:
    """Energy (joules) drawn from the supply to charge ``capacitance`` to Vdd.

    The canonical ``C * Vdd^2`` figure; half is stored on the capacitor
    and half is dissipated in the charging device.  Discharging
    dissipates the stored half, so over a full charge/discharge cycle the
    supply delivers exactly this energy.
    """
    if capacitance < 0:
        raise PowerError(f"capacitance cannot be negative, got {capacitance}")
    if supply_voltage <= 0:
        raise PowerError("supply voltage must be positive")
    return capacitance * supply_voltage**2


def dynamic_power(
    capacitance: float,
    supply_voltage: float,
    frequency: float,
    activity_factor: float,
) -> float:
    """Average switching power (watts).

    ``activity_factor`` is the probability that the node makes an
    energy-drawing (low-to-high) transition in a given cycle; 0.5
    corresponds to random data toggling every other cycle on average.
    """
    if frequency <= 0:
        raise PowerError("frequency must be positive")
    if not 0.0 <= activity_factor <= 1.0:
        raise PowerError(f"activity factor must be in [0, 1], got {activity_factor}")
    return switching_energy(capacitance, supply_voltage) * frequency * activity_factor


def contention_energy(opposing_current: float, transition_time: float, supply_voltage: float) -> float:
    """Energy (joules) burned fighting an opposing device during one transition.

    While a transition is in flight for ``transition_time`` seconds, the
    opposing device (keeper, level restorer) sources ``opposing_current``
    from the supply straight into the driving device.  The integral is
    approximated as the rectangle ``I * t * Vdd``; the factor-of-two-ish
    shape error is far below the modelling error of the current itself
    and is absorbed by calibration.
    """
    if opposing_current < 0:
        raise PowerError("opposing current cannot be negative")
    if transition_time < 0:
        raise PowerError("transition time cannot be negative")
    if supply_voltage <= 0:
        raise PowerError("supply voltage must be positive")
    return opposing_current * transition_time * supply_voltage


def precharge_energy_per_cycle(
    wire_capacitance: float,
    supply_voltage: float,
    probability_discharged: float,
) -> float:
    """Average energy (joules per cycle) spent restoring a pre-charged wire.

    A pre-charged-high wire only costs energy when the previous
    evaluation left it low, which happens with probability
    ``probability_discharged`` (the static probability of a logic 0 for
    a pre-charged-high design).
    """
    if not 0.0 <= probability_discharged <= 1.0:
        raise PowerError("probability must be in [0, 1]")
    return switching_energy(wire_capacitance, supply_voltage) * probability_discharged
