"""Human-readable power/delay reports (the Table 1 text rendering)."""

from __future__ import annotations

from ..units import seconds_to_picoseconds, watts_to_milliwatts
from .savings import SchemeEvaluation, SchemeSavings

__all__ = ["format_table1", "format_evaluation"]

_ROW_LABELS = [
    "High to low delay time (ps)",
    "Low to High / Precharge delay time (ps)",
    "Active Leakage Savings (%)",
    "Standby Leakage Savings (%)",
    "Minimum Idle Time (cycles)",
    "Total Power (mW)",
    "Delay Penalty (%)",
]


def format_evaluation(evaluation: SchemeEvaluation) -> str:
    """One scheme's raw figures as a small text block."""
    lines = [
        f"scheme: {evaluation.scheme}",
        f"  high-to-low delay: {seconds_to_picoseconds(evaluation.delay.high_to_low):.2f} ps",
        f"  low-to-high delay: {seconds_to_picoseconds(evaluation.delay.low_to_high):.2f} ps",
        f"  active leakage:    {watts_to_milliwatts(evaluation.leakage.active_power):.2f} mW",
        f"  standby leakage:   {watts_to_milliwatts(evaluation.leakage.standby_power):.2f} mW",
        f"  dynamic power:     {watts_to_milliwatts(evaluation.total_power.dynamic_power):.2f} mW",
        f"  total power:       {watts_to_milliwatts(evaluation.total_power.total):.2f} mW",
        f"  min idle time:     {evaluation.idle_time.minimum_idle_cycles} cycles",
    ]
    return "\n".join(lines)


def format_table1(evaluations: dict[str, SchemeEvaluation],
                  savings: dict[str, SchemeSavings],
                  baseline_name: str = "SC") -> str:
    """Render the reproduction of the paper's Table 1 as aligned text.

    ``evaluations`` maps scheme name to its raw evaluation; ``savings``
    maps the non-baseline scheme names to their savings relative to the
    baseline.
    """
    names = list(evaluations)
    width = 10
    header = f"{'':44s}" + "".join(f"{name:>{width}s}" for name in names)
    rows: list[list[str]] = [[] for _ in _ROW_LABELS]
    for name in names:
        evaluation = evaluations[name]
        saving = savings.get(name)
        rows[0].append(f"{seconds_to_picoseconds(evaluation.delay.high_to_low):.2f}")
        rows[1].append(f"{seconds_to_picoseconds(evaluation.delay.low_to_high):.2f}")
        if name == baseline_name or saving is None:
            rows[2].append("-")
            rows[3].append("-")
            rows[6].append("-")
        else:
            rows[2].append(f"{saving.active_leakage_saving * 100:.2f}")
            rows[3].append(f"{saving.standby_leakage_saving * 100:.2f}")
            penalty = saving.delay_penalty * 100
            rows[6].append("No" if penalty == 0 else f"{penalty:.2f}")
        rows[4].append(str(evaluation.idle_time.minimum_idle_cycles))
        rows[5].append(f"{watts_to_milliwatts(evaluation.total_power.total):.2f}")
    lines = [header, "-" * len(header)]
    for label, row in zip(_ROW_LABELS, rows):
        lines.append(f"{label:44s}" + "".join(f"{value:>{width}s}" for value in row))
    return "\n".join(lines)
