"""Minimum idle time (standby break-even) analysis.

Table 1's "Minimum Idle Time" row: the smallest number of idle cycles
for which entering standby saves more leakage energy than the standby
entry/exit transition costs.  The analysis compares

* the energy cost of one standby entry + exit
  (:meth:`~repro.crossbar.base.CrossbarScheme.sleep_transition_energy`),

against

* the leakage power saved per cycle of standby relative to idling awake
  (:meth:`~repro.crossbar.base.CrossbarScheme.standby_power_saving`).

The same numbers parameterise the NoC power-gating controller
(:mod:`repro.noc.power_gating`), which only puts a port to sleep when
the predicted idle interval exceeds this threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..crossbar.base import CrossbarScheme
from ..errors import PowerError

__all__ = ["IdleTimeAnalysis", "analyse_minimum_idle_time"]


@dataclass(frozen=True)
class IdleTimeAnalysis:
    """Break-even figures for one scheme's standby mode."""

    scheme: str
    clock_frequency: float
    transition_energy: float
    power_saved_in_standby: float

    @property
    def clock_period(self) -> float:
        """Cycle time in seconds."""
        return 1.0 / self.clock_frequency

    @property
    def energy_saved_per_cycle(self) -> float:
        """Leakage energy saved per standby cycle (joules)."""
        return self.power_saved_in_standby * self.clock_period

    @property
    def break_even_cycles(self) -> float:
        """Exact (fractional) break-even idle length in cycles."""
        if self.energy_saved_per_cycle <= 0:
            return math.inf
        return self.transition_energy / self.energy_saved_per_cycle

    @property
    def minimum_idle_cycles(self) -> int:
        """Minimum whole number of idle cycles for standby to pay off.

        ``math.inf`` break-evens (a scheme that saves nothing in standby)
        raise, because asking for its minimum idle time indicates a
        misconfigured experiment.
        """
        cycles = self.break_even_cycles
        if math.isinf(cycles):
            raise PowerError(
                f"scheme {self.scheme!r} saves no power in standby; minimum idle time undefined"
            )
        return max(1, math.ceil(cycles))

    @property
    def minimum_idle_time_seconds(self) -> float:
        """Minimum idle duration in seconds."""
        return self.minimum_idle_cycles * self.clock_period


def analyse_minimum_idle_time(
    scheme: CrossbarScheme,
    static_probability: float = 0.5,
    frequency: float | None = None,
) -> IdleTimeAnalysis:
    """Compute the standby break-even point of ``scheme``."""
    if not scheme.has_sleep_mode:
        raise PowerError(f"scheme {scheme.name!r} has no standby mode")
    clock = frequency if frequency is not None else scheme.library.clock_frequency
    if clock <= 0:
        raise PowerError("frequency must be positive")
    return IdleTimeAnalysis(
        scheme=scheme.name,
        clock_frequency=clock,
        transition_energy=scheme.sleep_transition_energy(static_probability),
        power_saved_in_standby=scheme.standby_power_saving(static_probability),
    )
