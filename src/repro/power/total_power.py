"""Total crossbar power (Table 1 "Total Power - 3 GHz" row).

Total power is switching power plus active leakage power at the chosen
operating point.  The paper flags the pre-charged schemes' figures as
"worst case" because their switching power is maximised at 50 % static
probability; :func:`power_versus_static_probability` exposes that
dependence, which the ablation benchmark sweeps to reproduce the paper's
closing remark that DPC/SDPC "target systems which have major data
transfers within the same polarity".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crossbar.base import CrossbarScheme
from ..errors import PowerError
from .dynamic_analysis import analyse_dynamic
from .leakage_analysis import analyse_leakage

__all__ = ["TotalPowerAnalysis", "analyse_total_power", "power_versus_static_probability"]


@dataclass(frozen=True)
class TotalPowerAnalysis:
    """Total-power figures of one scheme at one operating point."""

    scheme: str
    frequency: float
    toggle_activity: float
    static_probability: float
    dynamic_power: float
    leakage_power: float

    @property
    def total(self) -> float:
        """Total power in watts."""
        return self.dynamic_power + self.leakage_power

    @property
    def leakage_fraction(self) -> float:
        """Fraction of the total power that is leakage."""
        if self.total == 0:
            return 0.0
        return self.leakage_power / self.total

    def saving_versus(self, baseline: "TotalPowerAnalysis") -> float:
        """Fractional total-power saving relative to ``baseline``."""
        if baseline.total <= 0:
            raise PowerError("baseline total power must be positive")
        return 1.0 - self.total / baseline.total


def analyse_total_power(
    scheme: CrossbarScheme,
    toggle_activity: float = 0.5,
    static_probability: float = 0.5,
    frequency: float | None = None,
) -> TotalPowerAnalysis:
    """Evaluate switching + active leakage power for ``scheme``."""
    dynamic = analyse_dynamic(scheme, toggle_activity, static_probability, frequency)
    leakage = analyse_leakage(scheme, static_probability)
    return TotalPowerAnalysis(
        scheme=scheme.name,
        frequency=dynamic.frequency,
        toggle_activity=toggle_activity,
        static_probability=static_probability,
        dynamic_power=dynamic.power,
        leakage_power=leakage.active_power,
    )


def power_versus_static_probability(
    scheme: CrossbarScheme,
    probabilities: list[float],
    toggle_activity: float = 0.5,
    frequency: float | None = None,
) -> list[TotalPowerAnalysis]:
    """Total power across a sweep of static probabilities.

    Reproduces the polarity-sensitivity claim: pre-charged schemes get
    cheaper as the data skews towards the pre-charged value while
    feedback schemes are insensitive to polarity (only to toggling).
    """
    if not probabilities:
        raise PowerError("the sweep needs at least one static probability")
    return [
        analyse_total_power(scheme, toggle_activity, probability, frequency)
        for probability in probabilities
    ]
