"""Savings bookkeeping: every Table 1 row for one scheme, relative to SC.

:func:`evaluate_scheme` gathers delay, leakage, total power and
break-even figures for a single scheme; :func:`savings_versus_baseline`
turns two such evaluations into the percentages the paper prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crossbar.base import CrossbarScheme
from ..errors import PowerError
from ..timing.delay_analysis import DelayReport
from .idle_time import IdleTimeAnalysis, analyse_minimum_idle_time
from .leakage_analysis import LeakageAnalysis, analyse_leakage
from .total_power import TotalPowerAnalysis, analyse_total_power

__all__ = ["SchemeEvaluation", "SchemeSavings", "evaluate_scheme", "savings_versus_baseline"]


@dataclass(frozen=True)
class SchemeEvaluation:
    """All raw figures for one scheme at one operating point."""

    scheme: str
    delay: DelayReport
    leakage: LeakageAnalysis
    total_power: TotalPowerAnalysis
    idle_time: IdleTimeAnalysis


@dataclass(frozen=True)
class SchemeSavings:
    """Table 1 percentages for one scheme relative to the SC baseline."""

    scheme: str
    active_leakage_saving: float
    standby_leakage_saving: float
    total_power_saving: float
    delay_penalty: float
    minimum_idle_cycles: int

    def as_percentages(self) -> dict[str, float]:
        """The savings expressed in percent, keyed like the Table 1 rows."""
        return {
            "active_leakage_saving_percent": self.active_leakage_saving * 100.0,
            "standby_leakage_saving_percent": self.standby_leakage_saving * 100.0,
            "total_power_saving_percent": self.total_power_saving * 100.0,
            "delay_penalty_percent": self.delay_penalty * 100.0,
            "minimum_idle_cycles": float(self.minimum_idle_cycles),
        }


def evaluate_scheme(
    scheme: CrossbarScheme,
    static_probability: float = 0.5,
    toggle_activity: float = 0.5,
    frequency: float | None = None,
) -> SchemeEvaluation:
    """Collect every Table 1 quantity for ``scheme``."""
    return SchemeEvaluation(
        scheme=scheme.name,
        delay=scheme.delay_report(),
        leakage=analyse_leakage(scheme, static_probability),
        total_power=analyse_total_power(scheme, toggle_activity, static_probability, frequency),
        idle_time=analyse_minimum_idle_time(scheme, static_probability, frequency),
    )


def savings_versus_baseline(evaluation: SchemeEvaluation,
                            baseline: SchemeEvaluation) -> SchemeSavings:
    """Express ``evaluation`` relative to ``baseline`` (normally the SC scheme)."""
    if baseline.leakage.active_power <= 0 or baseline.leakage.standby_power <= 0:
        raise PowerError("baseline leakage must be positive to compute savings")
    return SchemeSavings(
        scheme=evaluation.scheme,
        active_leakage_saving=evaluation.leakage.active_saving_versus(baseline.leakage),
        standby_leakage_saving=evaluation.leakage.standby_saving_versus(baseline.leakage),
        total_power_saving=evaluation.total_power.saving_versus(baseline.total_power),
        delay_penalty=evaluation.delay.penalty_versus(baseline.delay),
        minimum_idle_cycles=evaluation.idle_time.minimum_idle_cycles,
    )
