"""Scheme-level dynamic (switching) power analysis."""

from __future__ import annotations

from dataclasses import dataclass

from ..crossbar.base import CrossbarScheme
from ..errors import PowerError

__all__ = ["DynamicAnalysis", "analyse_dynamic"]


@dataclass(frozen=True)
class DynamicAnalysis:
    """Switching-power figures of one scheme at one operating point."""

    scheme: str
    toggle_activity: float
    static_probability: float
    frequency: float
    energy_per_cycle: float

    @property
    def power(self) -> float:
        """Average switching power (watts)."""
        return self.energy_per_cycle * self.frequency

    def energy_per_flit(self, flit_width: int) -> float:
        """Average switching energy per transferred flit bit-cycle (joules)."""
        if flit_width < 1:
            raise PowerError("flit width must be at least 1")
        return self.energy_per_cycle / flit_width


def analyse_dynamic(
    scheme: CrossbarScheme,
    toggle_activity: float = 0.5,
    static_probability: float = 0.5,
    frequency: float | None = None,
) -> DynamicAnalysis:
    """Evaluate the switching energy/power of ``scheme``.

    ``toggle_activity`` is the probability a data bit changes between
    consecutive flits; ``static_probability`` the probability of a logic
    1 (which sets the pre-charge penalty of DPC/SDPC); ``frequency``
    defaults to the scheme's library clock (3 GHz for the paper's
    configuration).
    """
    for name, value in (("toggle_activity", toggle_activity),
                        ("static_probability", static_probability)):
        if not 0.0 <= value <= 1.0:
            raise PowerError(f"{name} must be in [0, 1], got {value}")
    clock = frequency if frequency is not None else scheme.library.clock_frequency
    if clock <= 0:
        raise PowerError("frequency must be positive")
    energy = scheme.dynamic_energy_per_cycle(toggle_activity, static_probability)
    return DynamicAnalysis(
        scheme=scheme.name,
        toggle_activity=toggle_activity,
        static_probability=static_probability,
        frequency=clock,
        energy_per_cycle=energy,
    )
