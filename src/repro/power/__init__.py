"""Power analysis: leakage, dynamic, total power, break-even and savings.

See ``DESIGN.md`` S6: these are the quantities of the paper's Table 1.
"""

from .dynamic_analysis import DynamicAnalysis, analyse_dynamic
from .idle_time import IdleTimeAnalysis, analyse_minimum_idle_time
from .leakage_analysis import LeakageAnalysis, analyse_leakage
from .report import format_evaluation, format_table1
from .savings import (
    SchemeEvaluation,
    SchemeSavings,
    evaluate_scheme,
    savings_versus_baseline,
)
from .total_power import (
    TotalPowerAnalysis,
    analyse_total_power,
    power_versus_static_probability,
)

__all__ = [
    "DynamicAnalysis",
    "IdleTimeAnalysis",
    "LeakageAnalysis",
    "SchemeEvaluation",
    "SchemeSavings",
    "TotalPowerAnalysis",
    "analyse_dynamic",
    "analyse_leakage",
    "analyse_minimum_idle_time",
    "analyse_total_power",
    "evaluate_scheme",
    "format_evaluation",
    "format_table1",
    "power_versus_static_probability",
    "savings_versus_baseline",
]
