"""Scheme-level leakage analysis.

Thin, well-named wrappers around the crossbar scheme methods that
produce the quantities Table 1 reports: active leakage, standby leakage,
their mechanism breakdowns, and the savings of each scheme relative to
the SC baseline.  Keeping this in its own module (rather than calling
scheme methods directly from the benchmarks) gives the power analyses a
stable, documented interface that the NoC layer reuses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.leakage import LeakageBreakdown
from ..crossbar.base import CrossbarScheme
from ..errors import PowerError

__all__ = ["LeakageAnalysis", "analyse_leakage"]


@dataclass(frozen=True)
class LeakageAnalysis:
    """Leakage figures of one scheme at one operating point."""

    scheme: str
    static_probability: float
    active: LeakageBreakdown
    idle: LeakageBreakdown
    standby: LeakageBreakdown
    supply_voltage: float

    @property
    def active_power(self) -> float:
        """Active leakage power (watts)."""
        return self.active.power(self.supply_voltage)

    @property
    def idle_power(self) -> float:
        """Idle-but-awake leakage power (watts)."""
        return self.idle.power(self.supply_voltage)

    @property
    def standby_power(self) -> float:
        """Standby (sleep-mode) leakage power (watts)."""
        return self.standby.power(self.supply_voltage)

    def active_saving_versus(self, baseline: "LeakageAnalysis") -> float:
        """Fractional active-leakage saving relative to ``baseline`` (0..1)."""
        if baseline.active_power <= 0:
            raise PowerError("baseline active leakage must be positive")
        return 1.0 - self.active_power / baseline.active_power

    def standby_saving_versus(self, baseline: "LeakageAnalysis") -> float:
        """Fractional standby-leakage saving relative to ``baseline`` (0..1)."""
        if baseline.standby_power <= 0:
            raise PowerError("baseline standby leakage must be positive")
        return 1.0 - self.standby_power / baseline.standby_power


def analyse_leakage(scheme: CrossbarScheme, static_probability: float = 0.5) -> LeakageAnalysis:
    """Run the three leakage evaluations the paper reports for ``scheme``."""
    if not 0.0 <= static_probability <= 1.0:
        raise PowerError(f"static probability must be in [0, 1], got {static_probability}")
    return LeakageAnalysis(
        scheme=scheme.name,
        static_probability=static_probability,
        active=scheme.active_leakage(static_probability),
        idle=scheme.idle_leakage(static_probability),
        standby=scheme.standby_leakage(),
        supply_voltage=scheme.supply_voltage,
    )
