"""repro — reproduction of "Leakage-Aware Interconnect for On-Chip Network"
(Tsai, Narayanan, Xie, Irwin; DATE 2005).

The package implements the paper's five crossbar designs (SC, DFC, DPC,
SDFC, SDPC) together with every substrate the evaluation needs: a
predictive 45 nm technology model (ITRS geometry + BPTM-style wire RC +
dual-Vt MOSFET leakage/drive models), an analytical circuit layer
(gates, RC trees, Elmore delay, state-dependent leakage), timing and
dual-Vt assignment, the power analyses of Table 1 (active/standby
leakage, total power, minimum idle time), and a cycle-based mesh NoC
simulator with power gating for the architecture-level evaluation.

Quickstart::

    from repro import compare_schemes, paper_experiment

    comparison = compare_schemes(paper_experiment())
    print(comparison.as_table_text())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from .core.comparison import SchemeComparison, compare_schemes
from .core.config import ExperimentConfig, paper_experiment
from .core.design_space import sweep_parameter
from .core.paths import describe_path, get_path, set_path, sweepable_paths
from .core.scheme_evaluator import SchemeEvaluator, SchemeResult
from .engine import DesignSpace, EvaluationCache, Evaluator, ResultSet
from .crossbar import (
    CrossbarConfig,
    CrossbarScheme,
    PortDirection,
    available_schemes,
    create_all_schemes,
    create_scheme,
)
from .errors import ReproError
from .power import (
    analyse_leakage,
    analyse_minimum_idle_time,
    analyse_total_power,
    evaluate_scheme,
)
from .technology import TechnologyLibrary, default_45nm

__version__ = "1.0.0"

__all__ = [
    "CrossbarConfig",
    "CrossbarScheme",
    "DesignSpace",
    "EvaluationCache",
    "Evaluator",
    "ExperimentConfig",
    "PortDirection",
    "ReproError",
    "ResultSet",
    "SchemeComparison",
    "SchemeEvaluator",
    "SchemeResult",
    "TechnologyLibrary",
    "__version__",
    "analyse_leakage",
    "analyse_minimum_idle_time",
    "analyse_total_power",
    "available_schemes",
    "compare_schemes",
    "create_all_schemes",
    "create_scheme",
    "default_45nm",
    "describe_path",
    "evaluate_scheme",
    "get_path",
    "paper_experiment",
    "set_path",
    "sweep_parameter",
    "sweepable_paths",
]
