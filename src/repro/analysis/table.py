"""Plain-text table rendering used by examples and benchmark output."""

from __future__ import annotations

from ..errors import ReproError

__all__ = ["render_table"]


def render_table(headers: list[str], rows: list[list[object]], title: str | None = None) -> str:
    """Render an aligned, pipe-separated text table.

    Numeric cells are formatted with four significant digits; everything
    else with ``str``.  The layout is deliberately simple (monospace
    alignment, one header row) because the output is printed by pytest
    benchmarks and example scripts, not parsed.
    """
    if not headers:
        raise ReproError("a table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )

    def format_cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    formatted = [[format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in formatted)) if formatted else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in formatted:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
