"""Generic sweep utilities for examples and ablation benchmarks."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["SweepSeries", "run_sweep", "crossover_point"]


@dataclass(frozen=True)
class SweepSeries:
    """One named series of (x, y) points."""

    name: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ReproError("a sweep series needs as many y values as x values")
        if not self.xs:
            raise ReproError("a sweep series cannot be empty")


def run_sweep(name: str, xs: Sequence[float], function: Callable[[float], float]) -> SweepSeries:
    """Evaluate ``function`` at every ``x`` and wrap the result as a series."""
    xs_tuple = tuple(float(x) for x in xs)
    ys = tuple(float(function(x)) for x in xs_tuple)
    return SweepSeries(name=name, xs=xs_tuple, ys=ys)


def crossover_point(series_a: SweepSeries, series_b: SweepSeries) -> float | None:
    """X value where ``series_a`` and ``series_b`` cross (linear interpolation).

    Both series must share the same x grid.  Returns ``None`` when one
    series dominates the other over the whole sweep — callers report
    "no crossover" in that case, which is itself a result (e.g. "the
    pre-charged scheme never beats the feedback scheme at any static
    probability").
    """
    if series_a.xs != series_b.xs:
        raise ReproError("crossover_point requires both series to share the same x grid")
    differences = [a - b for a, b in zip(series_a.ys, series_b.ys)]
    for index in range(1, len(differences)):
        previous, current = differences[index - 1], differences[index]
        if previous == 0.0:
            return series_a.xs[index - 1]
        if previous * current < 0:
            x0, x1 = series_a.xs[index - 1], series_a.xs[index]
            fraction = abs(previous) / (abs(previous) + abs(current))
            return x0 + fraction * (x1 - x0)
    if differences and differences[-1] == 0.0:
        return series_a.xs[-1]
    return None
