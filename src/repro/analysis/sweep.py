"""Generic sweep utilities for examples and ablation benchmarks."""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["SweepSeries", "run_sweep", "crossover_point", "crossover_points"]


@dataclass(frozen=True)
class SweepSeries:
    """One named series of (x, y) points."""

    name: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ReproError("a sweep series needs as many y values as x values")
        if not self.xs:
            raise ReproError("a sweep series cannot be empty")
        for label, values in (("x", self.xs), ("y", self.ys)):
            if any(math.isnan(value) for value in values):
                raise ReproError(
                    f"series {self.name!r} contains NaN {label} values"
                )


def run_sweep(name: str, xs: Sequence[float], function: Callable[[float], float]) -> SweepSeries:
    """Evaluate ``function`` at every ``x`` and wrap the result as a series."""
    xs_tuple = tuple(float(x) for x in xs)
    ys = tuple(float(function(x)) for x in xs_tuple)
    return SweepSeries(name=name, xs=xs_tuple, ys=ys)


def crossover_points(series_a: SweepSeries, series_b: SweepSeries) -> tuple[float, ...]:
    """Every x where ``series_a`` and ``series_b`` cross, in ascending grid order.

    Both series must share the same x grid.  Grid points where the two
    series touch exactly count as crossings; sign changes between grid
    points are located by linear interpolation.
    """
    if series_a.xs != series_b.xs:
        raise ReproError("crossover detection requires both series to share the same x grid")
    differences = [a - b for a, b in zip(series_a.ys, series_b.ys)]
    crossings: list[float] = []
    for index, difference in enumerate(differences):
        if difference == 0.0:
            crossings.append(series_a.xs[index])
    for index in range(1, len(differences)):
        previous, current = differences[index - 1], differences[index]
        if previous * current < 0:
            x0, x1 = series_a.xs[index - 1], series_a.xs[index]
            fraction = abs(previous) / (abs(previous) + abs(current))
            crossings.append(x0 + fraction * (x1 - x0))
    return tuple(sorted(crossings))


def crossover_point(series_a: SweepSeries, series_b: SweepSeries) -> float | None:
    """X value of the *unique* crossing of the two series.

    Returns ``None`` when one series dominates the other over the whole
    sweep — callers report "no crossover" in that case, which is itself
    a result (e.g. "the pre-charged scheme never beats the feedback
    scheme at any static probability").  When the series cross more than
    once this raises :class:`~repro.errors.ReproError` rather than
    silently returning the first crossing; use :func:`crossover_points`
    to enumerate them.
    """
    crossings = crossover_points(series_a, series_b)
    if not crossings:
        return None
    if len(crossings) > 1:
        located = ", ".join(f"{x:g}" for x in crossings)
        raise ReproError(
            f"series {series_a.name!r} and {series_b.name!r} cross "
            f"{len(crossings)} times (at x = {located}); use "
            "crossover_points() to enumerate multiple crossings"
        )
    return crossings[0]
