"""Reporting and analysis helpers (DESIGN.md S9)."""

from .figures import (
    OutputPathStructure,
    SegmentationStructure,
    describe_output_path,
    describe_segmentation,
    sweep_table,
)
from .sweep import SweepSeries, crossover_point, crossover_points, run_sweep
from .table import render_table

__all__ = [
    "OutputPathStructure",
    "SegmentationStructure",
    "SweepSeries",
    "crossover_point",
    "crossover_points",
    "describe_output_path",
    "describe_segmentation",
    "render_table",
    "run_sweep",
    "sweep_table",
]
