"""Figure-content extraction.

The paper's three figures are circuit schematics, so "reproducing" them
means reproducing the quantitative content they encode rather than a
drawing: the device inventory and Vt partition of one output path
(Figs. 1 and 2) and the path-1 / path-2 asymmetry of the segmented
designs (Fig. 3).  The helpers here turn a scheme into those summaries;
the figure benchmarks print and sanity-check them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..circuit.devices import DeviceRole
from ..crossbar.base import CrossbarScheme
from ..errors import ConfigurationError, ReproError
from ..technology.transistor import VtFlavor
from .table import render_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..engine.resultset import ResultSet

__all__ = ["OutputPathStructure", "SegmentationStructure", "describe_output_path",
           "describe_segmentation", "sweep_table"]


@dataclass(frozen=True)
class OutputPathStructure:
    """Structural summary of one output path (Figure 1 / Figure 2 content)."""

    scheme: str
    device_count: int
    pass_transistor_count: int
    has_keeper: bool
    has_precharge: bool
    has_sleep: bool
    high_vt_count: int
    nominal_vt_count: int
    high_vt_roles: tuple[str, ...]

    @property
    def high_vt_fraction(self) -> float:
        """Fraction of the path's devices that are high-Vt."""
        if self.device_count == 0:
            return 0.0
        return self.high_vt_count / self.device_count


@dataclass(frozen=True)
class SegmentationStructure:
    """Path-1 / path-2 summary of a segmented scheme (Figure 3 content)."""

    scheme: str
    near_inputs: int
    far_inputs: int
    near_wire_resistance: float
    near_wire_capacitance: float
    far_wire_resistance: float
    far_wire_capacitance: float
    near_path_delay: float
    far_path_delay: float

    @property
    def path_delay_ratio(self) -> float:
        """Far-path (path 2) delay over near-path (path 1) delay; > 1 by design."""
        return self.far_path_delay / self.near_path_delay

    @property
    def near_path_slack_fraction(self) -> float:
        """Fraction of the far-path delay that the near path does not need."""
        return 1.0 - self.near_path_delay / self.far_path_delay


def describe_output_path(scheme: CrossbarScheme) -> OutputPathStructure:
    """Summarise the structure of one output path of ``scheme``."""
    netlist = scheme.output_path_netlist()
    statistics = netlist.statistics()
    high_vt_roles = sorted(
        {
            device.role.value
            for device in netlist.devices
            if device.vt_flavor is VtFlavor.HIGH
        }
    )
    return OutputPathStructure(
        scheme=scheme.name,
        device_count=statistics.device_count,
        pass_transistor_count=statistics.count_by_role.get(DeviceRole.PASS_TRANSISTOR, 0),
        has_keeper=statistics.count_by_role.get(DeviceRole.KEEPER, 0) > 0,
        has_precharge=statistics.count_by_role.get(DeviceRole.PRECHARGE, 0) > 0,
        has_sleep=statistics.count_by_role.get(DeviceRole.SLEEP, 0) > 0,
        high_vt_count=statistics.count_by_flavor.get(VtFlavor.HIGH, 0),
        nominal_vt_count=statistics.count_by_flavor.get(VtFlavor.NOMINAL, 0),
        high_vt_roles=tuple(high_vt_roles),
    )


def sweep_table(results: "ResultSet", schemes: Sequence[str], metric: str,
                axis: str | None = None, title: str | None = None) -> str:
    """Render one metric of a design-space :class:`~repro.engine.ResultSet`
    as a scheme-by-axis-value text table (the design-space "figure").

    The result set must vary only ``axis``: a multi-parameter set must be
    sliced with :meth:`~repro.engine.ResultSet.filter` first, so every
    column of the table is one well-defined design point.  ``axis``
    accepts any spelling the result set resolves — dotted config paths
    (``"crossbar.port_count"``) included.
    """
    if not schemes:
        raise ConfigurationError("sweep_table needs at least one scheme")
    if axis is None:
        if len(results.parameters) != 1:
            raise ConfigurationError(
                f"sweep_table needs an explicit axis when the result set "
                f"varies {results.parameters}"
            )
        axis = results.parameters[0]
    axis = results.resolve_parameter(axis)
    for other in results.parameters:
        if other == axis:
            continue
        values = results.axis_values(other)
        if len(values) > 1:
            raise ConfigurationError(
                f"parameter {other!r} still takes {len(values)} values; "
                f"filter() the result set down to one before tabulating"
            )
    pairs_by_scheme = {
        scheme: results.series(scheme, metric, axis=axis) for scheme in schemes
    }
    axis_values = [value for value, _ in next(iter(pairs_by_scheme.values()))]
    headers = ["scheme"] + [str(value) for value in axis_values]
    rows = [[scheme] + [value for _, value in pairs_by_scheme[scheme]]
            for scheme in schemes]
    return render_table(headers, rows, title=title or f"{metric} vs {axis}")


def describe_segmentation(scheme: CrossbarScheme) -> SegmentationStructure:
    """Summarise the path-1 / path-2 structure of a segmented scheme."""
    if not scheme.features.segmented:
        raise ReproError(f"scheme {scheme.name!r} is not segmented")
    near = scheme.segmented_row.near
    far = scheme.segmented_row.far
    near_stage = scheme._merge_stage(falling=True, far_path=False)
    far_stage = scheme._merge_stage(falling=True, far_path=True)
    return SegmentationStructure(
        scheme=scheme.name,
        near_inputs=scheme.segmentation_plan.inputs_on_near_segment,
        far_inputs=scheme.config.inputs_per_output - scheme.segmentation_plan.inputs_on_near_segment,
        near_wire_resistance=near.resistance,
        near_wire_capacitance=near.capacitance,
        far_wire_resistance=far.resistance,
        far_wire_capacitance=far.capacitance,
        near_path_delay=near_stage.delay(),
        far_path_delay=far_stage.delay(),
    )
