"""Analytical leakage equations used by the device models.

Three leakage mechanisms matter for the paper's designs:

* **Sub-threshold leakage** — the drain-source current of a nominally-off
  transistor.  It is exponential in the gate overdrive with slope given
  by the sub-threshold swing, is amplified by drain-induced barrier
  lowering (DIBL), grows strongly with temperature, and is suppressed by
  stacking off transistors in series (the "stack effect").  Dual-Vt
  design exploits the exponential Vt dependence: raising Vt by 100 mV
  cuts sub-threshold leakage by roughly one decade.
* **Gate (tunnelling) leakage** — current through the thin gate oxide of
  a transistor whose gate-to-source/drain voltage is large.  The DFC
  scheme's sleep transistor exists precisely to collapse the voltage at
  the crossbar merge node so the pass transistors stop gate-leaking.
* **Junction leakage** — reverse-biased drain/source junction current;
  small at 45 nm compared to the other two but included for
  completeness.

The functions in this module are pure and unit-tested in isolation; the
:class:`~repro.technology.transistor.Mosfet` model composes them.
"""

from __future__ import annotations

import math

from ..errors import TechnologyError
from ..units import thermal_voltage

__all__ = [
    "subthreshold_current",
    "gate_leakage_current",
    "junction_leakage_current",
    "stack_factor",
    "temperature_scaled_vt",
]


def temperature_scaled_vt(vt_at_reference: float, temperature: float, reference_temperature: float = 300.0,
                          vt_temperature_coefficient: float = -1.0e-3) -> float:
    """Threshold voltage at ``temperature`` (K).

    Vt falls roughly linearly with temperature; the default coefficient
    of -1 mV/K is typical for bulk CMOS.  The reference temperature is
    the one the nominal Vt is quoted at (300 K).
    """
    if temperature <= 0 or reference_temperature <= 0:
        raise TechnologyError("temperatures must be positive kelvin values")
    return vt_at_reference + vt_temperature_coefficient * (temperature - reference_temperature)


def subthreshold_current(
    width: float,
    i0_per_meter: float,
    vgs: float,
    vds: float,
    vt: float,
    subthreshold_swing: float,
    dibl: float,
    temperature: float = 300.0,
    reference_temperature: float = 300.0,
) -> float:
    """Sub-threshold drain current of a single device (amperes).

    Parameters
    ----------
    width:
        Device width in metres.
    i0_per_meter:
        Characteristic current per metre of width when ``vgs == vt`` and
        ``vds >> kT/q`` at the reference temperature.
    vgs, vds:
        Gate-source and drain-source voltages.  For a PMOS device pass
        the magnitudes (the model is symmetric in sign conventions).
    vt:
        Threshold voltage magnitude at the reference temperature.
    subthreshold_swing:
        Sub-threshold swing in volts per decade (e.g. 0.1 for
        100 mV/decade).
    dibl:
        DIBL coefficient in volts of Vt reduction per volt of Vds.
    temperature, reference_temperature:
        Absolute temperatures in kelvin.  Leakage grows with temperature
        both through the swing (which is proportional to kT/q) and
        through the Vt reduction.

    The expression is the standard BSIM-style weak-inversion model::

        I = I0 * W * 10^((Vgs - Vt + eta*Vds) / S) * (1 - exp(-Vds / vT))

    with the swing ``S`` scaled by ``T / Tref`` and Vt linearly
    de-rated with temperature.
    """
    if width <= 0:
        raise TechnologyError(f"device width must be positive, got {width}")
    if i0_per_meter < 0:
        raise TechnologyError("characteristic current must be non-negative")
    if subthreshold_swing <= 0:
        raise TechnologyError("subthreshold swing must be positive")
    if vds < 0:
        raise TechnologyError("pass vds as a magnitude (non-negative)")
    if vds == 0:
        return 0.0
    vt_eff = temperature_scaled_vt(vt, temperature, reference_temperature)
    swing = subthreshold_swing * (temperature / reference_temperature)
    v_thermal = thermal_voltage(temperature)
    overdrive = vgs - vt_eff + dibl * vds
    current = i0_per_meter * width * math.pow(10.0, overdrive / swing)
    current *= 1.0 - math.exp(-vds / v_thermal)
    return max(current, 0.0)


def gate_leakage_current(
    width: float,
    length: float,
    gate_current_density: float,
    gate_voltage: float,
    supply_voltage: float,
    voltage_exponent: float = 3.0,
) -> float:
    """Gate tunnelling current of a device (amperes).

    ``gate_current_density`` is the tunnelling current per unit gate area
    (A/m^2) when the full supply voltage appears across the oxide.  The
    super-linear voltage dependence of direct tunnelling is captured by a
    power law in ``gate_voltage / supply_voltage``; the default cubic
    exponent matches the steep reduction observed when the oxide voltage
    is halved, which is what makes the DFC sleep transistor effective.
    """
    if width <= 0 or length <= 0:
        raise TechnologyError("device width and length must be positive")
    if gate_current_density < 0:
        raise TechnologyError("gate current density must be non-negative")
    if supply_voltage <= 0:
        raise TechnologyError("supply voltage must be positive")
    if voltage_exponent <= 0:
        raise TechnologyError("voltage exponent must be positive")
    magnitude = abs(gate_voltage)
    if magnitude == 0:
        return 0.0
    ratio = min(magnitude / supply_voltage, 1.5)
    return gate_current_density * width * length * ratio**voltage_exponent


def junction_leakage_current(width: float, junction_current_per_meter: float, vds: float,
                             supply_voltage: float) -> float:
    """Reverse-bias junction leakage of the drain diffusion (amperes).

    Modelled as proportional to the drain diffusion width and the
    fraction of the supply appearing across the junction.  The magnitude
    is small (a few percent of sub-threshold leakage at 45 nm) but kept
    so total-leakage roll-ups are not systematically optimistic.
    """
    if width <= 0:
        raise TechnologyError("device width must be positive")
    if junction_current_per_meter < 0:
        raise TechnologyError("junction current must be non-negative")
    if supply_voltage <= 0:
        raise TechnologyError("supply voltage must be positive")
    return junction_current_per_meter * width * max(vds, 0.0) / supply_voltage


def stack_factor(number_off_in_series: int, base_factor: float = 0.2) -> float:
    """Leakage reduction factor for ``n`` series-connected off devices.

    Two off transistors in series leak roughly 5-10x less than a single
    off transistor because the intermediate node floats to a small
    positive voltage, producing a negative Vgs on the upper device and
    reducing its Vds (less DIBL).  We model the classic empirical rule:
    each additional off device multiplies leakage by ``base_factor``
    (default 0.2, i.e. a 5x reduction per extra device).

    ``number_off_in_series`` counts the off devices in the pull-down (or
    pull-up) path; 0 means the path conducts and the function returns
    0.0 because a conducting path has no sub-threshold leakage of its
    own (the opposite network leaks instead).
    """
    if number_off_in_series < 0:
        raise TechnologyError("number of off devices cannot be negative")
    if not 0.0 < base_factor <= 1.0:
        raise TechnologyError("stack base factor must be in (0, 1]")
    if number_off_in_series == 0:
        return 0.0
    return base_factor ** (number_off_in_series - 1)
