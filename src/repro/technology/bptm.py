"""Predictive wire resistance/capacitance model (BPTM-style).

The paper predicts interconnect resistance and capacitance with the
Berkeley Predictive Technology Model.  BPTM's interconnect component is
a set of closed-form expressions that map wire geometry (width, spacing,
thickness, dielectric height, dielectric constant) to per-unit-length
resistance, ground capacitance and coupling capacitance.  This module
implements those expressions so that any :class:`~repro.technology.itrs.WireGeometry`
can be converted into electrical per-unit-length parameters.

The capacitance expressions are the widely used empirical fits (the same
family of formulas the BPTM interconnect page is based on):

* ground capacitance of a wire over a plane with neighbours on both
  sides, and
* coupling capacitance between two parallel wires on the same layer,

both accurate to a few percent against field solvers over the geometry
range of deep-submicron metal stacks.  Resistance uses the standard
``rho * L / (W * T)`` sheet model with the effective (barrier-inclusive)
resistivity carried by the geometry description.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TechnologyError
from ..units import VACUUM_PERMITTIVITY
from .itrs import WireGeometry

__all__ = ["WireElectricalModel", "wire_resistance_per_meter", "wire_capacitance_per_meter"]


def wire_resistance_per_meter(geometry: WireGeometry) -> float:
    """Per-unit-length resistance (ohm / m) of a wire with ``geometry``."""
    cross_section = geometry.width * geometry.thickness
    if cross_section <= 0:
        raise TechnologyError("wire cross-section must be positive")
    return geometry.resistivity / cross_section


def _ground_capacitance_per_meter(geometry: WireGeometry) -> float:
    """Per-unit-length capacitance to the plane below (F / m).

    Empirical fit for a wire of width ``w``, thickness ``t`` at height
    ``h`` above a ground plane with same-layer neighbours at spacing
    ``s``::

        Cg = eps * [ w/h + 2.04 * (s / (s + 0.54 h))^1.77
                          * (t / (t + 4.53 h))^0.07 ]
    """
    eps = geometry.dielectric_constant * VACUUM_PERMITTIVITY
    w = geometry.width
    s = geometry.spacing
    t = geometry.thickness
    h = geometry.height_above_plane
    parallel_plate = w / h
    fringe = 2.04 * (s / (s + 0.54 * h)) ** 1.77 * (t / (t + 4.53 * h)) ** 0.07
    return eps * (parallel_plate + fringe)


def _coupling_capacitance_per_meter(geometry: WireGeometry) -> float:
    """Per-unit-length capacitance to one same-layer neighbour (F / m).

    Empirical fit::

        Cc = eps * [ 1.14 * (t/s) * (h / (h + 2.06 s))^0.09
                     + 0.74 * (w / (w + 1.59 s))^1.14
                     + 1.16 * (w / (w + 1.87 s))^0.16
                            * (h / (h + 0.98 s))^1.18 ]
    """
    eps = geometry.dielectric_constant * VACUUM_PERMITTIVITY
    w = geometry.width
    s = geometry.spacing
    t = geometry.thickness
    h = geometry.height_above_plane
    term1 = 1.14 * (t / s) * (h / (h + 2.06 * s)) ** 0.09
    term2 = 0.74 * (w / (w + 1.59 * s)) ** 1.14
    term3 = 1.16 * (w / (w + 1.87 * s)) ** 0.16 * (h / (h + 0.98 * s)) ** 1.18
    return eps * (term1 + term2 + term3)


def wire_capacitance_per_meter(geometry: WireGeometry, neighbours: int = 2) -> float:
    """Total per-unit-length capacitance (F / m).

    ``neighbours`` is the number of same-layer aggressor wires (0, 1 or
    2); a datapath bus wire normally sees two.  The total is the ground
    component (top + bottom planes are folded into the single ground
    term, as in the source fit) plus one coupling component per
    neighbour.
    """
    if neighbours not in (0, 1, 2):
        raise TechnologyError(f"neighbours must be 0, 1 or 2, got {neighbours}")
    cg = _ground_capacitance_per_meter(geometry)
    cc = _coupling_capacitance_per_meter(geometry)
    return cg + neighbours * cc


@dataclass(frozen=True)
class WireElectricalModel:
    """Electrical view of a wire layer: R, Cg and Cc per unit length.

    Instances are cheap value objects; build one per layer with
    :meth:`from_geometry` and reuse it for every wire on that layer.
    """

    resistance_per_meter: float
    ground_capacitance_per_meter: float
    coupling_capacitance_per_meter: float

    def __post_init__(self) -> None:
        if self.resistance_per_meter <= 0:
            raise TechnologyError("resistance per meter must be positive")
        if self.ground_capacitance_per_meter <= 0:
            raise TechnologyError("ground capacitance per meter must be positive")
        if self.coupling_capacitance_per_meter < 0:
            raise TechnologyError("coupling capacitance per meter must be non-negative")

    @classmethod
    def from_geometry(cls, geometry: WireGeometry) -> "WireElectricalModel":
        """Derive the electrical model from a physical geometry."""
        return cls(
            resistance_per_meter=wire_resistance_per_meter(geometry),
            ground_capacitance_per_meter=_ground_capacitance_per_meter(geometry),
            coupling_capacitance_per_meter=_coupling_capacitance_per_meter(geometry),
        )

    def total_capacitance_per_meter(self, neighbours: int = 2, switching_factor: float = 1.0) -> float:
        """Total capacitance per metre seen by a switching wire.

        ``switching_factor`` is the Miller factor applied to the coupling
        component (1.0 for quiet neighbours, 2.0 for opposite-phase
        neighbours, 0.0 for in-phase neighbours).
        """
        if neighbours not in (0, 1, 2):
            raise TechnologyError(f"neighbours must be 0, 1 or 2, got {neighbours}")
        if switching_factor < 0:
            raise TechnologyError("switching factor must be non-negative")
        return (
            self.ground_capacitance_per_meter
            + neighbours * switching_factor * self.coupling_capacitance_per_meter
        )

    def resistance(self, length: float) -> float:
        """Total resistance of a wire of ``length`` metres."""
        if length < 0:
            raise TechnologyError(f"wire length must be non-negative, got {length}")
        return self.resistance_per_meter * length

    def capacitance(self, length: float, neighbours: int = 2, switching_factor: float = 1.0) -> float:
        """Total capacitance of a wire of ``length`` metres."""
        if length < 0:
            raise TechnologyError(f"wire length must be non-negative, got {length}")
        return self.total_capacitance_per_meter(neighbours, switching_factor) * length
