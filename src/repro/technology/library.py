"""The :class:`TechnologyLibrary`: one object bundling everything the
circuit, timing and power layers need to know about the process.

A library combines:

* an ITRS roadmap node (geometry, supply, clock target),
* an operating condition (Vdd, junction temperature),
* a process corner,
* one :class:`~repro.technology.transistor.MosfetParameters` per
  (polarity, Vt flavor) pair, and
* per-layer :class:`~repro.technology.bptm.WireElectricalModel` objects.

The :func:`default_45nm` factory builds the configuration the paper
evaluates (45 nm, 1.0 V, 3 GHz).  Device constants follow predictive
45 nm-class values; the docstring of each constant in ``_DEVICE_TABLE``
explains its provenance.  Everything is overridable — the calibration
study in ``examples/design_space_exploration.py`` sweeps several of
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TechnologyError
from ..units import MICRO
from .bptm import WireElectricalModel
from .corners import OperatingCondition, ProcessCorner, get_corner
from .itrs import ItrsNode, get_node
from .transistor import Mosfet, MosfetParameters, Polarity, VtFlavor

__all__ = ["TechnologyLibrary", "default_45nm", "default_library_for_node"]


def _device_table_for_node(node: ItrsNode) -> dict[tuple[Polarity, VtFlavor], MosfetParameters]:
    """Build the per-flavor device parameter sets for a roadmap node.

    The constants below are representative of predictive technology
    models for the 45 nm class and scale mildly with the node feature
    size:

    * nominal NMOS Vt 0.22 V, high-Vt +150 mV, low-Vt -60 mV;
    * 100 mV/decade sub-threshold swing, DIBL 0.15 V/V;
    * characteristic sub-threshold current chosen to match the
      *2004-era predictive* 45 nm leakage levels the paper worked from
      (BPTM 45 nm forecast roughly 1 uA/um of off-current at room
      temperature, an order of magnitude above what manufactured 45 nm
      processes eventually delivered) — this is what makes leakage a
      first-order term of the crossbar power budget, as it is in the
      paper's Table 1;
    * gate tunnelling density representative of the thin SiON oxides
      assumed by the same forecasts (~hundreds of nA/um at full oxide
      voltage), the regime in which the DFC sleep transistor pays off;
    * ~1.5 mA/um-class NMOS drive via the alpha-power law (alpha = 1.3),
      PMOS at roughly half;
    * ~1 fF/um gate capacitance, 0.8 fF/um diffusion capacitance.
    """
    length = node.feature_size
    # Scale drive and capacitance gently with feature size relative to 45 nm.
    scale = 45e-9 / node.feature_size

    def params(polarity: Polarity, flavor: VtFlavor, vt: float) -> MosfetParameters:
        is_nmos = polarity is Polarity.NMOS
        return MosfetParameters(
            polarity=polarity,
            vt_flavor=flavor,
            threshold_voltage=vt,
            channel_length=length,
            subthreshold_swing=0.100,
            dibl=0.15,
            i0_per_meter=(7.5 if is_nmos else 3.75) * scale,
            gate_current_density=(2.0e6 if is_nmos else 4.0e5) * scale,
            junction_current_per_meter=1.0e-3,
            drive_k_per_meter=(1.5e3 if is_nmos else 0.75e3) * scale,
            alpha=1.3,
            gate_capacitance_per_meter=1.0e-9,
            diffusion_capacitance_per_meter=0.8e-9,
        )

    nominal_vt = 0.22
    high_vt = nominal_vt + 0.15
    low_vt = nominal_vt - 0.06
    table: dict[tuple[Polarity, VtFlavor], MosfetParameters] = {}
    for polarity in Polarity:
        table[(polarity, VtFlavor.NOMINAL)] = params(polarity, VtFlavor.NOMINAL, nominal_vt)
        table[(polarity, VtFlavor.HIGH)] = params(polarity, VtFlavor.HIGH, high_vt)
        table[(polarity, VtFlavor.LOW)] = params(polarity, VtFlavor.LOW, low_vt)
    return table


@dataclass
class TechnologyLibrary:
    """Process + operating point bundle consumed by all higher layers."""

    node: ItrsNode
    operating_condition: OperatingCondition
    corner: ProcessCorner
    devices: dict[tuple[Polarity, VtFlavor], MosfetParameters]
    clock_frequency: float
    wire_models: dict[str, WireElectricalModel] = field(default_factory=dict)
    #: The per-library memoised leakage evaluator, attached lazily by
    #: :func:`repro.circuit.biasing.kernel_for` (typed loosely because
    #: the circuit layer sits above this one).  Excluded from equality:
    #: a memo is bookkeeping, not part of the technology point.
    leakage_kernel: object | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.clock_frequency <= 0:
            raise TechnologyError("clock frequency must be positive")
        if not self.devices:
            raise TechnologyError("a technology library requires at least one device type")
        if not self.wire_models:
            self.wire_models = {
                layer: WireElectricalModel.from_geometry(geometry)
                for layer, geometry in self.node.wires.items()
            }
        # Shared-device memo: every (polarity, flavor, width) triple this
        # library has sized before returns the *same* Mosfet object, so
        # per-device leakage memos hit across call sites (the NoC buffer
        # model sizes the same bit cell on every evaluation).
        self._transistor_memo: dict[tuple[Polarity, VtFlavor, float], Mosfet] = {}

    # -- device access -------------------------------------------------------
    def device_parameters(self, polarity: Polarity, flavor: VtFlavor) -> MosfetParameters:
        """Corner-adjusted parameters for a device type."""
        try:
            base = self.devices[(polarity, flavor)]
        except KeyError as exc:
            raise TechnologyError(
                f"no device parameters for ({polarity.value}, {flavor.value})"
            ) from exc
        return self.corner.apply(base)

    def make_transistor(self, polarity: Polarity, flavor: VtFlavor, width: float) -> Mosfet:
        """The sized transistor at this library's operating point.

        Memoised per ``(polarity, flavor, width)``: repeated sizings
        return the same shared :class:`Mosfet` (callers never mutate
        devices), which is what lets bias-point memos keyed on device
        identity hit across schemes and the NoC layer.
        """
        key = (polarity, flavor, width)
        device = self._transistor_memo.get(key)
        if device is None:
            device = Mosfet(
                parameters=self.device_parameters(polarity, flavor),
                width=width,
                supply_voltage=self.supply_voltage,
                temperature=self.operating_condition.temperature_kelvin,
            )
            self._transistor_memo[key] = device
        return device

    # -- wires ----------------------------------------------------------------
    def wire_model(self, layer: str = "intermediate") -> WireElectricalModel:
        """Electrical per-unit-length model of an interconnect layer."""
        try:
            return self.wire_models[layer]
        except KeyError as exc:
            known = ", ".join(sorted(self.wire_models))
            raise TechnologyError(f"unknown wire layer {layer!r}; known layers: {known}") from exc

    # -- convenience -----------------------------------------------------------
    @property
    def supply_voltage(self) -> float:
        """Operating supply voltage in volts."""
        return self.operating_condition.supply_voltage

    @property
    def temperature_kelvin(self) -> float:
        """Junction temperature in kelvin."""
        return self.operating_condition.temperature_kelvin

    @property
    def clock_period(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_frequency

    @property
    def minimum_width(self) -> float:
        """Minimum drawn transistor width (two feature sizes)."""
        return 2.0 * self.node.feature_size

    def with_corner(self, corner_name: str) -> "TechnologyLibrary":
        """Return a copy of this library at a different process corner."""
        return TechnologyLibrary(
            node=self.node,
            operating_condition=self.operating_condition,
            corner=get_corner(corner_name),
            devices=dict(self.devices),
            clock_frequency=self.clock_frequency,
            wire_models=dict(self.wire_models),
        )

    def with_temperature(self, temperature_celsius: float) -> "TechnologyLibrary":
        """Return a copy of this library at a different junction temperature."""
        return TechnologyLibrary(
            node=self.node,
            operating_condition=OperatingCondition(
                supply_voltage=self.operating_condition.supply_voltage,
                temperature_celsius=temperature_celsius,
            ),
            corner=self.corner,
            devices=dict(self.devices),
            clock_frequency=self.clock_frequency,
            wire_models=dict(self.wire_models),
        )


def default_library_for_node(
    node_name: str,
    temperature_celsius: float = 110.0,
    corner: str = "TT",
    clock_frequency: float | None = None,
) -> TechnologyLibrary:
    """Build the default library for any bundled roadmap node.

    The default junction temperature of 110 C reflects an active
    high-performance die, where leakage is a first-order concern (which
    is the regime the paper addresses); tests that need the cold-chip
    values pass 25 C explicitly.
    """
    node = get_node(node_name)
    condition = OperatingCondition(
        supply_voltage=node.supply_voltage, temperature_celsius=temperature_celsius
    )
    return TechnologyLibrary(
        node=node,
        operating_condition=condition,
        corner=get_corner(corner),
        devices=_device_table_for_node(node),
        clock_frequency=clock_frequency if clock_frequency is not None else node.nominal_clock_hz,
    )


def default_45nm(
    temperature_celsius: float = 110.0,
    corner: str = "TT",
    clock_frequency: float = 3.0e9,
) -> TechnologyLibrary:
    """The paper's technology point: 45 nm, 1.0 V, 3 GHz."""
    return default_library_for_node(
        "45nm",
        temperature_celsius=temperature_celsius,
        corner=corner,
        clock_frequency=clock_frequency,
    )


#: A convenient reference width (one micron) used by sizing helpers.
REFERENCE_WIDTH = 1.0 * MICRO
