"""Process corners and operating conditions.

Leakage is extremely sensitive to process and temperature: the fast
corner of a 45 nm process can leak an order of magnitude more than the
slow corner, and a 125 C junction temperature multiplies sub-threshold
leakage several-fold relative to 25 C.  The paper reports typical-corner
numbers; the corner machinery here exists so the design-space exploration
example (and downstream users) can ask "does the scheme ordering survive
at the fast/hot corner?", which is the question a signoff flow would ask.

A corner is expressed as multiplicative adjustments applied to a
:class:`~repro.technology.transistor.MosfetParameters` instance plus an
operating condition (supply voltage, temperature).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import TechnologyError
from ..units import celsius_to_kelvin
from .transistor import MosfetParameters

__all__ = ["ProcessCorner", "OperatingCondition", "STANDARD_CORNERS", "get_corner"]


@dataclass(frozen=True)
class ProcessCorner:
    """Multiplicative process adjustments relative to the typical corner.

    Attributes
    ----------
    name:
        Conventional corner name (``TT``, ``FF``, ``SS``, ``FS``, ``SF``).
    vt_shift:
        Additive threshold-voltage shift in volts (negative = faster and
        leakier).
    drive_scale:
        Multiplier on the drive-current coefficient.
    leakage_scale:
        Extra multiplier on the characteristic sub-threshold current,
        capturing channel-length and oxide-thickness variation beyond
        the Vt shift.
    """

    name: str
    vt_shift: float = 0.0
    drive_scale: float = 1.0
    leakage_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.drive_scale <= 0:
            raise TechnologyError("drive scale must be positive")
        if self.leakage_scale <= 0:
            raise TechnologyError("leakage scale must be positive")

    def apply(self, parameters: MosfetParameters) -> MosfetParameters:
        """Return corner-adjusted device parameters."""
        new_vt = parameters.threshold_voltage + self.vt_shift
        if new_vt <= 0:
            raise TechnologyError(
                f"corner {self.name} drives threshold voltage non-positive ({new_vt:.3f} V)"
            )
        return replace(
            parameters,
            threshold_voltage=new_vt,
            drive_k_per_meter=parameters.drive_k_per_meter * self.drive_scale,
            i0_per_meter=parameters.i0_per_meter * self.leakage_scale,
        )


@dataclass(frozen=True)
class OperatingCondition:
    """Supply voltage and junction temperature for an analysis.

    ``temperature_celsius`` is stored as given; :attr:`temperature_kelvin`
    is what the device models consume.
    """

    supply_voltage: float
    temperature_celsius: float

    def __post_init__(self) -> None:
        if self.supply_voltage <= 0:
            raise TechnologyError("supply voltage must be positive")
        celsius_to_kelvin(self.temperature_celsius)  # validates range

    @property
    def temperature_kelvin(self) -> float:
        """Junction temperature in kelvin."""
        return celsius_to_kelvin(self.temperature_celsius)


#: The standard five corners with representative 45 nm-class shifts.
STANDARD_CORNERS: dict[str, ProcessCorner] = {
    "TT": ProcessCorner("TT"),
    "FF": ProcessCorner("FF", vt_shift=-0.04, drive_scale=1.12, leakage_scale=2.0),
    "SS": ProcessCorner("SS", vt_shift=+0.04, drive_scale=0.88, leakage_scale=0.5),
    "FS": ProcessCorner("FS", vt_shift=-0.02, drive_scale=1.05, leakage_scale=1.4),
    "SF": ProcessCorner("SF", vt_shift=+0.02, drive_scale=0.95, leakage_scale=0.7),
}


def get_corner(name: str) -> ProcessCorner:
    """Look up a standard corner by name, raising for unknown names."""
    try:
        return STANDARD_CORNERS[name.upper()]
    except KeyError as exc:
        known = ", ".join(sorted(STANDARD_CORNERS))
        raise TechnologyError(f"unknown process corner {name!r}; known corners: {known}") from exc
