"""ITRS-style interconnect and device roadmap tables.

The paper derives its wire geometry ("wire pitch, space, aspect ratio and
dielectric material parameters") from the International Technology
Roadmap for Semiconductors (ITRS) and its device/wire electrical models
from the Berkeley Predictive Technology Model (BPTM).  The original ITRS
spreadsheets cannot be bundled here, so this module encodes the
*functional content* the paper needs: per-node interconnect geometry and
nominal supply/clock figures, with representative values that follow the
published roadmap scaling trend (each value is documented below and can
be overridden by constructing :class:`ItrsNode` directly).

Only the 45 nm entry is used by the headline reproduction (the paper's
experiments are at 45 nm); the neighbouring nodes are provided so that
the design-space exploration examples can sweep across technology
generations, mirroring how the roadmap is normally consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TechnologyError
from ..units import NANO

__all__ = ["WireGeometry", "ItrsNode", "ITRS_NODES", "get_node", "available_nodes"]


@dataclass(frozen=True)
class WireGeometry:
    """Geometry of a single interconnect layer class.

    All dimensions are in metres.  ``layer`` follows the ITRS naming
    convention: ``local`` (metal-1-like), ``intermediate`` (the layers a
    crossbar or router datapath is routed on) and ``global`` (top-level,
    thick and wide wires).

    Attributes
    ----------
    layer:
        Layer class name.
    width:
        Drawn wire width.
    spacing:
        Edge-to-edge spacing to the neighbouring wire on the same layer.
    thickness:
        Metal thickness; the aspect ratio is ``thickness / width``.
    height_above_plane:
        Dielectric height between the bottom of the wire and the ground
        plane below (ILD thickness).
    dielectric_constant:
        Relative permittivity of the surrounding inter-layer dielectric.
    resistivity:
        Effective conductor resistivity in ohm-metres, *including* the
        barrier/liner and surface-scattering penalty, which is why the
        value exceeds bulk copper (1.68e-8).
    """

    layer: str
    width: float
    spacing: float
    thickness: float
    height_above_plane: float
    dielectric_constant: float
    resistivity: float

    def __post_init__(self) -> None:
        for name in ("width", "spacing", "thickness", "height_above_plane"):
            value = getattr(self, name)
            if value <= 0:
                raise TechnologyError(f"wire geometry {name} must be positive, got {value}")
        if self.dielectric_constant < 1.0:
            raise TechnologyError(
                f"dielectric constant below vacuum ({self.dielectric_constant}) is unphysical"
            )
        if self.resistivity <= 0:
            raise TechnologyError(f"resistivity must be positive, got {self.resistivity}")

    @property
    def pitch(self) -> float:
        """Wire pitch (width + spacing) in metres."""
        return self.width + self.spacing

    @property
    def aspect_ratio(self) -> float:
        """Metal aspect ratio (thickness over width)."""
        return self.thickness / self.width


@dataclass(frozen=True)
class ItrsNode:
    """One technology-node row of the roadmap.

    Attributes
    ----------
    name:
        Human-readable node name, e.g. ``"45nm"``.
    feature_size:
        Nominal half-pitch / printed gate length in metres.
    supply_voltage:
        Nominal Vdd in volts.
    nominal_clock_hz:
        The on-chip clock target the roadmap projects for the node.  The
        paper evaluates at 3 GHz, matching the 45 nm projection.
    wires:
        Mapping of layer class name to :class:`WireGeometry`.
    """

    name: str
    feature_size: float
    supply_voltage: float
    nominal_clock_hz: float
    wires: dict[str, WireGeometry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.feature_size <= 0:
            raise TechnologyError(f"feature size must be positive, got {self.feature_size}")
        if self.supply_voltage <= 0:
            raise TechnologyError(f"supply voltage must be positive, got {self.supply_voltage}")
        if self.nominal_clock_hz <= 0:
            raise TechnologyError(f"clock must be positive, got {self.nominal_clock_hz}")
        if not self.wires:
            raise TechnologyError(f"node {self.name} defines no wire layers")

    def wire_layer(self, layer: str) -> WireGeometry:
        """Return the geometry of ``layer``, raising for unknown layers."""
        try:
            return self.wires[layer]
        except KeyError as exc:
            known = ", ".join(sorted(self.wires))
            raise TechnologyError(f"unknown wire layer {layer!r}; known layers: {known}") from exc


def _node(
    name: str,
    feature_nm: float,
    vdd: float,
    clock_ghz: float,
    layers: dict[str, tuple[float, float, float, float, float, float]],
) -> ItrsNode:
    """Build an :class:`ItrsNode` from nanometre-denominated layer tuples.

    Each layer tuple is ``(width_nm, spacing_nm, thickness_nm,
    height_nm, k, resistivity_ohm_m)``.
    """
    wires = {
        layer: WireGeometry(
            layer=layer,
            width=width * NANO,
            spacing=spacing * NANO,
            thickness=thickness * NANO,
            height_above_plane=height * NANO,
            dielectric_constant=k,
            resistivity=rho,
        )
        for layer, (width, spacing, thickness, height, k, rho) in layers.items()
    }
    return ItrsNode(
        name=name,
        feature_size=feature_nm * NANO,
        supply_voltage=vdd,
        nominal_clock_hz=clock_ghz * 1e9,
        wires=wires,
    )


#: Representative roadmap rows.  The trend follows the published ITRS
#: scaling: pitches scale roughly with the node, aspect ratios grow
#: slowly, the effective dielectric constant drops as low-k materials
#: are introduced and the effective resistivity rises as barriers take a
#: larger share of the cross-section.
ITRS_NODES: dict[str, ItrsNode] = {
    "90nm": _node(
        "90nm",
        90,
        1.2,
        2.0,
        {
            "local": (107, 107, 180, 200, 3.3, 2.5e-8),
            "intermediate": (140, 140, 252, 270, 3.3, 2.4e-8),
            "global": (210, 210, 420, 400, 3.3, 2.3e-8),
        },
    ),
    "65nm": _node(
        "65nm",
        65,
        1.1,
        2.5,
        {
            "local": (76, 76, 136, 150, 3.0, 2.7e-8),
            "intermediate": (100, 100, 190, 200, 3.0, 2.6e-8),
            "global": (150, 150, 315, 300, 3.0, 2.4e-8),
        },
    ),
    "45nm": _node(
        "45nm",
        45,
        1.0,
        3.0,
        {
            "local": (54, 54, 102, 110, 2.7, 3.0e-8),
            "intermediate": (70, 70, 140, 150, 2.7, 2.8e-8),
            "global": (105, 105, 230, 220, 2.7, 2.5e-8),
        },
    ),
    "32nm": _node(
        "32nm",
        32,
        0.9,
        3.5,
        {
            "local": (38, 38, 76, 80, 2.5, 3.6e-8),
            "intermediate": (50, 50, 100, 110, 2.5, 3.3e-8),
            "global": (75, 75, 170, 160, 2.5, 2.9e-8),
        },
    ),
}


def available_nodes() -> list[str]:
    """Return the names of the roadmap nodes bundled with the library."""
    return sorted(ITRS_NODES, key=lambda name: -ITRS_NODES[name].feature_size)


def get_node(name: str) -> ItrsNode:
    """Look up a roadmap node by name (e.g. ``"45nm"``).

    Raises :class:`~repro.errors.TechnologyError` for unknown nodes so
    that a typo in an experiment configuration fails loudly rather than
    silently falling back to a default.
    """
    try:
        return ITRS_NODES[name]
    except KeyError as exc:
        known = ", ".join(available_nodes())
        raise TechnologyError(f"unknown technology node {name!r}; known nodes: {known}") from exc
