"""Technology substrate: roadmap geometry, predictive wire RC and MOSFET models.

This package is the reproduction of the paper's technology inputs
(ITRS interconnect parameters + Berkeley Predictive Technology Model);
see ``DESIGN.md`` S1 for the substitution notes.
"""

from .bptm import WireElectricalModel, wire_capacitance_per_meter, wire_resistance_per_meter
from .corners import STANDARD_CORNERS, OperatingCondition, ProcessCorner, get_corner
from .itrs import ITRS_NODES, ItrsNode, WireGeometry, available_nodes, get_node
from .leakage_model import (
    gate_leakage_current,
    junction_leakage_current,
    stack_factor,
    subthreshold_current,
    temperature_scaled_vt,
)
from .library import TechnologyLibrary, default_45nm, default_library_for_node
from .transistor import Mosfet, MosfetParameters, Polarity, VtFlavor

__all__ = [
    "ITRS_NODES",
    "ItrsNode",
    "Mosfet",
    "MosfetParameters",
    "OperatingCondition",
    "Polarity",
    "ProcessCorner",
    "STANDARD_CORNERS",
    "TechnologyLibrary",
    "VtFlavor",
    "WireElectricalModel",
    "WireGeometry",
    "available_nodes",
    "default_45nm",
    "default_library_for_node",
    "gate_leakage_current",
    "get_corner",
    "get_node",
    "junction_leakage_current",
    "stack_factor",
    "subthreshold_current",
    "temperature_scaled_vt",
    "wire_capacitance_per_meter",
    "wire_resistance_per_meter",
]
