"""MOSFET electrical model with dual-Vt support.

Every transistor instantiated by the crossbar generators references one
of the parameter sets defined here (NMOS/PMOS x nominal/high/low Vt).
The model provides exactly the quantities the reproduction needs:

* off-state sub-threshold current (leakage),
* gate tunnelling current (leakage),
* junction leakage,
* saturation drive current and an effective switching resistance
  (delay), using the alpha-power law,
* gate and diffusion capacitances (delay and dynamic energy).

The default 45 nm-class parameter values are representative of published
predictive models: a ~100 nA/um off-current for nominal-Vt NMOS at 300 K,
roughly one decade lower for high-Vt devices, ~1 fF/um of gate
capacitance and ~1 mA/um of NMOS drive.  They are deliberately exposed
as plain dataclass fields so experiments can re-calibrate them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import TechnologyError
from . import leakage_model

__all__ = ["Polarity", "VtFlavor", "MosfetParameters", "Mosfet"]


class Polarity(enum.Enum):
    """Channel polarity of a MOSFET."""

    NMOS = "nmos"
    PMOS = "pmos"


class VtFlavor(enum.Enum):
    """Threshold-voltage flavor in a multi-Vt process.

    The paper's schemes use ``NOMINAL`` and ``HIGH``; ``LOW`` is included
    because the design-space exploration example sweeps it.
    """

    NOMINAL = "nominal"
    HIGH = "high"
    LOW = "low"


@dataclass(frozen=True)
class MosfetParameters:
    """Process parameters for one (polarity, Vt flavor) device type.

    All linear densities are per metre of drawn width; areas are in
    square metres; voltages in volts; currents in amperes.
    """

    polarity: Polarity
    vt_flavor: VtFlavor
    threshold_voltage: float
    channel_length: float
    subthreshold_swing: float
    dibl: float
    i0_per_meter: float
    gate_current_density: float
    junction_current_per_meter: float
    drive_k_per_meter: float
    alpha: float
    gate_capacitance_per_meter: float
    diffusion_capacitance_per_meter: float

    def __post_init__(self) -> None:
        if self.threshold_voltage <= 0:
            raise TechnologyError("threshold voltage must be positive")
        if self.channel_length <= 0:
            raise TechnologyError("channel length must be positive")
        if self.subthreshold_swing <= 0:
            raise TechnologyError("subthreshold swing must be positive")
        if self.dibl < 0:
            raise TechnologyError("DIBL coefficient must be non-negative")
        if self.alpha < 1.0 or self.alpha > 2.0:
            raise TechnologyError("alpha-power exponent expected in [1, 2]")
        for name in (
            "i0_per_meter",
            "gate_current_density",
            "junction_current_per_meter",
            "drive_k_per_meter",
            "gate_capacitance_per_meter",
            "diffusion_capacitance_per_meter",
        ):
            if getattr(self, name) < 0:
                raise TechnologyError(f"{name} must be non-negative")

    def with_threshold(self, threshold_voltage: float) -> "MosfetParameters":
        """Return a copy with a different threshold voltage."""
        return replace(self, threshold_voltage=threshold_voltage)


class Mosfet:
    """A sized transistor bound to a parameter set and supply voltage.

    This is the electrical model only; the structural/netlist view lives
    in :mod:`repro.circuit.devices`.  Widths are in metres.
    """

    def __init__(self, parameters: MosfetParameters, width: float, supply_voltage: float,
                 temperature: float = 300.0) -> None:
        if width <= 0:
            raise TechnologyError(f"transistor width must be positive, got {width}")
        if supply_voltage <= 0:
            raise TechnologyError("supply voltage must be positive")
        if temperature <= 0:
            raise TechnologyError("temperature must be positive kelvin")
        if parameters.threshold_voltage >= supply_voltage:
            raise TechnologyError(
                "threshold voltage must be below the supply voltage "
                f"({parameters.threshold_voltage} >= {supply_voltage})"
            )
        self.parameters = parameters
        self.width = width
        self.supply_voltage = supply_voltage
        self.temperature = temperature

    # -- leakage -----------------------------------------------------------
    def subthreshold_current(self, vgs: float = 0.0, vds: float | None = None) -> float:
        """Sub-threshold current for the given bias (magnitudes, amperes)."""
        if vds is None:
            vds = self.supply_voltage
        return leakage_model.subthreshold_current(
            width=self.width,
            i0_per_meter=self.parameters.i0_per_meter,
            vgs=vgs,
            vds=vds,
            vt=self.parameters.threshold_voltage,
            subthreshold_swing=self.parameters.subthreshold_swing,
            dibl=self.parameters.dibl,
            temperature=self.temperature,
        )

    def off_current(self, vds: float | None = None) -> float:
        """Sub-threshold current with the gate fully off (Vgs = 0)."""
        return self.subthreshold_current(vgs=0.0, vds=vds)

    def gate_leakage(self, gate_voltage: float | None = None) -> float:
        """Gate tunnelling current for the given oxide voltage (amperes)."""
        if gate_voltage is None:
            gate_voltage = self.supply_voltage
        return leakage_model.gate_leakage_current(
            width=self.width,
            length=self.parameters.channel_length,
            gate_current_density=self.parameters.gate_current_density,
            gate_voltage=gate_voltage,
            supply_voltage=self.supply_voltage,
        )

    def junction_leakage(self, vds: float | None = None) -> float:
        """Drain junction leakage (amperes)."""
        if vds is None:
            vds = self.supply_voltage
        return leakage_model.junction_leakage_current(
            width=self.width,
            junction_current_per_meter=self.parameters.junction_current_per_meter,
            vds=vds,
            supply_voltage=self.supply_voltage,
        )

    # -- drive / delay ------------------------------------------------------
    def saturation_current(self) -> float:
        """Drive current at Vgs = Vds = Vdd via the alpha-power law (amperes)."""
        overdrive = self.supply_voltage - self.parameters.threshold_voltage
        return self.parameters.drive_k_per_meter * self.width * overdrive**self.parameters.alpha

    def effective_resistance(self) -> float:
        """Effective switching resistance (ohms) for RC delay estimation.

        Uses the standard approximation ``R_eff ~= 0.75 * Vdd / Idsat``,
        which reproduces the 50 %-point delay of a step-driven RC load
        within a few percent for alpha close to 1.3.
        """
        idsat = self.saturation_current()
        if idsat <= 0:
            raise TechnologyError("saturation current must be positive to define a resistance")
        return 0.75 * self.supply_voltage / idsat

    def pass_resistance(self) -> float:
        """On-resistance when used as a pass transistor (ohms).

        A pass device conducts with a degraded gate overdrive (it must
        pull the source towards the gate voltage), so its effective
        resistance is larger than the same device switching in a CMOS
        gate.  We model this with the conventional ~1.5x degradation
        factor relative to :meth:`effective_resistance`.
        """
        return 1.5 * self.effective_resistance()

    # -- capacitance ---------------------------------------------------------
    def gate_capacitance(self) -> float:
        """Total gate capacitance (farads)."""
        return self.parameters.gate_capacitance_per_meter * self.width

    def diffusion_capacitance(self) -> float:
        """Drain (or source) diffusion capacitance (farads)."""
        return self.parameters.diffusion_capacitance_per_meter * self.width

    # -- convenience ----------------------------------------------------------
    @property
    def vt_flavor(self) -> VtFlavor:
        """Vt flavor of the underlying parameter set."""
        return self.parameters.vt_flavor

    @property
    def polarity(self) -> Polarity:
        """Channel polarity of the underlying parameter set."""
        return self.parameters.polarity

    def resized(self, width: float) -> "Mosfet":
        """Return a copy of this transistor with a different width."""
        return Mosfet(self.parameters, width, self.supply_voltage, self.temperature)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Mosfet({self.parameters.polarity.value}, {self.parameters.vt_flavor.value}, "
            f"W={self.width:.3e} m)"
        )
