"""Scheme registry and factory.

The benchmarks, examples and the NoC power layer all refer to crossbar
schemes by their Table 1 names ("SC", "DFC", ...).  The factory owns the
mapping so a typo fails loudly and new schemes (e.g. user extensions)
can be registered without touching the callers.
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import CrossbarError
from ..technology.library import TechnologyLibrary
from .base import CrossbarScheme
from .dfc import DualVtFeedbackCrossbar
from .dpc import DualVtPrechargedCrossbar
from .ports import CrossbarConfig
from .sc import SingleVtCrossbar
from .sdfc import SegmentedDualVtFeedbackCrossbar
from .sdpc import SegmentedDualVtPrechargedCrossbar

__all__ = [
    "SCHEME_ORDER",
    "available_schemes",
    "create_scheme",
    "create_all_schemes",
    "register_scheme",
]

SchemeFactory = Callable[[TechnologyLibrary, CrossbarConfig | None], CrossbarScheme]

#: Table 1 column order.
SCHEME_ORDER: tuple[str, ...] = ("SC", "DFC", "DPC", "SDFC", "SDPC")

_REGISTRY: dict[str, SchemeFactory] = {
    "SC": SingleVtCrossbar,
    "DFC": DualVtFeedbackCrossbar,
    "DPC": DualVtPrechargedCrossbar,
    "SDFC": SegmentedDualVtFeedbackCrossbar,
    "SDPC": SegmentedDualVtPrechargedCrossbar,
}


def available_schemes() -> list[str]:
    """Names of all registered schemes, Table 1 order first."""
    ordered = [name for name in SCHEME_ORDER if name in _REGISTRY]
    extras = sorted(name for name in _REGISTRY if name not in SCHEME_ORDER)
    return ordered + extras


def register_scheme(name: str, factory: SchemeFactory, overwrite: bool = False) -> None:
    """Register a new scheme factory under ``name``.

    Intended for downstream extensions (e.g. a triple-Vt variant); the
    bundled names cannot be silently replaced unless ``overwrite`` is
    set.
    """
    key = name.upper()
    if key in _REGISTRY and not overwrite:
        raise CrossbarError(f"scheme {name!r} is already registered (pass overwrite=True to replace)")
    _REGISTRY[key] = factory
    # A replaced factory invalidates any structurally memoised schemes
    # built under the old one (lazy import: the evaluator imports us).
    if overwrite:
        from ..core.scheme_evaluator import clear_structural_cache

        clear_structural_cache()


def create_scheme(name: str, library: TechnologyLibrary,
                  config: CrossbarConfig | None = None) -> CrossbarScheme:
    """Instantiate a scheme by its Table 1 name."""
    key = name.upper()
    try:
        factory = _REGISTRY[key]
    except KeyError as exc:
        known = ", ".join(available_schemes())
        raise CrossbarError(f"unknown crossbar scheme {name!r}; known schemes: {known}") from exc
    return factory(library, config)


def create_all_schemes(library: TechnologyLibrary,
                       config: CrossbarConfig | None = None) -> dict[str, CrossbarScheme]:
    """Instantiate every bundled scheme, keyed by name in Table 1 order."""
    return {name: create_scheme(name, library, config) for name in available_schemes()}
