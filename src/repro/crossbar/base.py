"""Shared machinery for the five crossbar schemes (SC, DFC, DPC, SDFC, SDPC).

All five schemes share the same skeleton — a matrix crossbar output row:

* ``inputs_per_output`` NMOS pass transistors (N1-N4 in Fig. 1) connect
  the input column wires to the shared merge node (node A, physically
  the output row wire);
* a two-stage output driver (I1, I2) buffers the merge node onto the
  output port wire;
* either a feedback keeper (P1, Fig. 1) restores the degraded high level
  the NMOS pass devices leave behind, or a clocked pre-charge device
  (P1, Fig. 2) parks the node at Vdd each cycle;
* a sleep transistor (N5) forces the merge node to ground in standby;
* the segmented variants (Fig. 3) split the row wire into a near and a
  far segment joined by a segment switch, with per-segment sleep (and,
  for SDPC, pre-charge) control.

What distinguishes the schemes is captured by two small value objects —
:class:`SchemeFeatures` (which structural options are present) and
:class:`VtPlan` (which devices are high-Vt) — plus the scheme name and
its modelling notes.  The heavy lifting (timing paths, state-dependent
leakage, dynamic energy, standby-transition energy, netlist generation)
lives here so that every scheme is analysed with exactly the same
machinery and the Table 1 comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..circuit.dynamic import contention_energy, switching_energy
from ..circuit.devices import DeviceRole
from ..circuit.gates import (
    Inverter,
    Keeper,
    PassTransistorSwitch,
    PrechargeTransistor,
    SleepTransistor,
)
from ..circuit.leakage import LeakageAccumulator, LeakageBreakdown
from ..circuit.netlist import Netlist
from ..errors import CrossbarError
from ..interconnect.pi_model import PiModel
from ..interconnect.segmentation import SegmentationPlan, SegmentedWire
from ..interconnect.wire import Wire
from ..technology.library import TechnologyLibrary
from ..technology.transistor import VtFlavor
from ..timing.delay_analysis import DelayReport, contention_factor, pass_rise_penalty
from ..timing.path import TimingPath, TimingStage
from .ports import CrossbarConfig, PortDirection

__all__ = ["VtPlan", "SchemeFeatures", "CrossbarScheme"]


@dataclass(frozen=True)
class VtPlan:
    """Threshold-voltage flavor of every device role in a scheme.

    The plan is the paper's central design decision: which transistors
    can afford to be high-Vt.  The per-scheme modules document the
    reasoning behind each choice.
    """

    pass_transistor: VtFlavor = VtFlavor.NOMINAL
    near_pass_transistor: VtFlavor = VtFlavor.NOMINAL
    keeper: VtFlavor = VtFlavor.NOMINAL
    sleep: VtFlavor = VtFlavor.NOMINAL
    precharge: VtFlavor = VtFlavor.HIGH
    segment_switch: VtFlavor = VtFlavor.NOMINAL
    driver1_nmos: VtFlavor = VtFlavor.NOMINAL
    driver1_pmos: VtFlavor = VtFlavor.NOMINAL
    driver2_nmos: VtFlavor = VtFlavor.NOMINAL
    driver2_pmos: VtFlavor = VtFlavor.NOMINAL
    input_driver: VtFlavor = VtFlavor.NOMINAL


@dataclass(frozen=True)
class SchemeFeatures:
    """Structural options present in a scheme."""

    has_keeper: bool = True
    has_precharge: bool = False
    has_sleep: bool = True
    segmented: bool = False
    #: Pre-charged-high designs park the merge node at Vdd; the paper's
    #: example uses high, but the machinery supports pre-charge-low too.
    precharge_to_high: bool = True
    #: Segmented schemes can put the far segment into standby while the
    #: crossbar is actively using only the near segment — the paper's
    #: "higher probability that some segments of the wires can be put in
    #: standby mode".
    far_segment_sleeps_when_unused: bool = True

    def __post_init__(self) -> None:
        if self.has_keeper and self.has_precharge:
            raise CrossbarError(
                "a merge node has either a feedback keeper or a pre-charge device, not both"
            )


class CrossbarScheme:
    """Base class: one crossbar design analysed at one technology point.

    Subclasses provide ``name``, ``features`` and ``vt_plan`` (and their
    design rationale); everything else is computed here.
    """

    #: Short scheme name as used in Table 1 (overridden by subclasses).
    name: str = "base"
    #: One-line description for reports.
    description: str = "abstract crossbar scheme"

    def __init__(
        self,
        library: TechnologyLibrary,
        config: CrossbarConfig | None = None,
        *,
        features: SchemeFeatures,
        vt_plan: VtPlan,
    ) -> None:
        self.library = library
        self.config = config if config is not None else CrossbarConfig()
        self.features = features
        self.vt_plan = vt_plan
        self._build_components()
        # Scheme instances are structurally immutable after construction
        # and shared through the structural cache, so every analysis
        # method is pure in its scalar arguments — memoise the hot
        # entry points per (method, scalars).  Bounded: a sweep over
        # many distinct scalars clears rather than grows.
        self._analysis_memo: dict[tuple, object] = {}

    def _memoised(self, key: tuple, compute):
        """Per-scheme memo for pure analysis results keyed on scalars."""
        memo = self._analysis_memo
        cached = memo.get(key)
        if cached is None:
            cached = compute()
            if len(memo) >= 256:
                memo.clear()
            memo[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #
    def _build_components(self) -> None:
        library, config, plan = self.library, self.config, self.vt_plan
        self.input_driver = Inverter(
            library,
            config.input_driver_nmos_width,
            config.input_driver_pmos_width,
            nmos_flavor=plan.input_driver,
            pmos_flavor=plan.input_driver,
            name="input_driver",
        )
        self.driver1 = Inverter(
            library,
            config.driver1_nmos_width,
            config.driver1_pmos_width,
            nmos_flavor=plan.driver1_nmos,
            pmos_flavor=plan.driver1_pmos,
            name="i1",
        )
        self.driver2 = Inverter(
            library,
            config.driver2_nmos_width,
            config.driver2_pmos_width,
            nmos_flavor=plan.driver2_nmos,
            pmos_flavor=plan.driver2_pmos,
            name="i2",
        )
        self.pass_switch = PassTransistorSwitch(
            library, config.pass_width, flavor=plan.pass_transistor, name="pass"
        )
        self.near_pass_switch = (
            PassTransistorSwitch(
                library, config.pass_width, flavor=plan.near_pass_transistor, name="near_pass"
            )
            if self.features.segmented
            else None
        )
        self.keeper = (
            Keeper(library, config.keeper_width, flavor=plan.keeper)
            if self.features.has_keeper
            else None
        )
        self.sleep = (
            SleepTransistor(library, config.sleep_width, flavor=plan.sleep)
            if self.features.has_sleep
            else None
        )
        self.precharge = (
            PrechargeTransistor(library, config.precharge_width, flavor=plan.precharge)
            if self.features.has_precharge
            else None
        )
        self.segment_switch = (
            PassTransistorSwitch(
                library, config.segment_switch_width, flavor=plan.segment_switch, name="segsw"
            )
            if self.features.segmented
            else None
        )
        # Wires.
        self.input_wire = Wire.on_layer(
            library, config.resolved_input_wire_length(library), config.wire_layer
        )
        row_wire = Wire.on_layer(
            library, config.resolved_row_wire_length(library), config.wire_layer
        )
        self.row_wire = row_wire
        if self.features.segmented:
            self.segmentation_plan = SegmentationPlan(
                segment_count=2,
                near_fraction=0.5,
                inputs_on_near_segment=max(1, config.inputs_per_output // 2),
                total_inputs=config.inputs_per_output,
            )
            self.segmented_row = SegmentedWire.from_wire(row_wire, self.segmentation_plan)
        else:
            self.segmentation_plan = None
            self.segmented_row = None
        self.output_wire = Wire.on_layer(
            library, config.resolved_output_wire_length(library), config.wire_layer
        )
        self.receiver_capacitance = config.resolved_receiver_capacitance(library)

    # ------------------------------------------------------------------ #
    # small shared quantities                                              #
    # ------------------------------------------------------------------ #
    @property
    def supply_voltage(self) -> float:
        """Operating supply voltage (volts)."""
        return self.library.supply_voltage

    @property
    def output_path_count(self) -> int:
        """Number of replicated output paths (output ports x flit bits)."""
        return self.config.output_count * self.config.flit_width

    @property
    def input_wire_count(self) -> int:
        """Number of input column wires (input ports x flit bits)."""
        return self.config.port_count * self.config.flit_width

    @property
    def has_sleep_mode(self) -> bool:
        """True if the scheme provides a standby (sleep) mode."""
        return self.features.has_sleep

    def _near_inputs(self) -> int:
        """Crosspoints attached to the near segment (segmented schemes)."""
        if not self.features.segmented:
            return self.config.inputs_per_output
        return self.segmentation_plan.inputs_on_near_segment

    def _far_inputs(self) -> int:
        """Crosspoints attached to the far segment (segmented schemes)."""
        if not self.features.segmented:
            return 0
        return self.config.inputs_per_output - self.segmentation_plan.inputs_on_near_segment

    # -- merge-node capacitances ------------------------------------------------
    def near_merge_capacitance(self) -> float:
        """Lumped device capacitance on the merge node (near segment).

        For non-segmented schemes this is the whole merge node.  Wire
        capacitance is accounted separately through the pi models.
        """
        cap = self.driver1.input_capacitance()
        pass_cap = (
            self.near_pass_switch.terminal_capacitance()
            if self.features.segmented
            else self.pass_switch.terminal_capacitance()
        )
        cap += self._near_inputs() * pass_cap
        if self.keeper is not None:
            cap += self.keeper.node_capacitance()
        if self.sleep is not None:
            cap += self.sleep.node_capacitance()
        if self.precharge is not None:
            cap += self.precharge.node_capacitance()
        if self.segment_switch is not None:
            cap += self.segment_switch.terminal_capacitance()
        return cap

    def far_merge_capacitance(self) -> float:
        """Lumped device capacitance on the far-segment merge wire."""
        if not self.features.segmented:
            return 0.0
        cap = self._far_inputs() * self.pass_switch.terminal_capacitance()
        cap += self.segment_switch.terminal_capacitance()
        if self.sleep is not None:
            cap += self.sleep.node_capacitance()
        if self.precharge is not None:
            cap += self.precharge.node_capacitance()
        return cap

    def merge_capacitance(self) -> float:
        """Total device capacitance hanging on the merge structure."""
        return self.near_merge_capacitance() + self.far_merge_capacitance()

    def internal_node_capacitance(self) -> float:
        """Capacitance of the node between I1 and I2 (plus keeper feedback)."""
        cap = self.driver1.output_capacitance() + self.driver2.input_capacitance()
        if self.keeper is not None:
            cap += self.keeper.feedback_capacitance()
        return cap

    def output_node_capacitance(self) -> float:
        """Device capacitance on the output port wire (driver diffusion + receiver)."""
        return self.driver2.output_capacitance() + self.receiver_capacitance

    # ------------------------------------------------------------------ #
    # timing                                                               #
    # ------------------------------------------------------------------ #
    def _row_pi(self, far_path: bool) -> PiModel:
        """Pi model of the merge (row) wire seen by the worst-case input."""
        if not self.features.segmented:
            return self.row_wire.pi_model()
        near_pi = self.segmented_row.near.pi_model()
        if not far_path:
            return near_pi
        far_pi = self.segmented_row.far.pi_model()
        switch_pi = PiModel(0.0, self.segment_switch.on_resistance(), 0.0)
        return far_pi.cascaded_with(switch_pi).cascaded_with(near_pi)

    def _granted_pass(self, far_path: bool) -> PassTransistorSwitch:
        """The pass switch on the path under analysis."""
        if self.features.segmented and not far_path:
            return self.near_pass_switch
        return self.pass_switch

    def _merge_stage(self, falling: bool, far_path: bool) -> TimingStage:
        """Stage 1: input driver through the pass device onto the merge node."""
        driver_resistance = (
            self.input_driver.pull_down_resistance()
            if falling
            else self.input_driver.pull_up_resistance()
        )
        granted = self._granted_pass(far_path)
        series = granted.on_resistance()
        if not falling:
            # An NMOS pass device pulls high slowly (threshold-drop regime).
            series *= pass_rise_penalty(
                self.supply_voltage, granted.nmos.parameters.threshold_voltage
            )
        wire = self.input_wire.pi_model().cascaded_with(self._row_pi(far_path))
        contention = 1.0
        if falling and self.keeper is not None:
            drive_current = 0.75 * self.supply_voltage / (driver_resistance + series)
            contention = contention_factor(drive_current, self.keeper.opposing_current())
        return TimingStage(
            name="merge",
            driver_resistance=driver_resistance,
            series_resistance=series,
            wire=wire,
            load_capacitance=self.near_merge_capacitance(),
            contention_factor=contention,
        )

    def _driver_stages(self, output_falling: bool) -> list[TimingStage]:
        """Stages 2 and 3: I1 switches the internal node, I2 drives the port wire."""
        if output_falling:
            driver1_resistance = self.driver1.pull_up_resistance()
            driver2_resistance = self.driver2.pull_down_resistance()
        else:
            driver1_resistance = self.driver1.pull_down_resistance()
            driver2_resistance = self.driver2.pull_up_resistance()
        stage2 = TimingStage(
            name="driver1",
            driver_resistance=driver1_resistance,
            load_capacitance=self.internal_node_capacitance(),
        )
        stage3 = TimingStage(
            name="driver2",
            driver_resistance=driver2_resistance,
            wire=self.output_wire.pi_model(),
            load_capacitance=self.output_node_capacitance(),
        )
        return [stage2, stage3]

    def high_to_low_path(self) -> TimingPath:
        """Worst-case path for a falling output (data 0 traversal)."""
        path = TimingPath(name=f"{self.name}:high_to_low")
        path.add_stage(self._merge_stage(falling=True, far_path=True))
        for stage in self._driver_stages(output_falling=True):
            path.add_stage(stage)
        return path

    def low_to_high_path(self) -> TimingPath:
        """Worst-case path for a rising output.

        Feedback schemes propagate the rise through the pass device (with
        the keeper completing the swing); pre-charged schemes report the
        pre-charge path instead, matching the Table 1 row label
        "Low to High / Precharge delay time".
        """
        path = TimingPath(name=f"{self.name}:low_to_high")
        if self.features.has_precharge:
            path.add_stage(
                TimingStage(
                    name="precharge",
                    driver_resistance=self.precharge.on_resistance(),
                    wire=self._row_pi(far_path=True),
                    load_capacitance=self.near_merge_capacitance(),
                )
            )
        else:
            path.add_stage(self._merge_stage(falling=False, far_path=True))
        for stage in self._driver_stages(output_falling=False):
            path.add_stage(stage)
        return path

    def delay_report(self) -> DelayReport:
        """Worst-case delays of this scheme (Table 1 delay rows)."""
        return self._memoised(("delay_report",), lambda: DelayReport(
            scheme=self.name,
            high_to_low=self.high_to_low_path().delay(),
            low_to_high=self.low_to_high_path().delay(),
        ))

    # ------------------------------------------------------------------ #
    # leakage                                                              #
    # ------------------------------------------------------------------ #
    def _driver_chain_leakage(self, merge_high: bool) -> LeakageBreakdown:
        """Leakage of I1 + I2 for a given merge-node value."""
        return self.driver1.leakage(merge_high) + self.driver2.leakage(not merge_high)

    def _add_pass_bank_leakage(
        self,
        acc: LeakageAccumulator,
        switch: PassTransistorSwitch,
        count_off: int,
        node_voltage: float,
        probability_input_high: float,
    ) -> None:
        """Accumulate the expected leakage of ``count_off`` off pass devices.

        Each of the two unique bias points (input parked high / parked
        low) is evaluated once — a kernel memo hit after the first call
        — and multiplied by its expected population, instead of being
        re-derived per port or per row.
        """
        if count_off <= 0:
            return
        vdd = self.supply_voltage
        acc.add(switch.leakage(False, vdd, node_voltage),
                probability_input_high * count_off)
        acc.add(switch.leakage(False, 0.0, node_voltage),
                (1.0 - probability_input_high) * count_off)

    def _add_merge_support_leakage(self, acc: LeakageAccumulator,
                                   merge_high: bool, standby: bool) -> None:
        """Keeper / sleep / pre-charge leakage on the near merge node."""
        vdd = self.supply_voltage
        node_voltage = vdd if merge_high else 0.0
        if self.keeper is not None:
            acc.add(self.keeper.leakage(merge_high))
        if self.sleep is not None:
            acc.add(self.sleep.leakage(standby, node_voltage))
        if self.precharge is not None:
            # Pre-charge is disabled (gate high, device off) in standby and,
            # during active evaluation, off for the phase that matters.
            acc.add(self.precharge.leakage(False, node_voltage))

    def _add_far_support_leakage(self, acc: LeakageAccumulator,
                                 far_high: bool, far_standby: bool) -> None:
        """Sleep / pre-charge devices attached to the far segment."""
        if not self.features.segmented:
            return
        vdd = self.supply_voltage
        node_voltage = vdd if far_high else 0.0
        if self.sleep is not None:
            acc.add(self.sleep.leakage(far_standby, node_voltage))
        if self.precharge is not None:
            acc.add(self.precharge.leakage(False, node_voltage))

    def _add_segment_switch_leakage(self, acc: LeakageAccumulator, connected: bool,
                                    far_voltage: float, near_voltage: float) -> None:
        """Leakage of the segment switch for the given connection state."""
        if self.segment_switch is not None:
            acc.add(self.segment_switch.leakage(connected, far_voltage, near_voltage))

    def _path_leakage_unsegmented(self, merge_high: bool, probability_input_high: float,
                                  granted: bool) -> LeakageBreakdown:
        """One output-bit path, non-segmented schemes."""
        vdd = self.supply_voltage
        node_voltage = vdd if merge_high else 0.0
        acc = LeakageAccumulator()
        acc.add(self._driver_chain_leakage(merge_high))
        self._add_merge_support_leakage(acc, merge_high, standby=False)
        off_count = self.config.inputs_per_output - (1 if granted else 0)
        self._add_pass_bank_leakage(
            acc, self.pass_switch, off_count, node_voltage, probability_input_high
        )
        if granted:
            acc.add(self.pass_switch.leakage(True, node_voltage, node_voltage))
        return acc.freeze()

    def _path_leakage_segmented(self, merge_high: bool, probability_input_high: float,
                                granted: bool) -> LeakageBreakdown:
        """One output-bit path, segmented schemes (SDFC / SDPC).

        Conditioned on where the granted input sits: with probability
        ``near_traffic_fraction`` the transfer uses only the near
        segment and — if the feature is enabled — the far segment is put
        into standby (its wire held at ground by its own sleep device);
        otherwise both segments are live and joined by the segment
        switch.
        """
        vdd = self.supply_voltage
        node_voltage = vdd if merge_high else 0.0
        plan = self.segmentation_plan
        near_fraction = plan.near_traffic_fraction if granted else 1.0

        # Case 1: transfer (or idle value) confined to the near segment.
        far_sleeps = self.features.far_segment_sleeps_when_unused
        far_voltage_case1 = 0.0 if far_sleeps else node_voltage
        case1 = LeakageAccumulator()
        case1.add(self._driver_chain_leakage(merge_high))
        self._add_merge_support_leakage(case1, merge_high, standby=False)
        self._add_pass_bank_leakage(
            case1, self.near_pass_switch, self._near_inputs() - (1 if granted else 0),
            node_voltage, probability_input_high,
        )
        if granted:
            case1.add(self.near_pass_switch.leakage(True, node_voltage, node_voltage))
        self._add_pass_bank_leakage(
            case1, self.pass_switch, self._far_inputs(), far_voltage_case1,
            probability_input_high,
        )
        self._add_far_support_leakage(
            case1, far_high=far_voltage_case1 > 0, far_standby=far_sleeps
        )
        self._add_segment_switch_leakage(case1, False, far_voltage_case1, node_voltage)

        # Case 2: transfer comes from the far segment; both segments live.
        case2 = LeakageAccumulator()
        case2.add(self._driver_chain_leakage(merge_high))
        self._add_merge_support_leakage(case2, merge_high, standby=False)
        self._add_pass_bank_leakage(
            case2, self.near_pass_switch, self._near_inputs(), node_voltage,
            probability_input_high,
        )
        far_off = self._far_inputs() - (1 if granted else 0)
        self._add_pass_bank_leakage(
            case2, self.pass_switch, far_off, node_voltage, probability_input_high
        )
        if granted:
            case2.add(self.pass_switch.leakage(True, node_voltage, node_voltage))
        self._add_far_support_leakage(case2, far_high=merge_high, far_standby=False)
        self._add_segment_switch_leakage(case2, True, node_voltage, node_voltage)

        return (LeakageAccumulator()
                .add(case1.freeze(), near_fraction)
                .add(case2.freeze(), 1.0 - near_fraction)
                .freeze())

    def _path_leakage(self, merge_high: bool, probability_input_high: float,
                      granted: bool) -> LeakageBreakdown:
        """One output-bit path in active (or idle-awake) mode."""
        if self.features.segmented:
            return self._path_leakage_segmented(merge_high, probability_input_high, granted)
        return self._path_leakage_unsegmented(merge_high, probability_input_high, granted)

    def _expected_path_leakage(self, probability_high: float, probability_input_high: float,
                               granted: bool) -> LeakageBreakdown:
        """Average one-path leakage over the merge-node value distribution."""
        high = self._path_leakage(True, probability_input_high, granted)
        low = self._path_leakage(False, probability_input_high, granted)
        return high.scaled(probability_high) + low.scaled(1.0 - probability_high)

    def active_leakage(self, static_probability: float = 0.5) -> LeakageBreakdown:
        """Total crossbar leakage while transferring flits (Table 1 "active").

        ``static_probability`` is the probability that a data bit (and
        therefore the merge node) sits at logic 1; the paper uses 0.5.
        The crossbar input drivers belong to the router input port (their
        leakage is the subject of reference [1]) and are excluded, which
        matches the paper's crossbar-only scope.
        """
        self._check_probability(static_probability)
        return self._memoised(
            ("active_leakage", static_probability),
            lambda: self._expected_path_leakage(
                probability_high=static_probability,
                probability_input_high=static_probability,
                granted=True,
            ).scaled(self.output_path_count),
        )

    def idle_leakage(self, static_probability: float = 0.5) -> LeakageBreakdown:
        """Crossbar leakage when idle but *not* in standby.

        No input is granted; the merge node floats at its last evaluated
        value.  This holds for the pre-charged schemes too: the paper
        gates the pre-charge clock off whenever no requests are pending,
        precisely to avoid idle switching, so an idle DPC/SDPC merge node
        also parks at the last data value.
        """
        self._check_probability(static_probability)
        return self._memoised(
            ("idle_leakage", static_probability),
            lambda: self._expected_path_leakage(
                probability_high=static_probability,
                probability_input_high=static_probability,
                granted=False,
            ).scaled(self.output_path_count),
        )

    def standby_leakage(self) -> LeakageBreakdown:
        """Crossbar leakage in standby (sleep asserted, Table 1 "standby").

        The sleep devices hold every merge segment at ground, the input
        wires are parked low by the (idle) input ports, and the
        pre-charge clock is gated off.  Schemes without a sleep mode
        simply report their idle leakage.
        """
        if not self.features.has_sleep:
            return self.idle_leakage()
        return self._memoised(("standby_leakage",), self._compute_standby_leakage)

    def _compute_standby_leakage(self) -> LeakageBreakdown:
        """The uncached standby evaluation behind :meth:`standby_leakage`."""
        acc = LeakageAccumulator()
        acc.add(self._driver_chain_leakage(merge_high=False))
        self._add_merge_support_leakage(acc, merge_high=False, standby=True)
        # Off pass devices with all terminals at ground contribute nothing.
        self._add_pass_bank_leakage(acc, self.pass_switch, 0, 0.0, 0.0)
        if self.features.segmented:
            self._add_far_support_leakage(acc, far_high=False, far_standby=True)
            self._add_segment_switch_leakage(acc, False, 0.0, 0.0)
        return acc.freeze().scaled(self.output_path_count)

    def active_leakage_power(self, static_probability: float = 0.5) -> float:
        """Active leakage expressed as power (watts)."""
        return self.active_leakage(static_probability).power(self.supply_voltage)

    def standby_leakage_power(self) -> float:
        """Standby leakage expressed as power (watts)."""
        return self.standby_leakage().power(self.supply_voltage)

    # ------------------------------------------------------------------ #
    # dynamic energy / total power                                         #
    # ------------------------------------------------------------------ #
    def _merge_fall_delay(self) -> float:
        """Traffic-averaged delay of the merge-node falling transition.

        Used for the keeper-contention energy: a transfer from a
        near-segment input fights the keeper for much less time than one
        from the far segment, so segmented schemes average the two with
        the traffic split — one of the ways segmentation "mitigates
        dynamic power" in the paper's words.
        """
        far_delay = self._merge_stage(falling=True, far_path=True).delay()
        if not self.features.segmented:
            return far_delay
        near_delay = self._merge_stage(falling=True, far_path=False).delay()
        near_fraction = self.segmentation_plan.near_traffic_fraction
        return near_fraction * near_delay + (1.0 - near_fraction) * far_delay

    def _row_switched_capacitance(self) -> float:
        """Average row-wire capacitance switched per transfer (farads)."""
        if self.features.segmented:
            return self.segmented_row.average_switched_capacitance()
        return self.row_wire.capacitance

    def _switched_merge_device_capacitance(self) -> float:
        """Average merge-structure device capacitance switched per transfer.

        Near-segment transfers leave the far segment (and the device
        capacitance hanging on it) untouched.
        """
        if not self.features.segmented:
            return self.merge_capacitance()
        near_fraction = self.segmentation_plan.near_traffic_fraction
        return self.near_merge_capacitance() + (1.0 - near_fraction) * self.far_merge_capacitance()

    def data_path_capacitance(self) -> float:
        """Capacitance switched by one output-bit data transition (farads).

        Covers the merge structure, the row wire, the driver internal
        node and the output port wire with its receiver.  The input
        column wire is accounted separately (per input port, not per
        output path).
        """
        return (
            self._switched_merge_device_capacitance()
            + self._row_switched_capacitance()
            + self.internal_node_capacitance()
            + self.output_wire.capacitance
            + self.output_node_capacitance()
        )

    def dynamic_energy_per_cycle(self, toggle_activity: float = 0.5,
                                 static_probability: float = 0.5) -> float:
        """Average switching energy per clock cycle for the whole crossbar (joules).

        Assumes every output port transfers one flit per cycle (the
        saturated-crossbar condition the paper's power row uses) with the
        given data ``toggle_activity`` (probability a bit changes value
        between consecutive flits) and ``static_probability`` (probability
        a bit is at logic 1).
        """
        self._check_probability(static_probability)
        self._check_probability(toggle_activity)
        return self._memoised(
            ("dynamic_energy_per_cycle", toggle_activity, static_probability),
            lambda: self._compute_dynamic_energy_per_cycle(
                toggle_activity, static_probability),
        )

    def _compute_dynamic_energy_per_cycle(self, toggle_activity: float,
                                          static_probability: float) -> float:
        """The uncached evaluation behind :meth:`dynamic_energy_per_cycle`."""
        vdd = self.supply_voltage
        rising_probability = toggle_activity / 2.0

        per_output_bit = 0.0
        if self.features.has_precharge:
            # Every evaluated 0 discharges the pre-charged path and must be
            # restored: the pre-charged capacitance cycles with probability
            # P(data == 0) regardless of the previous value.
            probability_zero = 1.0 - static_probability
            precharged_capacitance = (
                self._switched_merge_device_capacitance()
                + self._row_switched_capacitance()
                + self.output_wire.capacitance
                + self.output_node_capacitance()
            )
            per_output_bit += probability_zero * switching_energy(precharged_capacitance, vdd)
            # The driver internal node still toggles with the data.
            per_output_bit += rising_probability * switching_energy(
                self.internal_node_capacitance(), vdd
            )
            # The pre-charge control gate is clocked every cycle.
            per_output_bit += switching_energy(self.precharge.control_capacitance(), vdd)
        else:
            per_output_bit += rising_probability * switching_energy(
                self.data_path_capacitance(), vdd
            )
            # Falling merge transitions fight the keeper.
            if self.keeper is not None:
                per_output_bit += (toggle_activity / 2.0) * contention_energy(
                    self.keeper.opposing_current(), self._merge_fall_delay(), vdd
                )

        per_input_bit = rising_probability * switching_energy(self.input_wire.capacitance, vdd)

        # Grant lines: one grant wire per (input, output) pair, loaded by the
        # pass-transistor gates of every bit of the flit; a new grant is
        # established on a fraction of cycles (head flits).
        grant_switch_probability = 0.2
        grant_load = self.config.flit_width * self.pass_switch.grant_capacitance()
        per_output_grant = grant_switch_probability * switching_energy(grant_load, vdd)

        total = (
            per_output_bit * self.output_path_count
            + per_input_bit * self.input_wire_count
            + per_output_grant * self.config.output_count
        )
        return total

    def dynamic_power(self, toggle_activity: float = 0.5, static_probability: float = 0.5,
                      frequency: float | None = None) -> float:
        """Average switching power (watts) at the library clock (or ``frequency``)."""
        clock = frequency if frequency is not None else self.library.clock_frequency
        return self.dynamic_energy_per_cycle(toggle_activity, static_probability) * clock

    def total_power(self, toggle_activity: float = 0.5, static_probability: float = 0.5,
                    frequency: float | None = None) -> float:
        """Total crossbar power = switching + active leakage (watts)."""
        return self.dynamic_power(toggle_activity, static_probability, frequency) + \
            self.active_leakage_power(static_probability)

    # ------------------------------------------------------------------ #
    # standby (sleep) transitions                                          #
    # ------------------------------------------------------------------ #
    def sleep_transition_energy(self, static_probability: float = 0.5) -> float:
        """Energy cost of one standby entry + exit for the whole crossbar (joules).

        Components: switching the sleep-control gates (entry and exit),
        plus the re-charge of merge wires that were parked high before the
        sleep device discharged them (charge that would not have been
        spent had the crossbar stayed awake), plus the driver-internal
        node flip that accompanies the forced transition.
        """
        if not self.features.has_sleep:
            return 0.0
        self._check_probability(static_probability)
        return self._memoised(
            ("sleep_transition_energy", static_probability),
            lambda: self._compute_sleep_transition_energy(static_probability),
        )

    def _compute_sleep_transition_energy(self, static_probability: float) -> float:
        """The uncached evaluation behind :meth:`sleep_transition_energy`."""
        vdd = self.supply_voltage
        segments = 2 if self.features.segmented else 1
        per_path = segments * switching_energy(self.sleep.control_capacitance(), vdd)
        parked_high_probability = static_probability
        merge_capacitance = (
            self.merge_capacitance()
            + (self.row_wire.capacitance if not self.features.segmented
               else self.segmented_row.total_capacitance)
        )
        per_path += parked_high_probability * switching_energy(merge_capacitance, vdd)
        # The driver internal node flips when the merge node is forced low.
        per_path += parked_high_probability * switching_energy(self.internal_node_capacitance(), vdd)
        return per_path * self.output_path_count

    def standby_power_saving(self, static_probability: float = 0.5) -> float:
        """Leakage power saved per second of standby, relative to idling awake (watts)."""
        idle = self.idle_leakage(static_probability).power(self.supply_voltage)
        standby = self.standby_leakage().power(self.supply_voltage)
        return max(idle - standby, 0.0)

    # ------------------------------------------------------------------ #
    # structural netlists                                                  #
    # ------------------------------------------------------------------ #
    def output_path_netlist(self, output: PortDirection = PortDirection.PE, bit: int = 0) -> Netlist:
        """Netlist of one output row for one bit — the Fig. 1/2 schematic."""
        netlist = Netlist(f"{self.name}.out_{output.value}.bit{bit}")
        self._add_output_path(netlist, output, bit)
        return netlist

    def build_netlist(self, bits: int | None = None) -> Netlist:
        """Full structural netlist (all output rows, ``bits`` flit bits).

        ``bits`` defaults to the full flit width; passing a smaller value
        keeps exploratory netlists small.  Input drivers are included so
        the inventory reflects everything the crossbar macro instantiates,
        tagged with the ``INPUT_DRIVER`` role so scope-sensitive analyses
        can filter them out.
        """
        bit_count = self.config.flit_width if bits is None else bits
        if bit_count < 1 or bit_count > self.config.flit_width:
            raise CrossbarError(
                f"bits must be between 1 and the flit width, got {bit_count}"
            )
        netlist = Netlist(f"{self.name}.crossbar")
        ports = PortDirection.ordered()[: self.config.port_count]
        for bit in range(bit_count):
            for port in ports:
                self._add_output_path(netlist, port, bit)
            for port in ports:
                prefix = f"in_{port.value}.bit{bit}"
                input_net = netlist.add_net(f"{prefix}.wire")
                data_net = netlist.add_net(f"{prefix}.data")
                for device in self.input_driver.devices(
                    data_net, input_net, prefix, DeviceRole.INPUT_DRIVER
                ):
                    netlist.add_device(device)
        return netlist

    def _add_output_path(self, netlist: Netlist, output: PortDirection, bit: int) -> None:
        """Add one output row (one bit) to ``netlist``."""
        config = self.config
        prefix = f"out_{output.value}.bit{bit}"
        inputs = [port for port in PortDirection.ordered()[: config.port_count]
                  if config.allow_self_connection or port is not output]
        inputs = inputs[: config.inputs_per_output]
        near_net = netlist.add_net(f"{prefix}.merge_near")
        far_net = netlist.add_net(f"{prefix}.merge_far") if self.features.segmented else near_net
        internal_net = netlist.add_net(f"{prefix}.internal")
        output_net = netlist.add_net(f"{prefix}.port_wire")
        sleep_net = netlist.add_net("sleep")
        precharge_net = netlist.add_net("precharge_n")

        near_count = self._near_inputs()
        for index, port in enumerate(inputs):
            grant_net = netlist.add_net(f"{prefix}.grant_{port.value}")
            input_net = netlist.add_net(f"in_{port.value}.bit{bit}.wire")
            on_near_segment = index < near_count or not self.features.segmented
            switch = self.near_pass_switch if (self.features.segmented and on_near_segment) \
                else self.pass_switch
            merge = near_net if on_near_segment else far_net
            for device in switch.devices(grant_net, input_net, merge, f"{prefix}.xp_{port.value}"):
                netlist.add_device(device)

        if self.features.segmented:
            segment_grant = netlist.add_net(f"{prefix}.segment_connect")
            for device in self.segment_switch.devices(
                segment_grant, far_net, near_net, f"{prefix}.segment",
                role=DeviceRole.SEGMENT_SWITCH,
            ):
                netlist.add_device(device)

        if self.keeper is not None:
            for device in self.keeper.devices(internal_net, near_net, prefix):
                netlist.add_device(device)
        if self.sleep is not None:
            for device in self.sleep.devices(sleep_net, near_net, f"{prefix}.near"):
                netlist.add_device(device)
            if self.features.segmented:
                for device in self.sleep.devices(sleep_net, far_net, f"{prefix}.far"):
                    netlist.add_device(device)
        if self.precharge is not None:
            for device in self.precharge.devices(precharge_net, near_net, f"{prefix}.near"):
                netlist.add_device(device)
            if self.features.segmented:
                for device in self.precharge.devices(precharge_net, far_net, f"{prefix}.far"):
                    netlist.add_device(device)

        for device in self.driver1.devices(near_net, internal_net, f"{prefix}.drv1"):
            netlist.add_device(device)
        for device in self.driver2.devices(internal_net, output_net, f"{prefix}.drv2"):
            netlist.add_device(device)

    # ------------------------------------------------------------------ #
    # misc                                                                 #
    # ------------------------------------------------------------------ #
    @cached_property
    def single_bit_statistics(self):
        """Netlist statistics for a single output path (cached)."""
        return self.output_path_netlist().statistics()

    @staticmethod
    def _check_probability(value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise CrossbarError(f"probabilities must be in [0, 1], got {value}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(ports={self.config.port_count}, "
            f"flit={self.config.flit_width}, node={self.library.node.name})"
        )
