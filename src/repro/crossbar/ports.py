"""Crossbar configuration: port structure, flit width, geometry and sizing.

The paper evaluates a 5-by-5 matrix crossbar with 128-bit flits.  The
:class:`CrossbarConfig` captures that experiment's knobs plus the device
sizing the schematic-level model needs.  Defaults reproduce the paper's
configuration; every field can be overridden for the design-space
studies.

Sizing defaults (in metres) are chosen for a 45 nm crossbar driving
~100 um-class wires: micron-scale pass devices and output drivers, a
weak keeper, a small sleep device.  The calibration notes in
``EXPERIMENTS.md`` record the values used for the headline tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import CrossbarError
from ..technology.library import TechnologyLibrary
from ..units import MICRO

__all__ = ["PortDirection", "CrossbarConfig"]


class PortDirection(enum.Enum):
    """The five router ports of a 2-D mesh NoC router."""

    NORTH = "north"
    SOUTH = "south"
    WEST = "west"
    EAST = "east"
    PE = "pe"

    @classmethod
    def ordered(cls) -> list["PortDirection"]:
        """Ports in the conventional N, S, W, E, PE order used by the paper."""
        return [cls.NORTH, cls.SOUTH, cls.WEST, cls.EAST, cls.PE]


@dataclass(frozen=True)
class CrossbarConfig:
    """Structural and sizing description of one matrix crossbar.

    Geometry
    --------
    ``input_wire_length`` / ``row_wire_length`` / ``output_wire_length``
    may be left as ``None`` to be derived from the flit width, port count
    and the wire pitch of the chosen layer: a matrix crossbar is
    physically a ``(ports x flit)`` by ``(ports x flit)`` wire array, so
    both the input column wires and the output row (merge) wires span
    ``port_count * flit_width * pitch * layout_overhead``; the output
    port wire (from the output driver to the port/PE interface) defaults
    to the same span.

    Sizing
    ------
    Widths are drawn transistor widths in metres.  ``driver1_*`` is the
    first inverter of the output driver (I1 in Fig. 1), ``driver2_*`` the
    second (I2), which drives the output port wire.
    """

    port_count: int = 5
    flit_width: int = 128
    #: Router input buffer depth (flits); consumed by the network-level
    #: power roll-up, carried here so it is part of the structural point.
    input_buffer_depth: int = 4
    allow_self_connection: bool = False
    wire_layer: str = "intermediate"
    layout_overhead: float = 1.0
    input_wire_length: float | None = None
    row_wire_length: float | None = None
    output_wire_length: float | None = None

    input_driver_nmos_width: float = 3.0 * MICRO
    input_driver_pmos_width: float = 6.0 * MICRO
    pass_width: float = 1.4 * MICRO
    keeper_width: float = 0.55 * MICRO
    sleep_width: float = 1.30 * MICRO
    precharge_width: float = 0.80 * MICRO
    segment_switch_width: float = 3.0 * MICRO
    driver1_nmos_width: float = 1.0 * MICRO
    driver1_pmos_width: float = 2.0 * MICRO
    driver2_nmos_width: float = 4.0 * MICRO
    driver2_pmos_width: float = 8.0 * MICRO
    receiver_capacitance: float | None = None

    #: Fraction of the clock period the crossbar traversal may use; the
    #: remainder belongs to the other router pipeline stages.
    timing_budget_fraction: float = 0.25

    def __post_init__(self) -> None:
        # Error messages name fields by their config path (the mount
        # point in ExperimentConfig), so engine users sweeping e.g.
        # "crossbar.port_count" see the axis they actually set.
        if self.port_count < 2:
            raise CrossbarError(
                f"crossbar.port_count: a crossbar needs at least 2 ports, got {self.port_count}"
            )
        if self.flit_width < 1:
            raise CrossbarError(
                f"crossbar.flit_width must be at least 1 bit, got {self.flit_width}"
            )
        if self.input_buffer_depth < 1:
            raise CrossbarError(
                f"crossbar.input_buffer_depth must be at least 1 flit, "
                f"got {self.input_buffer_depth}"
            )
        if self.layout_overhead < 1.0:
            raise CrossbarError("crossbar.layout_overhead must be >= 1")
        if not 0.0 < self.timing_budget_fraction <= 1.0:
            raise CrossbarError("crossbar.timing_budget_fraction must be in (0, 1]")
        for name in (
            "input_driver_nmos_width",
            "input_driver_pmos_width",
            "pass_width",
            "keeper_width",
            "sleep_width",
            "precharge_width",
            "segment_switch_width",
            "driver1_nmos_width",
            "driver1_pmos_width",
            "driver2_nmos_width",
            "driver2_pmos_width",
        ):
            if getattr(self, name) <= 0:
                raise CrossbarError(f"crossbar.{name} must be positive")
        for name in ("input_wire_length", "row_wire_length", "output_wire_length"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise CrossbarError(f"crossbar.{name} must be positive when given")
        if self.receiver_capacitance is not None and self.receiver_capacitance < 0:
            raise CrossbarError("crossbar.receiver_capacitance cannot be negative")

    # -- derived structure ---------------------------------------------------------
    @property
    def inputs_per_output(self) -> int:
        """Number of crosspoints (pass transistors) on each output row."""
        if self.allow_self_connection:
            return self.port_count
        return self.port_count - 1

    @property
    def output_count(self) -> int:
        """Number of output ports."""
        return self.port_count

    @property
    def total_crosspoints(self) -> int:
        """Pass-transistor count for the whole crossbar (all bits)."""
        return self.output_count * self.inputs_per_output * self.flit_width

    def crossbar_span(self, library: TechnologyLibrary) -> float:
        """Physical span (metres) of the wire array in one dimension."""
        pitch = library.node.wire_layer(self.wire_layer).pitch
        return self.port_count * self.flit_width * pitch * self.layout_overhead

    def resolved_input_wire_length(self, library: TechnologyLibrary) -> float:
        """Input column wire length (metres)."""
        if self.input_wire_length is not None:
            return self.input_wire_length
        return self.crossbar_span(library)

    def resolved_row_wire_length(self, library: TechnologyLibrary) -> float:
        """Output row (merge-node) wire length (metres)."""
        if self.row_wire_length is not None:
            return self.row_wire_length
        return self.crossbar_span(library)

    def resolved_output_wire_length(self, library: TechnologyLibrary) -> float:
        """Output port wire length (metres), from the output driver to the port."""
        if self.output_wire_length is not None:
            return self.output_wire_length
        return self.crossbar_span(library)

    def resolved_receiver_capacitance(self, library: TechnologyLibrary) -> float:
        """Load capacitance at the far end of the output port wire (farads).

        Defaults to the input capacitance of a gate comparable to the
        input driver (the next router's buffer write port).
        """
        if self.receiver_capacitance is not None:
            return self.receiver_capacitance
        from ..technology.transistor import Polarity, VtFlavor

        gate_cap_per_meter = library.device_parameters(
            Polarity.NMOS, VtFlavor.NOMINAL
        ).gate_capacitance_per_meter
        return gate_cap_per_meter * (self.input_driver_nmos_width + self.input_driver_pmos_width)

    def with_overrides(self, **overrides) -> "CrossbarConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)
