"""DPC — Dual-Vt Pre-Charged Crossbar (paper Section 2.2, Fig. 2).

The DPC replaces the feedback keeper with a clocked pre-charge PMOS that
parks the merge node (and hence the output) at Vdd during the negative
clock phase.  A logic-1 transfer therefore costs almost no delay, and
the slack this frees on the rising direction is spent on **asymmetric
high-Vt output drivers**:

* the devices that drive the *falling* output (I1's PMOS, I2's NMOS)
  stay nominal — they remain the critical path;
* the devices that drive the *rising* output (I1's NMOS, I2's PMOS) go
  high-Vt — the pre-charge does most of their work.

Leakage behaviour: with the merge node low (a transferred 0), the off
devices in the driver chain are exactly the high-Vt ones, so roughly
half of all data states leak at the high-Vt level — the source of the
DPC's ~44 % active-leakage saving.  In standby the sleep device forces
the merge node low and the pre-charge is gated off, so the whole driver
chain rests in that minimum-leakage state, giving the >90 % standby
saving the paper reports.  The cost is the pre-charge switching penalty,
which is worst when half of the transferred bits are 0 (50 % static
probability), which is why Table 1 flags its power figure as the worst
case.
"""

from __future__ import annotations

from ..technology.library import TechnologyLibrary
from ..technology.transistor import VtFlavor
from .base import CrossbarScheme, SchemeFeatures, VtPlan
from .ports import CrossbarConfig

__all__ = ["DualVtPrechargedCrossbar"]


class DualVtPrechargedCrossbar(CrossbarScheme):
    """Dual-Vt pre-charged crossbar (Table 1 column "DPC")."""

    name = "DPC"
    description = (
        "pre-charged crossbar with asymmetric high-Vt output drivers "
        "(rising direction high-Vt, falling direction nominal)"
    )

    def __init__(self, library: TechnologyLibrary, config: CrossbarConfig | None = None) -> None:
        features = SchemeFeatures(
            has_keeper=False,
            has_precharge=True,
            has_sleep=True,
            segmented=False,
            precharge_to_high=True,
        )
        vt_plan = VtPlan(
            pass_transistor=VtFlavor.NOMINAL,
            sleep=VtFlavor.HIGH,
            precharge=VtFlavor.HIGH,
            # Asymmetric drivers: rising-direction devices are high-Vt.
            driver1_nmos=VtFlavor.HIGH,
            driver1_pmos=VtFlavor.NOMINAL,
            driver2_nmos=VtFlavor.NOMINAL,
            driver2_pmos=VtFlavor.HIGH,
            input_driver=VtFlavor.NOMINAL,
        )
        super().__init__(library, config, features=features, vt_plan=vt_plan)
