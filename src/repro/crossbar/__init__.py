"""The paper's contribution: the five leakage-aware crossbar designs.

See ``DESIGN.md`` S5 and the per-module docstrings for the mapping to
the paper's Figures 1-3.
"""

from .base import CrossbarScheme, SchemeFeatures, VtPlan
from .dfc import DualVtFeedbackCrossbar
from .dpc import DualVtPrechargedCrossbar
from .factory import (
    SCHEME_ORDER,
    available_schemes,
    create_all_schemes,
    create_scheme,
    register_scheme,
)
from .ports import CrossbarConfig, PortDirection
from .sc import SingleVtCrossbar
from .sdfc import SegmentedDualVtFeedbackCrossbar
from .sdpc import SegmentedDualVtPrechargedCrossbar

__all__ = [
    "CrossbarConfig",
    "CrossbarScheme",
    "DualVtFeedbackCrossbar",
    "DualVtPrechargedCrossbar",
    "PortDirection",
    "SCHEME_ORDER",
    "SchemeFeatures",
    "SegmentedDualVtFeedbackCrossbar",
    "SegmentedDualVtPrechargedCrossbar",
    "SingleVtCrossbar",
    "VtPlan",
    "available_schemes",
    "create_all_schemes",
    "create_scheme",
    "register_scheme",
]
