"""SC — the single-Vt baseline crossbar.

The paper's base case: "the scheme SC, whose circuit is the same as the
DFC except for using a single nominal Vt".  Structurally it therefore
has the feedback keeper, the output driver chain and the sleep
transistor of Fig. 1, but every device — keeper and sleep included — is
a nominal-Vt device.  All Table 1 savings and penalties are measured
against this design.
"""

from __future__ import annotations

from ..technology.library import TechnologyLibrary
from ..technology.transistor import VtFlavor
from .base import CrossbarScheme, SchemeFeatures, VtPlan
from .ports import CrossbarConfig

__all__ = ["SingleVtCrossbar"]


class SingleVtCrossbar(CrossbarScheme):
    """Baseline single-Vt feedback crossbar (Table 1 column "SC")."""

    name = "SC"
    description = "single-Vt feedback crossbar baseline (same circuit as DFC, all nominal Vt)"

    def __init__(self, library: TechnologyLibrary, config: CrossbarConfig | None = None) -> None:
        features = SchemeFeatures(
            has_keeper=True,
            has_precharge=False,
            has_sleep=True,
            segmented=False,
        )
        vt_plan = VtPlan(
            pass_transistor=VtFlavor.NOMINAL,
            keeper=VtFlavor.NOMINAL,
            sleep=VtFlavor.NOMINAL,
            driver1_nmos=VtFlavor.NOMINAL,
            driver1_pmos=VtFlavor.NOMINAL,
            driver2_nmos=VtFlavor.NOMINAL,
            driver2_pmos=VtFlavor.NOMINAL,
            input_driver=VtFlavor.NOMINAL,
        )
        super().__init__(library, config, features=features, vt_plan=vt_plan)
