"""SDPC — Segmented Dual-Vt Pre-Charged Crossbar (paper Section 2.4, Fig. 3b).

The SDPC combines every mechanism in the paper:

* pre-charge of the merge/output path to Vdd (as in the DPC), so rising
  transfers are nearly free and there is no level-restoration
  requirement for the NMOS pass devices;
* segmentation of the row wire with per-segment sleep *and* per-segment
  pre-charge control (Fig. 3b shows a ``pre`` device on every segment);
* the slack from both mechanisms spent on high-Vt devices: "the longer
  slack in the paths in the shaded area allows all transistors in their
  output drivers to be of high Vt" — so, unlike the DPC's asymmetric
  drivers, the SDPC's whole output driver chain is high-Vt, and the
  near-segment crosspoints are high-Vt as well.

This yields the best active (~64 %) and standby (~96 %) leakage savings
in Table 1, with a small (~2 %) delay penalty — smaller than the SDFC's
because the pre-charge removes the slow rising direction that the
high-Vt drivers would otherwise penalise most.  Like the DPC, its
dynamic power is worst at 50 % static probability, so the paper targets
it at traffic whose data leans to one polarity.
"""

from __future__ import annotations

from ..technology.library import TechnologyLibrary
from ..technology.transistor import VtFlavor
from .base import CrossbarScheme, SchemeFeatures, VtPlan
from .ports import CrossbarConfig

__all__ = ["SegmentedDualVtPrechargedCrossbar"]


class SegmentedDualVtPrechargedCrossbar(CrossbarScheme):
    """Segmented dual-Vt pre-charged crossbar (Table 1 column "SDPC")."""

    name = "SDPC"
    description = (
        "segmented pre-charged crossbar: per-segment sleep and pre-charge, fully "
        "high-Vt output drivers and high-Vt near-segment crosspoints"
    )

    def __init__(self, library: TechnologyLibrary, config: CrossbarConfig | None = None) -> None:
        features = SchemeFeatures(
            has_keeper=False,
            has_precharge=True,
            has_sleep=True,
            segmented=True,
            precharge_to_high=True,
            far_segment_sleeps_when_unused=True,
        )
        vt_plan = VtPlan(
            pass_transistor=VtFlavor.NOMINAL,       # far-segment crosspoints (critical path 2)
            near_pass_transistor=VtFlavor.HIGH,
            sleep=VtFlavor.HIGH,
            precharge=VtFlavor.HIGH,
            segment_switch=VtFlavor.NOMINAL,
            driver1_nmos=VtFlavor.HIGH,
            driver1_pmos=VtFlavor.HIGH,
            driver2_nmos=VtFlavor.HIGH,
            driver2_pmos=VtFlavor.HIGH,
            input_driver=VtFlavor.NOMINAL,
        )
        super().__init__(library, config, features=features, vt_plan=vt_plan)
