"""DFC — Dual-Vt Feedback Crossbar (paper Section 2.1, Fig. 1).

The DFC keeps the SC circuit but moves the devices that are *not* on the
critical data path to the high-Vt flavor:

* the feedback keeper P1 — a weaker (high-Vt) keeper opposes the
  high-to-low transition less, which is why Table 1 shows the DFC's
  high-to-low delay *improving* over SC while its low-to-high delay
  (where the keeper helps complete the swing) degrades slightly;
* the sleep transistor N5 — it only acts in standby entry, so its speed
  is irrelevant; keeping it high-Vt avoids adding a new leakage path.

In standby the sleep transistor pulls the merge node to ground, which
collapses the voltage across the pass-transistor gate oxides and stops
their gate leakage — the mechanism the paper credits for the DFC's
standby savings.
"""

from __future__ import annotations

from ..technology.library import TechnologyLibrary
from ..technology.transistor import VtFlavor
from .base import CrossbarScheme, SchemeFeatures, VtPlan
from .ports import CrossbarConfig

__all__ = ["DualVtFeedbackCrossbar"]


class DualVtFeedbackCrossbar(CrossbarScheme):
    """Dual-Vt feedback crossbar (Table 1 column "DFC")."""

    name = "DFC"
    description = "dual-Vt feedback crossbar: high-Vt keeper and sleep device, nominal data path"

    def __init__(self, library: TechnologyLibrary, config: CrossbarConfig | None = None) -> None:
        features = SchemeFeatures(
            has_keeper=True,
            has_precharge=False,
            has_sleep=True,
            segmented=False,
        )
        vt_plan = VtPlan(
            pass_transistor=VtFlavor.NOMINAL,
            keeper=VtFlavor.HIGH,
            sleep=VtFlavor.HIGH,
            driver1_nmos=VtFlavor.NOMINAL,
            driver1_pmos=VtFlavor.NOMINAL,
            driver2_nmos=VtFlavor.NOMINAL,
            driver2_pmos=VtFlavor.NOMINAL,
            input_driver=VtFlavor.NOMINAL,
        )
        super().__init__(library, config, features=features, vt_plan=vt_plan)
