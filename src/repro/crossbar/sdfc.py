"""SDFC — Segmented Dual-Vt Feedback Crossbar (paper Section 2.3, Fig. 3a).

Segmentation splits the merge (output row) wire into a near segment —
the crosspoints closest to the output driver, path 1 in Fig. 3a — and a
far segment (path 2), joined by a segment switch.  Three effects follow,
all modelled here:

* **Dynamic power** drops because a transfer from a near input only
  switches the near half of the row wire.
* **Active leakage** drops because the slack created by the shorter
  near path is spent on more high-Vt devices.  Following the paper's
  note that the gain comes from a "microarchitectural improvement in the
  output driver designs", the output driver chain (I1 and I2) is made
  high-Vt — segmentation shortens the merge-node RC enough that the
  slower driver still (almost) fits the timing budget, which is exactly
  the Table 1 trade: the SDFC carries the largest delay penalty (~5 %)
  and in exchange raises the active-leakage saving from the DFC's ~10 %
  to ~42 %.  The near-segment pass transistors are high-Vt as well.
* **Standby leakage** benefits twice: every segment has its own sleep
  transistor, and the far segment is put into standby even during active
  operation whenever the current transfer does not need it.

The far-segment crosspoints and the segment switch stay nominal: the far
path (path 2) is the new critical path and cannot afford slower devices.
"""

from __future__ import annotations

from ..technology.library import TechnologyLibrary
from ..technology.transistor import VtFlavor
from .base import CrossbarScheme, SchemeFeatures, VtPlan
from .ports import CrossbarConfig

__all__ = ["SegmentedDualVtFeedbackCrossbar"]


class SegmentedDualVtFeedbackCrossbar(CrossbarScheme):
    """Segmented dual-Vt feedback crossbar (Table 1 column "SDFC")."""

    name = "SDFC"
    description = (
        "segmented feedback crossbar: per-segment sleep, high-Vt near-segment "
        "crosspoints and high-Vt output drivers funded by the segmentation slack"
    )

    def __init__(self, library: TechnologyLibrary, config: CrossbarConfig | None = None) -> None:
        features = SchemeFeatures(
            has_keeper=True,
            has_precharge=False,
            has_sleep=True,
            segmented=True,
            far_segment_sleeps_when_unused=True,
        )
        vt_plan = VtPlan(
            pass_transistor=VtFlavor.NOMINAL,       # far-segment crosspoints (critical path 2)
            near_pass_transistor=VtFlavor.HIGH,      # path-1 slack converted to high Vt
            keeper=VtFlavor.HIGH,
            sleep=VtFlavor.HIGH,
            segment_switch=VtFlavor.NOMINAL,
            # The segmentation slack pays for a slower output driver: the
            # first stage goes fully high-Vt and the second stage's NMOS
            # (falling direction) does too.  The second stage's PMOS stays
            # nominal because the rising direction — already the slow one in
            # a feedback design, with the pass-transistor threshold drop and
            # the weak keeper completing the swing — cannot absorb more
            # delay; that remaining nominal device is what separates the
            # SDFC's saving from the SDPC's, where the pre-charge removes
            # the rising-direction constraint entirely.
            driver1_nmos=VtFlavor.HIGH,
            driver1_pmos=VtFlavor.HIGH,
            driver2_nmos=VtFlavor.HIGH,
            driver2_pmos=VtFlavor.NOMINAL,
            input_driver=VtFlavor.NOMINAL,
        )
        super().__init__(library, config, features=features, vt_plan=vt_plan)
