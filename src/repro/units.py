"""Engineering-unit helpers.

The library uses plain SI floats internally (seconds, metres, volts,
amperes, farads, ohms, watts, joules).  This module provides:

* multiplicative constants (``NANO``, ``PICO``, ...) so call sites read
  naturally (``10 * PICO`` farads, ``61.4 * PICO`` seconds);
* conversion helpers for the units the paper reports results in
  (picoseconds, milliwatts, microns);
* :func:`format_si` / :func:`parse_si` for human-readable engineering
  notation used by the reporting layer.

Keeping everything in SI avoids an entire class of unit bugs and keeps
numpy vectorisation trivial; the only places non-SI numbers appear are
the formatting boundary (reports, tables) and the technology data tables
whose sources quote nm / µm values.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# SI prefixes (multiply a value expressed in the prefixed unit to obtain SI).
# ---------------------------------------------------------------------------
YOCTO = 1e-24
ZEPTO = 1e-21
ATTO = 1e-18
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
CENTI = 1e-2
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

# Physical constants used by the device models.
BOLTZMANN = 1.380649e-23  # J / K
ELEMENTARY_CHARGE = 1.602176634e-19  # C
VACUUM_PERMITTIVITY = 8.8541878128e-12  # F / m
ZERO_CELSIUS_IN_KELVIN = 273.15

_PREFIXES = [
    (1e-24, "y"),
    (1e-21, "z"),
    (1e-18, "a"),
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
    (1e12, "T"),
]

_PREFIX_BY_SYMBOL = {symbol: scale for scale, symbol in _PREFIXES if symbol}


def thermal_voltage(temperature_kelvin: float) -> float:
    """Return ``kT/q`` in volts for the given absolute temperature.

    At 300 K this is approximately 25.85 mV; the sub-threshold leakage
    model uses it as the exponential slope denominator.
    """
    if temperature_kelvin <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_kelvin} K")
    return BOLTZMANN * temperature_kelvin / ELEMENTARY_CHARGE


def celsius_to_kelvin(temperature_celsius: float) -> float:
    """Convert a Celsius temperature to Kelvin."""
    kelvin = temperature_celsius + ZERO_CELSIUS_IN_KELVIN
    if kelvin <= 0:
        raise ValueError(f"temperature below absolute zero: {temperature_celsius} C")
    return kelvin


def seconds_to_picoseconds(value_seconds: float) -> float:
    """Convert seconds to picoseconds (the unit Table 1 reports delays in)."""
    return value_seconds / PICO


def picoseconds_to_seconds(value_picoseconds: float) -> float:
    """Convert picoseconds to seconds."""
    return value_picoseconds * PICO


def watts_to_milliwatts(value_watts: float) -> float:
    """Convert watts to milliwatts (the unit Table 1 reports power in)."""
    return value_watts / MILLI


def milliwatts_to_watts(value_milliwatts: float) -> float:
    """Convert milliwatts to watts."""
    return value_milliwatts * MILLI


def meters_to_microns(value_meters: float) -> float:
    """Convert metres to microns."""
    return value_meters / MICRO


def microns_to_meters(value_microns: float) -> float:
    """Convert microns to metres."""
    return value_microns * MICRO


def nanometers_to_meters(value_nanometers: float) -> float:
    """Convert nanometres to metres."""
    return value_nanometers * NANO


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering SI prefix.

    >>> format_si(61.4e-12, "s")
    '61.4ps'
    >>> format_si(0.18281, "W")
    '183mW'
    >>> format_si(0.0, "A")
    '0A'
    """
    if value == 0:
        return f"0{unit}"
    if math.isnan(value):
        return f"nan{unit}"
    if math.isinf(value):
        sign = "-" if value < 0 else ""
        return f"{sign}inf{unit}"
    magnitude = abs(value)
    chosen_scale, chosen_symbol = _PREFIXES[0]
    for scale, symbol in _PREFIXES:
        if magnitude >= scale:
            chosen_scale, chosen_symbol = scale, symbol
    scaled = value / chosen_scale
    text = f"{scaled:.{digits}g}"
    return f"{text}{chosen_symbol}{unit}"


def parse_si(text: str, unit: str = "") -> float:
    """Parse an engineering-notation string produced by :func:`format_si`.

    >>> parse_si('61.4ps', 's')
    6.14e-11
    >>> parse_si('3GHz', 'Hz')
    3000000000.0
    """
    body = text.strip()
    if unit and body.endswith(unit):
        body = body[: -len(unit)]
    body = body.strip()
    if not body:
        raise ValueError(f"cannot parse empty quantity from {text!r}")
    scale = 1.0
    if body[-1] in _PREFIX_BY_SYMBOL and not body[-1].isdigit():
        scale = _PREFIX_BY_SYMBOL[body[-1]]
        body = body[:-1]
    try:
        return float(body) * scale
    except ValueError as exc:
        raise ValueError(f"cannot parse quantity {text!r}") from exc
