"""Lumped pi reduction of a distributed wire.

A pi model places half of the wire capacitance at each end of the total
series resistance.  It matches the first two moments of the distributed
line, which is all the Elmore-based delay analysis consumes; the delay
layer uses it when it wants a closed-form expression rather than a
ladder in an RC tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TechnologyError

__all__ = ["PiModel"]


@dataclass(frozen=True)
class PiModel:
    """The C/2 - R - C/2 lumped equivalent of a wire."""

    near_capacitance: float
    resistance: float
    far_capacitance: float

    def __post_init__(self) -> None:
        if self.near_capacitance < 0 or self.far_capacitance < 0:
            raise TechnologyError("pi-model capacitances cannot be negative")
        if self.resistance < 0:
            raise TechnologyError("pi-model resistance cannot be negative")

    @property
    def total_capacitance(self) -> float:
        """Total wire capacitance (farads)."""
        return self.near_capacitance + self.far_capacitance

    def driver_stage_delay(self, driver_resistance: float, load_capacitance: float) -> float:
        """50 % delay of a driver pushing through this pi into a load.

        Closed form: ``0.69 Rd (Cn + Cf + CL) + 0.69 R (Cf + CL)``; the
        near capacitance never sees the wire resistance.
        """
        if driver_resistance < 0 or load_capacitance < 0:
            raise TechnologyError("driver resistance and load capacitance cannot be negative")
        ln2 = 0.6931471805599453
        return ln2 * (
            driver_resistance * (self.total_capacitance + load_capacitance)
            + self.resistance * (self.far_capacitance + load_capacitance)
        )

    def cascaded_with(self, other: "PiModel") -> "PiModel":
        """Pi model of this wire followed immediately by ``other``.

        The merge keeps total R and C exact and the boundary capacitance
        split between the two sides, which preserves the Elmore delay of
        the cascade.
        """
        return PiModel(
            near_capacitance=self.near_capacitance,
            resistance=self.resistance + other.resistance,
            far_capacitance=self.far_capacitance + other.total_capacitance,
        )
