"""Interconnect substrate: wires, pi models, buses, repeaters, crosstalk, segmentation.

See ``DESIGN.md`` S3.
"""

from .bus import Bus, BusTransition
from .crosstalk import (
    NeighbourActivity,
    average_miller_factor,
    coupling_delay_factor,
    miller_factor,
    worst_case_miller_factor,
)
from .pi_model import PiModel
from .repeater import RepeaterDesign, optimal_repeaters, repeated_wire_delay
from .segmentation import SegmentationPlan, SegmentedWire
from .wire import Wire

__all__ = [
    "Bus",
    "BusTransition",
    "NeighbourActivity",
    "PiModel",
    "RepeaterDesign",
    "SegmentationPlan",
    "SegmentedWire",
    "Wire",
    "average_miller_factor",
    "coupling_delay_factor",
    "miller_factor",
    "optimal_repeaters",
    "repeated_wire_delay",
    "worst_case_miller_factor",
]
