"""Wire segmentation helpers for the SDFC/SDPC schemes.

Figure 3 of the paper splits the crossbar into a near region (path 1)
and a far region (path 2): the output wire is broken into segments, each
with its own sleep (and, for SDPC, pre-charge) control, and a signal
only traverses the segments between its input column and the output
driver.  The benefits are

* the average switched wire capacitance drops (dynamic power),
* the near-segment paths gain slack that the Vt assignment converts to
  high-Vt devices (active leakage), and
* an idle far segment can be put into standby even while the near
  segment is still carrying traffic (standby leakage).

This module owns the geometric bookkeeping: how a wire of a given length
is divided, which inputs map to which segment, and what fraction of
traffic only needs the near segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CrossbarError
from .wire import Wire

__all__ = ["SegmentationPlan", "SegmentedWire"]


@dataclass(frozen=True)
class SegmentationPlan:
    """How a crossbar output wire is divided into segments.

    Attributes
    ----------
    segment_count:
        Number of segments (the paper's Fig. 3 uses two).
    near_fraction:
        Fraction of the wire length in the near (path 1) segment.
    inputs_on_near_segment:
        Number of crossbar input columns whose crosspoints attach to the
        near segment.
    total_inputs:
        Total number of input columns attached to the output wire.
    """

    segment_count: int = 2
    near_fraction: float = 0.5
    inputs_on_near_segment: int = 2
    total_inputs: int = 4

    def __post_init__(self) -> None:
        if self.segment_count < 2:
            raise CrossbarError("a segmented wire needs at least two segments")
        if not 0.0 < self.near_fraction < 1.0:
            raise CrossbarError("near fraction must be strictly between 0 and 1")
        if not 0 < self.inputs_on_near_segment < self.total_inputs:
            raise CrossbarError(
                "the near segment must host at least one input and leave at least one for the far segment"
            )

    @property
    def far_fraction(self) -> float:
        """Fraction of wire length in the far (path 2) region."""
        return 1.0 - self.near_fraction

    @property
    def near_traffic_fraction(self) -> float:
        """Probability a uniformly chosen input only uses the near segment."""
        return self.inputs_on_near_segment / self.total_inputs

    def average_switched_fraction(self) -> float:
        """Average fraction of wire capacitance switched per transfer.

        Near-segment traffic switches only ``near_fraction``; far traffic
        switches everything.
        """
        near = self.near_traffic_fraction
        return near * self.near_fraction + (1.0 - near) * 1.0


@dataclass(frozen=True)
class SegmentedWire:
    """A wire divided into a near and a far segment."""

    near: Wire
    far: Wire
    plan: SegmentationPlan

    @classmethod
    def from_wire(cls, wire: Wire, plan: SegmentationPlan) -> "SegmentedWire":
        """Divide ``wire`` according to ``plan``."""
        near, far = wire.split([plan.near_fraction, plan.far_fraction])
        return cls(near=near, far=far, plan=plan)

    @property
    def total_resistance(self) -> float:
        """Series resistance of both segments (ohms)."""
        return self.near.resistance + self.far.resistance

    @property
    def total_capacitance(self) -> float:
        """Total capacitance of both segments (farads)."""
        return self.near.capacitance + self.far.capacitance

    def average_switched_capacitance(self) -> float:
        """Traffic-weighted switched capacitance per transfer (farads)."""
        near_only = self.near.capacitance
        full = self.total_capacitance
        near_traffic = self.plan.near_traffic_fraction
        return near_traffic * near_only + (1.0 - near_traffic) * full
