"""Physical wires: geometry-bound RC segments.

A :class:`Wire` binds a length and a layer's per-unit-length electrical
model into the quantities the delay and power analyses need: total R and
C, lumped pi models, and ladder insertion into an
:class:`~repro.circuit.rc_network.RCTree`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TechnologyError
from ..technology.bptm import WireElectricalModel
from ..technology.library import TechnologyLibrary
from .pi_model import PiModel

__all__ = ["Wire"]


@dataclass(frozen=True)
class Wire:
    """A single wire of a given length on a given layer.

    Attributes
    ----------
    length:
        Routed length in metres.
    model:
        Per-unit-length electrical model of the layer the wire runs on.
    neighbours:
        Number of same-layer aggressors (0-2) used for the capacitance
        roll-up; crossbar datapath wires run in a dense bus so the
        default is 2.
    """

    length: float
    model: WireElectricalModel
    neighbours: int = 2

    def __post_init__(self) -> None:
        if self.length < 0:
            raise TechnologyError(f"wire length cannot be negative, got {self.length}")
        if self.neighbours not in (0, 1, 2):
            raise TechnologyError("neighbours must be 0, 1 or 2")

    @classmethod
    def on_layer(cls, library: TechnologyLibrary, length: float, layer: str = "intermediate",
                 neighbours: int = 2) -> "Wire":
        """Build a wire from a technology library and layer name."""
        return cls(length=length, model=library.wire_model(layer), neighbours=neighbours)

    # -- electrical totals -------------------------------------------------------
    @property
    def resistance(self) -> float:
        """Total series resistance (ohms)."""
        return self.model.resistance(self.length)

    @property
    def capacitance(self) -> float:
        """Total capacitance with quiet neighbours (farads)."""
        return self.model.capacitance(self.length, self.neighbours)

    def switching_capacitance(self, miller_factor: float = 1.0) -> float:
        """Capacitance seen by a switching event with the given Miller factor."""
        return self.model.capacitance(self.length, self.neighbours, miller_factor)

    # -- reduced-order views --------------------------------------------------------
    def pi_model(self) -> PiModel:
        """Symmetric pi reduction (C/2 - R - C/2)."""
        return PiModel(
            near_capacitance=self.capacitance / 2.0,
            resistance=self.resistance,
            far_capacitance=self.capacitance / 2.0,
        )

    def split(self, fractions: list[float]) -> list["Wire"]:
        """Split this wire into consecutive pieces of the given length fractions.

        Used by the segmented schemes: a crossbar output wire becomes a
        near segment and a far segment.  Fractions must be positive and
        sum to 1 (within rounding).
        """
        if not fractions:
            raise TechnologyError("at least one fraction is required")
        if any(fraction <= 0 for fraction in fractions):
            raise TechnologyError("all split fractions must be positive")
        total = sum(fractions)
        if abs(total - 1.0) > 1e-9:
            raise TechnologyError(f"split fractions must sum to 1, got {total}")
        return [
            Wire(length=self.length * fraction, model=self.model, neighbours=self.neighbours)
            for fraction in fractions
        ]

    def add_to_tree(self, tree, from_node: str, to_node: str, segments: int = 5) -> None:
        """Insert this wire into an RC tree as a distributed ladder."""
        tree.add_wire(from_node, to_node, self.resistance, self.capacitance, segments)
