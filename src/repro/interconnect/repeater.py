"""Repeater insertion for long wires.

Crossbar-internal wires are short enough to drive directly, but the
inter-router links of the NoC substrate are not: a 1-2 mm link at 45 nm
wants repeaters.  This module implements the classic closed-form optimal
repeater sizing/spacing (Bakoglu) and the delay/energy of a repeated
wire, which the NoC power model uses for link power and which the
design-space example uses to show where segmentation stops paying off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import TechnologyError
from ..technology.library import TechnologyLibrary
from ..technology.transistor import Polarity, VtFlavor
from .wire import Wire

__all__ = ["RepeaterDesign", "optimal_repeaters", "repeated_wire_delay"]


@dataclass(frozen=True)
class RepeaterDesign:
    """An inserted-repeater solution for one wire."""

    stage_count: int
    repeater_width: float
    stage_delay: float
    total_delay: float
    total_repeater_capacitance: float

    def __post_init__(self) -> None:
        if self.stage_count < 1:
            raise TechnologyError("a repeated wire has at least one stage")


def _unit_driver_figures(library: TechnologyLibrary, flavor: VtFlavor) -> tuple[float, float]:
    """(resistance*width, capacitance/width) figures of a unit inverter.

    A CMOS repeater of width ``W`` (NMOS width ``W``, PMOS ``2W``) has
    output resistance ``r_unit / W`` and input capacitance ``c_unit * W``.
    """
    reference_width = 1e-6
    nmos = library.make_transistor(Polarity.NMOS, flavor, reference_width)
    pmos = library.make_transistor(Polarity.PMOS, flavor, 2.0 * reference_width)
    resistance = 0.5 * (nmos.effective_resistance() + pmos.effective_resistance())
    capacitance = nmos.gate_capacitance() + pmos.gate_capacitance()
    return resistance * reference_width, capacitance / reference_width


def optimal_repeaters(library: TechnologyLibrary, wire: Wire,
                      flavor: VtFlavor = VtFlavor.NOMINAL) -> RepeaterDesign:
    """Classic optimal repeater count and size for ``wire``.

    ``k_opt = sqrt(0.4 R_w C_w / (0.7 r_unit c_unit))`` stages of size
    ``h_opt = sqrt(r_unit C_w / (R_w c_unit))`` (in units of the minimum
    inverter), clamped to at least one stage.
    """
    r_unit_w, c_unit_per_w = _unit_driver_figures(library, flavor)
    r_wire = wire.resistance
    c_wire = wire.capacitance
    if r_wire <= 0 or c_wire <= 0:
        raise TechnologyError("repeater insertion needs a wire with positive R and C")
    minimum_width = library.minimum_width
    r_unit = r_unit_w / minimum_width
    c_unit = c_unit_per_w * minimum_width
    stages = max(1, round(math.sqrt(0.4 * r_wire * c_wire / (0.7 * r_unit * c_unit))))
    size = math.sqrt(r_unit * c_wire / (r_wire * c_unit))
    width = max(minimum_width, size * minimum_width)
    stage_wire = Wire(length=wire.length / stages, model=wire.model, neighbours=wire.neighbours)
    driver_resistance = r_unit_w / width
    driver_capacitance = c_unit_per_w * width
    stage_delay = 0.69 * (
        driver_resistance * (stage_wire.capacitance + driver_capacitance)
        + stage_wire.resistance * (0.5 * stage_wire.capacitance + driver_capacitance)
    )
    return RepeaterDesign(
        stage_count=stages,
        repeater_width=width,
        stage_delay=stage_delay,
        total_delay=stages * stage_delay,
        total_repeater_capacitance=stages * driver_capacitance,
    )


def repeated_wire_delay(library: TechnologyLibrary, wire: Wire,
                        flavor: VtFlavor = VtFlavor.NOMINAL) -> float:
    """Total 50 % delay (seconds) of the wire after optimal repeater insertion."""
    return optimal_repeaters(library, wire, flavor).total_delay
