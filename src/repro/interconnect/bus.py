"""Multi-bit bus model.

A crossbar input or output is a 128-bit bus.  The bus model aggregates
per-wire R/C, accounts for coupling between adjacent bits via Miller
factors, and computes switching energy for a given pair of consecutive
data words — which is what the dynamic-power analysis and the NoC-level
power roll-up integrate over traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TechnologyError
from ..technology.bptm import WireElectricalModel
from .crosstalk import NeighbourActivity, miller_factor
from .wire import Wire

__all__ = ["Bus", "BusTransition"]


@dataclass(frozen=True)
class BusTransition:
    """Energy-relevant summary of one bus word transition."""

    switched_bits: int
    coupling_events: int
    energy: float


class Bus:
    """``width`` parallel wires of identical geometry.

    The bus assumes the standard on-chip layout: bit *i* couples to bits
    *i-1* and *i+1*; the outermost bits see one neighbour plus a quiet
    shield/track.
    """

    def __init__(self, width: int, length: float, model: WireElectricalModel) -> None:
        if width < 1:
            raise TechnologyError(f"bus width must be at least 1, got {width}")
        if length < 0:
            raise TechnologyError("bus length cannot be negative")
        self.width = width
        self.length = length
        self.model = model

    @property
    def wire(self) -> Wire:
        """A representative single wire of the bus."""
        return Wire(length=self.length, model=self.model, neighbours=2)

    def total_ground_capacitance(self) -> float:
        """Sum of all ground capacitance (farads)."""
        return self.width * self.model.ground_capacitance_per_meter * self.length

    def total_coupling_capacitance(self) -> float:
        """Sum of all internal coupling capacitance (farads)."""
        internal_gaps = max(self.width - 1, 0)
        return internal_gaps * self.model.coupling_capacitance_per_meter * self.length

    def per_bit_switching_capacitance(self, miller: float = 1.0) -> float:
        """Average capacitance one switching bit must charge."""
        ground = self.model.ground_capacitance_per_meter * self.length
        coupling = 2.0 * self.model.coupling_capacitance_per_meter * self.length
        return ground + miller * coupling

    def transition_energy(self, previous_word: int, next_word: int, supply_voltage: float) -> BusTransition:
        """Energy to move the bus from ``previous_word`` to ``next_word``.

        Bits are numbered LSB-first.  A bit that rises charges its ground
        capacitance; each adjacent pair that toggles in opposite
        directions charges its coupling capacitance twice (Miller 2),
        pairs toggling together charge it zero times, and a toggling bit
        next to a quiet bit charges it once.
        """
        if supply_voltage <= 0:
            raise TechnologyError("supply voltage must be positive")
        if previous_word < 0 or next_word < 0:
            raise TechnologyError("bus words are unsigned integers")
        mask = (1 << self.width) - 1
        previous_word &= mask
        next_word &= mask
        ground_per_bit = self.model.ground_capacitance_per_meter * self.length
        coupling_per_gap = self.model.coupling_capacitance_per_meter * self.length
        energy = 0.0
        switched = 0
        coupling_events = 0
        deltas = []
        for bit in range(self.width):
            was = (previous_word >> bit) & 1
            now = (next_word >> bit) & 1
            delta = now - was
            deltas.append(delta)
            if delta != 0:
                switched += 1
            if delta > 0:
                energy += ground_per_bit * supply_voltage**2
        for gap in range(self.width - 1):
            left, right = deltas[gap], deltas[gap + 1]
            if left == 0 and right == 0:
                continue
            if left * right < 0:
                activity = NeighbourActivity.OPPOSITE_DIRECTION
            elif left * right > 0:
                activity = NeighbourActivity.SAME_DIRECTION
            else:
                activity = NeighbourActivity.QUIET
            factor = miller_factor(activity)
            if factor > 0:
                coupling_events += 1
                energy += factor * coupling_per_gap * supply_voltage**2
        return BusTransition(switched_bits=switched, coupling_events=coupling_events, energy=energy)

    def random_data_energy_per_cycle(self, supply_voltage: float, activity_factor: float = 0.5) -> float:
        """Expected switching energy per cycle under random data.

        Under random data each bit rises with probability ``activity/2``
        per cycle... more precisely, the expected energy is
        ``width * activity * (Cg + Cc_avg) * Vdd^2 / 2`` with the average
        Miller factor of 1 (random neighbours).  The factor 1/2 reflects
        that only rising transitions draw ground-capacitance energy.
        """
        if not 0.0 <= activity_factor <= 1.0:
            raise TechnologyError("activity factor must be in [0, 1]")
        per_bit = self.per_bit_switching_capacitance(miller=1.0)
        return 0.5 * self.width * activity_factor * per_bit * supply_voltage**2
