"""Coupling (crosstalk) effects on delay and energy.

The crossbar datapath is a dense bus: each wire has two same-layer
neighbours, and the effective capacitance it must charge depends on what
those neighbours are doing (the Miller effect).  The reference [2] the
paper builds on (Deogun et al., DAC 2004) is a bus-encoding scheme that
trades exactly this coupling energy against leakage; reproducing the
Miller bookkeeping lets the bus model report the same quantities.
"""

from __future__ import annotations

import enum

from ..errors import TechnologyError

__all__ = ["NeighbourActivity", "miller_factor", "worst_case_miller_factor", "coupling_delay_factor"]


class NeighbourActivity(enum.Enum):
    """What a neighbouring wire does during the victim's transition."""

    QUIET = "quiet"
    SAME_DIRECTION = "same_direction"
    OPPOSITE_DIRECTION = "opposite_direction"


#: Effective multiplier on the coupling capacitance for each activity.
_MILLER_FACTORS = {
    NeighbourActivity.QUIET: 1.0,
    NeighbourActivity.SAME_DIRECTION: 0.0,
    NeighbourActivity.OPPOSITE_DIRECTION: 2.0,
}


def miller_factor(activity: NeighbourActivity) -> float:
    """Miller multiplier for a single neighbour's activity."""
    try:
        return _MILLER_FACTORS[activity]
    except KeyError as exc:  # pragma: no cover - enum exhausts the domain
        raise TechnologyError(f"unknown neighbour activity {activity!r}") from exc


def worst_case_miller_factor() -> float:
    """The factor used for worst-case (both neighbours opposing) timing."""
    return _MILLER_FACTORS[NeighbourActivity.OPPOSITE_DIRECTION]


def average_miller_factor(probability_quiet: float = 0.5, probability_same: float = 0.25,
                          probability_opposite: float = 0.25) -> float:
    """Activity-weighted average Miller factor for energy estimation."""
    total = probability_quiet + probability_same + probability_opposite
    if abs(total - 1.0) > 1e-9:
        raise TechnologyError("neighbour activity probabilities must sum to 1")
    if min(probability_quiet, probability_same, probability_opposite) < 0:
        raise TechnologyError("probabilities cannot be negative")
    return (
        probability_quiet * _MILLER_FACTORS[NeighbourActivity.QUIET]
        + probability_same * _MILLER_FACTORS[NeighbourActivity.SAME_DIRECTION]
        + probability_opposite * _MILLER_FACTORS[NeighbourActivity.OPPOSITE_DIRECTION]
    )


def coupling_delay_factor(ground_capacitance: float, coupling_capacitance: float,
                          miller: float) -> float:
    """Delay multiplier relative to the quiet-neighbour case.

    The victim's delay scales with its total switched capacitance; with
    a coupling fraction ``x = Cc / (Cg + Cc)`` and a Miller factor ``m``,
    the multiplier is ``(Cg + m*Cc) / (Cg + Cc)``.
    """
    if ground_capacitance <= 0 or coupling_capacitance < 0:
        raise TechnologyError("capacitances must be positive (ground) / non-negative (coupling)")
    if miller < 0:
        raise TechnologyError("Miller factor cannot be negative")
    quiet = ground_capacitance + coupling_capacitance
    actual = ground_capacitance + miller * coupling_capacitance
    return actual / quiet
