"""Design-space exploration helpers (legacy single-parameter API).

The paper fixes one design point; a downstream user adopting these
crossbars will immediately ask how the conclusions move with technology
node, temperature, corner, flit width or crossbar radix.  This module
keeps the original one-parameter ``sweep_parameter`` API as a thin
wrapper over :mod:`repro.engine`, which generalises it to full grids,
caching and parallel execution — new code should use the engine
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.evaluator import Evaluator
from ..engine.grid import SWEEPABLE_FIELDS
from ..engine.grid import DesignSpace as _DesignSpace
from ..errors import ConfigurationError
from .comparison import SchemeComparison
from .config import ExperimentConfig

__all__ = ["SweepPoint", "DesignSpaceResult", "sweep_parameter"]

#: Legacy alias; the engine owns the canonical table.
_SWEEPABLE_FIELDS = SWEEPABLE_FIELDS


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    parameter: str
    value: object
    comparison: SchemeComparison


@dataclass
class DesignSpaceResult:
    """All points of one sweep."""

    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, scheme: str, metric: str) -> list[tuple[object, float]]:
        """Extract (parameter value, metric) pairs for one scheme.

        ``metric`` is any key of the comparison records (e.g.
        ``"total_power_mw"`` or ``"active_leakage_saving_percent"``).
        """
        result: list[tuple[object, float]] = []
        for point in self.points:
            records = {record["scheme"]: record for record in point.comparison.as_records()}
            if scheme not in records:
                raise ConfigurationError(f"scheme {scheme!r} missing from sweep point")
            if metric not in records[scheme]:
                raise ConfigurationError(f"unknown metric {metric!r}")
            result.append((point.value, float(records[scheme][metric])))
        return result


def sweep_parameter(
    parameter: str,
    values: list[object],
    base_config: ExperimentConfig | None = None,
    scheme_names: list[str] | None = None,
) -> DesignSpaceResult:
    """Run the full scheme comparison for every value of ``parameter``.

    Thin wrapper over :class:`repro.engine.Evaluator` with the serial
    executor, so every point carries its live
    :class:`~repro.core.comparison.SchemeComparison`.  ``parameter`` may
    be a flat field, a dotted config path (``"crossbar.port_count"``) or
    an unambiguous alias; the result reports the name as given.
    """
    space = _DesignSpace.single_sweep(parameter, values)
    canonical = space.parameters[0]
    evaluator = Evaluator(base_config=base_config, scheme_names=scheme_names,
                          executor="serial")
    results = evaluator.evaluate(space)
    result = DesignSpaceResult(parameter=parameter)
    for point in results:
        assert point.comparison is not None  # serial executor keeps comparisons
        result.points.append(SweepPoint(parameter=parameter,
                                        value=point.overrides[canonical],
                                        comparison=point.comparison))
    return result
