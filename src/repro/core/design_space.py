"""Design-space exploration helpers.

The paper fixes one design point; a downstream user adopting these
crossbars will immediately ask how the conclusions move with technology
node, temperature, corner, flit width or crossbar radix.  The sweeps
here answer that with the same evaluation machinery used for Table 1, so
the answers are consistent with the headline reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .comparison import SchemeComparison, compare_schemes
from .config import ExperimentConfig

__all__ = ["SweepPoint", "DesignSpaceResult", "sweep_parameter"]

#: Experiment fields a sweep may vary, with a note on what they exercise.
_SWEEPABLE_FIELDS = {
    "technology_node": "roadmap scaling of wires and devices",
    "temperature_celsius": "leakage's exponential temperature dependence",
    "corner": "process spread",
    "clock_frequency": "how much slack the timing budget leaves for high Vt",
    "static_probability": "data polarity (the pre-charged schemes' weak spot)",
    "toggle_activity": "switching intensity",
}


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    parameter: str
    value: object
    comparison: SchemeComparison


@dataclass
class DesignSpaceResult:
    """All points of one sweep."""

    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, scheme: str, metric: str) -> list[tuple[object, float]]:
        """Extract (parameter value, metric) pairs for one scheme.

        ``metric`` is any key of the comparison records (e.g.
        ``"total_power_mw"`` or ``"active_leakage_saving_percent"``).
        """
        result: list[tuple[object, float]] = []
        for point in self.points:
            records = {record["scheme"]: record for record in point.comparison.as_records()}
            if scheme not in records:
                raise ConfigurationError(f"scheme {scheme!r} missing from sweep point")
            if metric not in records[scheme]:
                raise ConfigurationError(f"unknown metric {metric!r}")
            result.append((point.value, float(records[scheme][metric])))
        return result


def sweep_parameter(
    parameter: str,
    values: list[object],
    base_config: ExperimentConfig | None = None,
    scheme_names: list[str] | None = None,
) -> DesignSpaceResult:
    """Re-run the full scheme comparison for every value of ``parameter``."""
    if parameter not in _SWEEPABLE_FIELDS:
        known = ", ".join(sorted(_SWEEPABLE_FIELDS))
        raise ConfigurationError(f"cannot sweep {parameter!r}; sweepable fields: {known}")
    if not values:
        raise ConfigurationError("a sweep needs at least one value")
    config = base_config if base_config is not None else ExperimentConfig()
    result = DesignSpaceResult(parameter=parameter)
    for value in values:
        point_config = config.with_overrides(**{parameter: value})
        comparison = compare_schemes(point_config, scheme_names=scheme_names)
        result.points.append(SweepPoint(parameter=parameter, value=value, comparison=comparison))
    return result
