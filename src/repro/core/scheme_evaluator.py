"""Single-scheme evaluation driver.

Combines an :class:`~repro.core.config.ExperimentConfig` with a scheme
name and produces the full :class:`~repro.power.savings.SchemeEvaluation`
plus the structural inventory — everything the comparison engine,
benchmarks and examples consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.netlist import NetlistStatistics
from ..crossbar.base import CrossbarScheme
from ..crossbar.factory import create_scheme
from ..power.savings import SchemeEvaluation, evaluate_scheme
from ..technology.library import TechnologyLibrary
from .config import ExperimentConfig

__all__ = ["SchemeResult", "SchemeEvaluator"]


@dataclass(frozen=True)
class SchemeResult:
    """Evaluation plus structural inventory for one scheme."""

    scheme_name: str
    evaluation: SchemeEvaluation
    single_bit_inventory: NetlistStatistics

    @property
    def high_vt_device_fraction(self) -> float:
        """Fraction of devices in one output path that are high-Vt."""
        return self.single_bit_inventory.high_vt_fraction


class SchemeEvaluator:
    """Evaluates schemes under one experiment configuration.

    The evaluator caches the technology library (building it is cheap but
    the object is shared by every scheme so identity matters for
    comparisons) and instantiates schemes on demand.
    """

    def __init__(self, config: ExperimentConfig | None = None,
                 library: TechnologyLibrary | None = None) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self.library = library if library is not None else self.config.build_library()

    def build_scheme(self, name: str) -> CrossbarScheme:
        """Instantiate a crossbar scheme under this experiment's configuration."""
        return create_scheme(name, self.library, self.config.crossbar)

    def evaluate(self, name: str) -> SchemeResult:
        """Fully evaluate one scheme."""
        scheme = self.build_scheme(name)
        evaluation = evaluate_scheme(
            scheme,
            static_probability=self.config.static_probability,
            toggle_activity=self.config.toggle_activity,
            frequency=self.config.clock_frequency,
        )
        return SchemeResult(
            scheme_name=scheme.name,
            evaluation=evaluation,
            single_bit_inventory=scheme.single_bit_statistics,
        )
