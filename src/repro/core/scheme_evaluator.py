"""Single-scheme evaluation driver.

Combines an :class:`~repro.core.config.ExperimentConfig` with a scheme
name and produces the full :class:`~repro.power.savings.SchemeEvaluation`
plus the structural inventory — everything the comparison engine,
benchmarks and examples consume.

Structural memoisation
----------------------
Building a :class:`~repro.crossbar.base.CrossbarScheme` resolves wire
geometry, device sizing and the technology library — none of which
depend on the activity scalars (``static_probability``,
``toggle_activity``).  A process-wide bounded cache therefore shares
libraries keyed by their technology point and built schemes keyed by
(library, crossbar config, scheme name), so a design-space sweep that
varies only non-structural scalars builds each scheme's geometry once
instead of once per point.  Schemes are analytically pure (every
activity-dependent method takes the scalars as arguments), which is what
makes the sharing sound.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..circuit.netlist import NetlistStatistics
from ..crossbar.base import CrossbarScheme
from ..crossbar.factory import create_scheme
from ..crossbar.ports import CrossbarConfig
from ..power.savings import SchemeEvaluation, evaluate_scheme
from ..technology.library import TechnologyLibrary
from .config import ExperimentConfig

__all__ = ["SchemeResult", "SchemeEvaluator", "StructuralCacheStats",
           "structural_cache_stats", "clear_structural_cache"]


@dataclass(frozen=True)
class _LibraryKey:
    """The experiment scalars a technology library depends on."""

    technology_node: str
    temperature_celsius: float
    corner: str
    clock_frequency: float

    @classmethod
    def of(cls, config: ExperimentConfig) -> "_LibraryKey":
        return cls(
            technology_node=config.technology_node,
            temperature_celsius=config.temperature_celsius,
            corner=config.corner,
            clock_frequency=config.clock_frequency,
        )


@dataclass
class StructuralCacheStats:
    """Hit/miss accounting for the process-wide structural cache.

    ``kernel_hits`` / ``kernel_misses`` aggregate the leakage-kernel
    memo (:class:`repro.circuit.biasing.LeakageKernel`) across every
    library, so one stats object describes the whole fast path: shared
    structure (libraries, schemes) and shared bias-point evaluations.
    """

    library_hits: int = 0
    library_misses: int = 0
    scheme_hits: int = 0
    scheme_misses: int = 0

    @property
    def kernel_hits(self) -> int:
        """Leakage-kernel memo hits, aggregated across all libraries."""
        from ..circuit.biasing import kernel_totals

        return kernel_totals().hits

    @property
    def kernel_misses(self) -> int:
        """Leakage-kernel memo misses (unique bias points evaluated)."""
        from ..circuit.biasing import kernel_totals

        return kernel_totals().misses

    @property
    def kernel_hit_rate(self) -> float:
        """Fraction of bias-point evaluations served from the memo."""
        from ..circuit.biasing import kernel_totals

        return kernel_totals().hit_rate

    def as_payload(self) -> dict:
        """JSON-safe snapshot of every counter (``GET /stats`` block)."""
        return {
            "library_hits": self.library_hits,
            "library_misses": self.library_misses,
            "scheme_hits": self.scheme_hits,
            "scheme_misses": self.scheme_misses,
            "kernel_hits": self.kernel_hits,
            "kernel_misses": self.kernel_misses,
            "kernel_hit_rate": self.kernel_hit_rate,
        }


class _StructuralCache:
    """Bounded LRU store of built libraries and schemes."""

    def __init__(self, max_libraries: int = 32, max_schemes: int = 256) -> None:
        self.max_libraries = max_libraries
        self.max_schemes = max_schemes
        self.stats = StructuralCacheStats()
        self._libraries: OrderedDict[_LibraryKey, TechnologyLibrary] = OrderedDict()
        self._schemes: OrderedDict[tuple[_LibraryKey, CrossbarConfig, str],
                                   CrossbarScheme] = OrderedDict()

    def library_for(self, config: ExperimentConfig) -> TechnologyLibrary:
        key = _LibraryKey.of(config)
        library = self._libraries.get(key)
        if library is not None:
            self._libraries.move_to_end(key)
            self.stats.library_hits += 1
            return library
        self.stats.library_misses += 1
        library = config.build_library()
        self._libraries[key] = library
        while len(self._libraries) > self.max_libraries:
            self._libraries.popitem(last=False)
        return library

    def scheme_for(self, library_key: _LibraryKey, library: TechnologyLibrary,
                   crossbar: CrossbarConfig, name: str) -> CrossbarScheme:
        key = (library_key, crossbar, name)
        scheme = self._schemes.get(key)
        if scheme is not None and scheme.library is library:
            self._schemes.move_to_end(key)
            self.stats.scheme_hits += 1
            return scheme
        self.stats.scheme_misses += 1
        scheme = create_scheme(name, library, crossbar)
        self._schemes[key] = scheme
        while len(self._schemes) > self.max_schemes:
            self._schemes.popitem(last=False)
        return scheme

    def clear(self) -> None:
        self._libraries.clear()
        self._schemes.clear()
        self.stats = StructuralCacheStats()


_STRUCTURAL_CACHE = _StructuralCache()


def structural_cache_stats() -> StructuralCacheStats:
    """Counters of the process-wide library/scheme structural cache."""
    return _STRUCTURAL_CACHE.stats


def clear_structural_cache() -> None:
    """Drop all memoised libraries and schemes (mainly for tests).

    Also zeroes the leakage-kernel counters — the process-wide totals
    *and* the per-kernel stats of any kernel still alive on a library a
    caller holds — so per-library stats remain a consistent share of
    the aggregate after the clear.  (Kernels on dropped libraries are
    garbage-collected with them.)
    """
    from ..circuit.biasing import reset_kernel_totals

    _STRUCTURAL_CACHE.clear()
    reset_kernel_totals()




@dataclass(frozen=True)
class SchemeResult:
    """Evaluation plus structural inventory for one scheme."""

    scheme_name: str
    evaluation: SchemeEvaluation
    single_bit_inventory: NetlistStatistics

    @property
    def high_vt_device_fraction(self) -> float:
        """Fraction of devices in one output path that are high-Vt."""
        return self.single_bit_inventory.high_vt_fraction


class SchemeEvaluator:
    """Evaluates schemes under one experiment configuration.

    The technology library and built schemes come from the process-wide
    structural cache (the library object is shared by every scheme, so
    identity matters for comparisons); activity-dependent analysis runs
    per call.  Pass ``library`` explicitly to bypass the cache, e.g. for
    a hand-modified library.
    """

    def __init__(self, config: ExperimentConfig | None = None,
                 library: TechnologyLibrary | None = None) -> None:
        self.config = config if config is not None else ExperimentConfig()
        if library is not None:
            self.library = library
            self._library_key = None
        else:
            self.library = _STRUCTURAL_CACHE.library_for(self.config)
            self._library_key = _LibraryKey.of(self.config)

    def build_scheme(self, name: str) -> CrossbarScheme:
        """Instantiate (or reuse) a crossbar scheme under this experiment's
        configuration."""
        if self._library_key is None:
            return create_scheme(name, self.library, self.config.crossbar)
        return _STRUCTURAL_CACHE.scheme_for(
            self._library_key, self.library, self.config.crossbar, name
        )

    def kernel_stats(self):
        """Leakage-kernel hit/miss stats of this evaluator's library.

        The per-library share of the process-wide
        :attr:`StructuralCacheStats.kernel_hits` aggregate — a
        :class:`~repro.circuit.biasing.KernelStats` with ``hits``,
        ``misses``, ``hit_rate`` and ``as_payload()``.
        """
        from ..circuit.biasing import kernel_for

        return kernel_for(self.library).stats

    def evaluate(self, name: str) -> SchemeResult:
        """Fully evaluate one scheme."""
        scheme = self.build_scheme(name)
        evaluation = evaluate_scheme(
            scheme,
            static_probability=self.config.static_probability,
            toggle_activity=self.config.toggle_activity,
            frequency=self.config.clock_frequency,
        )
        return SchemeResult(
            scheme_name=scheme.name,
            evaluation=evaluation,
            single_bit_inventory=scheme.single_bit_statistics,
        )
