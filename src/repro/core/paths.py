"""Dotted config paths over the nested experiment dataclass tree.

An :class:`~repro.core.config.ExperimentConfig` is a tree of frozen
dataclasses — six top-level scalars, a nested
:class:`~repro.crossbar.ports.CrossbarConfig`, and an optional
:class:`~repro.noc.noc_power.NocPowerConfig` (itself nesting a
:class:`~repro.noc.power_gating.GatingPolicy`).  The design-space layers
address any leaf of that tree by a dotted path such as
``"crossbar.port_count"`` or ``"noc.gating_policy.wakeup_cycles"``:

* :func:`get_path` / :func:`set_path` read and functionally update one
  leaf (``set_path`` returns a new config; nothing is mutated);
* :func:`sweepable_paths` enumerates every leaf the engine may sweep,
  derived from the dataclass tree itself rather than a hand-kept list;
* :func:`normalize_path` resolves user-facing spellings — canonical
  dotted paths, the historical flat top-level names, and unambiguous
  leaf aliases (``"port_count"`` → ``"crossbar.port_count"``) — to one
  canonical form, so grids, caches and result sets agree on identity;
* :func:`describe_path` explains what varying a path exercises.

The module is deliberately generic: it walks ``dataclasses.fields`` and
never imports the config classes at module level, so the config layer
can import it without cycles.  Optional sub-configs that default to
``None`` (the ``noc`` branch) declare a ``subconfig_factory`` in their
field metadata; ``set_path`` instantiates the default sub-config on
first write and ``get_path`` reads defaults through the same factory.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from ..errors import ConfigurationError

__all__ = [
    "PATH_SEPARATOR",
    "get_path",
    "set_path",
    "describe_path",
    "normalize_path",
    "sweepable_paths",
    "path_aliases",
    "path_registry_records",
]

PATH_SEPARATOR = "."

#: Curated notes on what sweeping a path exercises.  Paths without an
#: entry fall back to a generated "<Owner> field" note; the six original
#: flat fields keep their PR-1 wording verbatim.
_PATH_NOTES: dict[str, str] = {
    "technology_node": "roadmap scaling of wires and devices",
    "temperature_celsius": "leakage's exponential temperature dependence",
    "corner": "process spread",
    "clock_frequency": "how much slack the timing budget leaves for high Vt",
    "static_probability": "data polarity (the pre-charged schemes' weak spot)",
    "toggle_activity": "switching intensity",
    "crossbar.port_count": "crossbar radix (crosspoints grow quadratically)",
    "crossbar.flit_width": "datapath width (wire spans scale with it)",
    "crossbar.input_buffer_depth": "router input buffer depth (buffer leakage share)",
    "crossbar.layout_overhead": "wiring density margin on the crossbar span",
    "crossbar.wire_layer": "metal layer of the crossbar wires",
    "crossbar.timing_budget_fraction": "share of the cycle the crossbar may use",
    "noc.buffer_depth": "network power model's buffer depth override",
    "noc.link_length": "inter-router link length (link switching energy)",
    "noc.bit_cell_width": "buffer bit-cell device width (buffer leakage)",
    "noc.gating_policy.idle_detect_cycles": "sleep-entry timeout of the gating policy",
    "noc.gating_policy.wakeup_cycles": "wake-up latency of the gating policy",
    "noc.mesh_columns": "mesh width of the simulated network",
    "noc.mesh_rows": "mesh height of the simulated network",
    "noc.injection_rate": "offered load (flits/node/cycle) of the simulated traffic",
    "noc.traffic_pattern": "spatial traffic pattern (uniform, transpose, bit_complement, hotspot)",
    "noc.traffic_seed": "traffic generator seed (simulations are reproducible per seed)",
    "noc.traffic_burst_on_fraction": "on/off burstiness (1.0 = steady; lower = longer idle bursts)",
    "noc.traffic_burst_phase_length": "average burst phase length in cycles",
    "noc.simulation_cycles": "measured simulation length in cycles",
    "noc.warmup_cycles": "cycles discarded before measurement starts",
}

#: Suffix appended to paths that feed the *network-level* power model
#: (NocPowerModel) rather than the per-scheme Table-1 comparison — a
#: sweep over them produces distinct configs/cache entries but identical
#: comparison records, which would otherwise read as "no effect".
_NETWORK_LEVEL_NOTE = " [network-level: feeds NocPowerModel, not the Table-1 records]"


def _is_network_level(path: str) -> bool:
    return path.startswith("noc" + PATH_SEPARATOR) or path == "crossbar.input_buffer_depth"


def _is_config_node(value: object) -> bool:
    """True for dataclass *instances* (the interior nodes of the tree)."""
    return dataclasses.is_dataclass(value) and not isinstance(value, type)


def _prototype_child(owner: object, field: dataclasses.Field) -> object:
    """The value of ``field`` on ``owner``, instantiating an optional
    sub-config from its declared factory when unset."""
    value = getattr(owner, field.name)
    if value is None:
        factory = field.metadata.get("subconfig_factory")
        if factory is not None:
            return factory()
    return value


def _fields_by_name(node: object, path: str) -> dict[str, dataclasses.Field]:
    if not _is_config_node(node):
        raise ConfigurationError(
            f"config path {path!r} descends into {type(node).__name__!r}, "
            "which is not a nested config"
        )
    return {field.name: field for field in dataclasses.fields(node)}


def get_path(config: object, path: str) -> object:
    """Read the leaf (or sub-config) at ``path`` of ``config``.

    Unset optional sub-configs are read through their default factory,
    so ``get_path(config, "noc.link_length")`` answers the value the
    model would use even before the ``noc`` branch is materialised.
    """
    node = config
    segments = path.split(PATH_SEPARATOR)
    for depth, segment in enumerate(segments):
        fields = _fields_by_name(node, path)
        if segment not in fields:
            raise ConfigurationError(
                f"unknown config path {path!r}: {type(node).__name__} "
                f"has no field {segment!r}"
            )
        if depth == len(segments) - 1:
            return getattr(node, segment)
        node = _prototype_child(node, fields[segment])
    return node


def set_path(config, path: str, value: object):
    """Return a copy of ``config`` with the leaf at ``path`` replaced.

    Every dataclass on the way is rebuilt with ``dataclasses.replace``,
    so all ``__post_init__`` validation re-runs; an unset optional
    sub-config (``noc``) is instantiated from its default factory before
    the leaf is applied.
    """
    segments = path.split(PATH_SEPARATOR)

    def rebuild(node, depth: int):
        segment = segments[depth]
        fields = _fields_by_name(node, path)
        if segment not in fields:
            raise ConfigurationError(
                f"unknown config path {path!r}: {type(node).__name__} "
                f"has no field {segment!r}"
            )
        if depth == len(segments) - 1:
            return dataclasses.replace(node, **{segment: value})
        child = getattr(node, segment)
        if child is None:
            factory = fields[segment].metadata.get("subconfig_factory")
            if factory is None:
                raise ConfigurationError(
                    f"config path {path!r} descends into unset field "
                    f"{segment!r} with no default sub-config"
                )
            child = factory()
        return dataclasses.replace(node, **{segment: rebuild(child, depth + 1)})

    return rebuild(config, 0)


# ---------------------------------------------------------------------------
# registry: every sweepable leaf of the experiment tree
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, str] | None = None
_ALIASES: dict[str, str] | None = None


def _walk_leaves(node: object, prefix: str) -> Iterator[tuple[str, object]]:
    for field in dataclasses.fields(node):
        path = f"{prefix}{field.name}"
        child = _prototype_child(node, field)
        if _is_config_node(child):
            yield from _walk_leaves(child, path + PATH_SEPARATOR)
        else:
            yield path, node


def _build_registry() -> tuple[dict[str, str], dict[str, str]]:
    # Imported here, not at module level: config.py imports this module.
    from .config import ExperimentConfig

    root = ExperimentConfig()
    registry: dict[str, str] = {}
    leaf_owner_counts: dict[str, list[str]] = {}
    for path, owner in _walk_leaves(root, ""):
        note = _PATH_NOTES.get(path)
        if note is None:
            note = f"{type(owner).__name__} field"
        if _is_network_level(path):
            note += _NETWORK_LEVEL_NOTE
        registry[path] = note
        leaf = path.rsplit(PATH_SEPARATOR, 1)[-1]
        leaf_owner_counts.setdefault(leaf, []).append(path)
    # A bare leaf name aliases its path when that spelling is not already
    # a canonical (top-level) path, exactly one leaf bears the name, and
    # the target affects the scheme comparison.  Network-level paths get
    # no shorthand: a user typing "buffer_depth" and silently landing on
    # the NocPowerModel knob would read the resulting flat Table-1 series
    # as "no effect" — those paths must be spelled out (and their notes
    # say what they feed).
    aliases = {
        leaf: paths[0]
        for leaf, paths in leaf_owner_counts.items()
        if leaf not in registry and len(paths) == 1
        and not _is_network_level(paths[0])
    }
    return registry, aliases


def _registry() -> dict[str, str]:
    global _REGISTRY, _ALIASES
    if _REGISTRY is None:
        _REGISTRY, _ALIASES = _build_registry()
    return _REGISTRY


def sweepable_paths() -> dict[str, str]:
    """Every sweepable config path mapped to a one-line note.

    Derived from the dataclass tree, so a field added to any nested
    config becomes sweepable without touching the engine.
    """
    return dict(_registry())


def path_aliases() -> dict[str, str]:
    """Accepted shorthand spellings mapped to their canonical paths."""
    _registry()
    assert _ALIASES is not None
    return dict(_ALIASES)


def normalize_path(name: str) -> str:
    """Resolve ``name`` to its canonical dotted path.

    Canonical paths (including the historical flat top-level names,
    which are their own canonical form) pass through unchanged; a bare
    leaf name that unambiguously identifies one nested field is expanded
    (``"port_count"`` → ``"crossbar.port_count"``).  Anything else
    raises :class:`~repro.errors.ConfigurationError` listing the
    sweepable fields.
    """
    registry = _registry()
    if name in registry:
        return name
    assert _ALIASES is not None
    alias = _ALIASES.get(name)
    if alias is not None:
        return alias
    known = ", ".join(sorted(registry))
    raise ConfigurationError(f"cannot sweep {name!r}; sweepable fields: {known}")


def describe_path(path: str) -> str:
    """One-line note on what varying ``path`` exercises."""
    return _registry()[normalize_path(path)]


def path_registry_records() -> list[dict]:
    """JSON-safe records of every sweepable path, in tree order.

    Each record carries the canonical ``path``, its ``note`` (from
    :func:`describe_path`), any accepted alias spellings, the default
    value on a fresh :class:`~repro.core.config.ExperimentConfig`, and
    whether the path is network-level (feeds the NoC power model rather
    than the Table-1 records).  This is the single source for the
    generated ``docs/config_paths.md`` and the evaluation service's
    ``GET /paths`` endpoint, so the two can never drift apart.
    """
    from .config import ExperimentConfig

    aliases_by_path: dict[str, list[str]] = {}
    for alias, target in path_aliases().items():
        aliases_by_path.setdefault(target, []).append(alias)
    root = ExperimentConfig()
    records = []
    for path, note in _registry().items():
        default = get_path(root, path)
        if not isinstance(default, (bool, int, float, str, type(None))):
            default = repr(default)
        records.append({
            "path": path,
            "note": note,
            "aliases": sorted(aliases_by_path.get(path, [])),
            "default": default,
            "network_level": _is_network_level(path),
        })
    return records
