"""Experiment configuration: the paper's evaluation point in one object.

The paper's experiments are fully described by a handful of numbers —
45 nm technology, a 5x5 crossbar, 128-bit flits, 3 GHz, 50 % static
probability, worst-case random data — plus the modelling temperature and
corner.  :class:`ExperimentConfig` bundles them so every benchmark,
example and test refers to a single source of truth, and alternative
points (other nodes, corners, crossbar radixes) are one ``replace`` away.

The configuration is a tree: the crossbar's structural/sizing knobs live
in the nested :class:`~repro.crossbar.ports.CrossbarConfig`, and the
optional ``noc`` branch carries the network-level power parameters
(:class:`~repro.noc.noc_power.NocPowerConfig`).  Any leaf of the tree
can be addressed with a dotted path — ``with_overrides`` accepts
``**{"crossbar.port_count": 8}`` alongside the flat top-level fields,
via :mod:`repro.core.paths`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING

from ..crossbar.ports import CrossbarConfig
from ..errors import ConfigurationError
from ..technology.library import TechnologyLibrary, default_library_for_node

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from ..noc.noc_power import NocPowerConfig

__all__ = ["ExperimentConfig", "paper_experiment", "default_noc_config"]


def default_noc_config() -> "NocPowerConfig":
    """Default network power parameters (imported lazily: the ``noc``
    package must not be a hard import of the core config layer)."""
    from ..noc.noc_power import NocPowerConfig

    return NocPowerConfig()


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one evaluation point."""

    technology_node: str = "45nm"
    temperature_celsius: float = 110.0
    corner: str = "TT"
    clock_frequency: float = 3.0e9
    static_probability: float = 0.5
    toggle_activity: float = 0.5
    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)
    #: Optional network-level power parameters.  ``None`` means "the
    #: defaults"; sweeping any ``noc.*`` path materialises the branch.
    noc: "NocPowerConfig | None" = field(
        default=None, metadata={"subconfig_factory": default_noc_config}
    )

    def __post_init__(self) -> None:
        if self.clock_frequency <= 0:
            raise ConfigurationError("clock frequency must be positive")
        for name in ("static_probability", "toggle_activity"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    def build_library(self) -> TechnologyLibrary:
        """Instantiate the technology library for this experiment."""
        return default_library_for_node(
            self.technology_node,
            temperature_celsius=self.temperature_celsius,
            corner=self.corner,
            clock_frequency=self.clock_frequency,
        )

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Return a copy with the given fields replaced.

        Keys may be direct fields (``temperature_celsius=25.0``,
        ``crossbar=CrossbarConfig(...)``), dotted paths into the nested
        configs (``**{"crossbar.port_count": 8}``), or any alias
        :func:`~repro.core.paths.normalize_path` accepts.  Direct field
        replacements apply first, then dotted paths in the order given,
        so ``crossbar=...`` composes with ``crossbar.port_count=...``.
        """
        from .paths import normalize_path, set_path

        field_names = {f.name for f in fields(self)}
        direct: dict[str, object] = {}
        nested: dict[str, object] = {}
        for name, value in overrides.items():
            if name in field_names:
                direct[name] = value
                continue
            try:
                path = normalize_path(name)
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"unknown override {name!r}: not an ExperimentConfig "
                    f"field, and {exc}"
                ) from exc
            if path in nested:
                raise ConfigurationError(
                    f"override {name!r} duplicates config path {path!r}"
                )
            nested[path] = value
        config = replace(self, **direct) if direct else self
        for path, value in nested.items():
            config = set_path(config, path, value)
        return config


def paper_experiment() -> ExperimentConfig:
    """The configuration of the paper's Table 1.

    45 nm ITRS/BPTM technology, a 5-by-5 crossbar with 128-bit flits,
    3 GHz operation, worst-case 50 % static probability and random data.
    """
    return ExperimentConfig()
