"""Experiment configuration: the paper's evaluation point in one object.

The paper's experiments are fully described by a handful of numbers —
45 nm technology, a 5x5 crossbar, 128-bit flits, 3 GHz, 50 % static
probability, worst-case random data — plus the modelling temperature and
corner.  :class:`ExperimentConfig` bundles them so every benchmark,
example and test refers to a single source of truth, and alternative
points (other nodes, corners, crossbar radixes) are one ``replace`` away.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..crossbar.ports import CrossbarConfig
from ..errors import ConfigurationError
from ..technology.library import TechnologyLibrary, default_library_for_node

__all__ = ["ExperimentConfig", "paper_experiment"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one evaluation point."""

    technology_node: str = "45nm"
    temperature_celsius: float = 110.0
    corner: str = "TT"
    clock_frequency: float = 3.0e9
    static_probability: float = 0.5
    toggle_activity: float = 0.5
    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)

    def __post_init__(self) -> None:
        if self.clock_frequency <= 0:
            raise ConfigurationError("clock frequency must be positive")
        for name in ("static_probability", "toggle_activity"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    def build_library(self) -> TechnologyLibrary:
        """Instantiate the technology library for this experiment."""
        return default_library_for_node(
            self.technology_node,
            temperature_celsius=self.temperature_celsius,
            corner=self.corner,
            clock_frequency=self.clock_frequency,
        )

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


def paper_experiment() -> ExperimentConfig:
    """The configuration of the paper's Table 1.

    45 nm ITRS/BPTM technology, a 5-by-5 crossbar with 128-bit flits,
    3 GHz operation, worst-case 50 % static probability and random data.
    """
    return ExperimentConfig()
