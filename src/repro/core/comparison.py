"""The Table 1 comparison engine.

Evaluates every scheme under one experiment configuration and assembles
the paper's Table 1: delays, savings relative to SC, minimum idle times
and total power, plus a rendered text table and a machine-readable dict
the benchmarks assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crossbar.factory import available_schemes
from ..errors import ConfigurationError
from ..power.report import format_table1
from ..power.savings import SchemeEvaluation, SchemeSavings, savings_versus_baseline
from ..units import seconds_to_picoseconds, watts_to_milliwatts
from .config import ExperimentConfig
from .scheme_evaluator import SchemeEvaluator, SchemeResult

__all__ = ["SchemeComparison", "compare_schemes"]


@dataclass
class SchemeComparison:
    """All schemes evaluated under one configuration, relative to a baseline."""

    baseline_name: str
    results: dict[str, SchemeResult] = field(default_factory=dict)
    savings: dict[str, SchemeSavings] = field(default_factory=dict)

    @property
    def scheme_names(self) -> list[str]:
        """Scheme names in evaluation order (Table 1 order)."""
        return list(self.results)

    def evaluation(self, name: str) -> SchemeEvaluation:
        """Raw evaluation of one scheme."""
        try:
            return self.results[name].evaluation
        except KeyError as exc:
            raise ConfigurationError(f"scheme {name!r} was not part of this comparison") from exc

    def saving(self, name: str) -> SchemeSavings:
        """Savings of one non-baseline scheme relative to the baseline."""
        try:
            return self.savings[name]
        except KeyError as exc:
            raise ConfigurationError(
                f"scheme {name!r} has no savings entry (is it the baseline?)"
            ) from exc

    def as_table_text(self) -> str:
        """Render the comparison in the layout of the paper's Table 1."""
        evaluations = {name: result.evaluation for name, result in self.results.items()}
        return format_table1(evaluations, self.savings, baseline_name=self.baseline_name)

    def as_records(self) -> list[dict[str, float | str]]:
        """One flat record per scheme — what the benchmark harness prints."""
        records: list[dict[str, float | str]] = []
        for name, result in self.results.items():
            evaluation = result.evaluation
            saving = self.savings.get(name)
            records.append(
                {
                    "scheme": name,
                    "high_to_low_ps": seconds_to_picoseconds(evaluation.delay.high_to_low),
                    "low_to_high_ps": seconds_to_picoseconds(evaluation.delay.low_to_high),
                    "active_leakage_mw": watts_to_milliwatts(evaluation.leakage.active_power),
                    "standby_leakage_mw": watts_to_milliwatts(evaluation.leakage.standby_power),
                    "active_leakage_saving_percent": (
                        saving.active_leakage_saving * 100.0 if saving else 0.0
                    ),
                    "standby_leakage_saving_percent": (
                        saving.standby_leakage_saving * 100.0 if saving else 0.0
                    ),
                    "minimum_idle_cycles": evaluation.idle_time.minimum_idle_cycles,
                    "total_power_mw": watts_to_milliwatts(evaluation.total_power.total),
                    "delay_penalty_percent": (
                        saving.delay_penalty * 100.0 if saving else 0.0
                    ),
                    "high_vt_device_fraction": result.high_vt_device_fraction,
                }
            )
        return records


def compare_schemes(
    config: ExperimentConfig | None = None,
    scheme_names: list[str] | None = None,
    baseline_name: str = "SC",
) -> SchemeComparison:
    """Evaluate ``scheme_names`` (default: all) and compare against ``baseline_name``."""
    evaluator = SchemeEvaluator(config)
    names = scheme_names if scheme_names is not None else available_schemes()
    if baseline_name not in names:
        raise ConfigurationError(
            f"baseline {baseline_name!r} must be among the evaluated schemes {names}"
        )
    comparison = SchemeComparison(baseline_name=baseline_name)
    for name in names:
        comparison.results[name] = evaluator.evaluate(name)
    baseline = comparison.results[baseline_name].evaluation
    for name in names:
        if name == baseline_name:
            continue
        comparison.savings[name] = savings_versus_baseline(
            comparison.results[name].evaluation, baseline
        )
    return comparison
