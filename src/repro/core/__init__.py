"""Core evaluation layer: experiment configuration, scheme evaluation,
Table 1 comparison and design-space sweeps (DESIGN.md S8)."""

from .comparison import SchemeComparison, compare_schemes
from .config import ExperimentConfig, paper_experiment
from .design_space import DesignSpaceResult, SweepPoint, sweep_parameter
from .scheme_evaluator import SchemeEvaluator, SchemeResult

__all__ = [
    "DesignSpaceResult",
    "ExperimentConfig",
    "SchemeComparison",
    "SchemeEvaluator",
    "SchemeResult",
    "SweepPoint",
    "compare_schemes",
    "paper_experiment",
    "sweep_parameter",
]
