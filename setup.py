"""Packaging for the `repro` library.

Metadata lives in ``setup.cfg`` rather than ``pyproject.toml`` on
purpose: the reproduction environment is fully offline and lacks the
``wheel`` package, so pip's PEP 517/660 build path (which a
``pyproject.toml`` triggers, including network-reaching build isolation)
cannot run.  With only ``setup.py``/``setup.cfg`` present,
``pip install -e .`` falls back to the legacy editable install, which
works everywhere with the locally installed setuptools.
"""

from setuptools import setup

setup()
