"""Distributed serving demo: two workers, one journaled shared cache.

The end-to-end story of the distributed subsystem on localhost:

1. start an :class:`~repro.engine.service.EvaluationService` whose
   executor is a :class:`~repro.engine.distributed.DistributedExecutor`
   spawning **two** worker processes (``python -m repro.engine.worker``),
   backed by a shared cache directory journaling under writer id
   ``coordinator``;
2. fire a burst of queries through the HTTP front and show the misses
   fanned out across *both* workers;
3. verify the records are identical to a
   :class:`~repro.engine.executor.SerialExecutor` evaluating the same
   points in-process;
4. have a *second* journaled writer add points to the same directory,
   then show a fresh reader merging both journals and the index
   surviving ``compact()`` (journals folded into ``index.json``).

Run with ``python examples/distributed.py``.
"""

from __future__ import annotations

import asyncio
import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.config import ExperimentConfig  # noqa: E402
from repro.engine import (  # noqa: E402
    DistributedExecutor,
    EvaluationCache,
    EvaluationServer,
    EvaluationService,
    ServiceClient,
)
from repro.engine.cache import JOURNAL_GLOB, point_key  # noqa: E402
from repro.engine.executor import SerialExecutor, WorkItem  # noqa: E402

SCHEMES = ["SC", "SDPC"]

#: The burst: every point is a fresh miss, so all of them fan out
#: through the distributed executor's two workers.
BURST = ([{"static_probability": p} for p in (0.1, 0.3, 0.5, 0.7, 0.9)]
         + [{"crossbar.port_count": n} for n in (3, 4, 6, 8)]
         + [{"temperature_celsius": t} for t in (25.0, 70.0)])


async def serve_burst(cache_dir: Path) -> tuple[list[dict], dict]:
    """Run the burst through a service whose misses go to two workers."""
    executor = DistributedExecutor(spawn_workers=2, min_workers=2)
    cache = EvaluationCache(directory=cache_dir, writer_id="coordinator")
    service = EvaluationService(scheme_names=SCHEMES, executor=executor,
                                cache=cache, max_batch_size=len(BURST),
                                flush_interval=0.05)
    server = await EvaluationServer(service, host="127.0.0.1", port=0).start()
    client = ServiceClient("127.0.0.1", server.port)
    print(f"service up on http://127.0.0.1:{server.port} "
          f"(distributed executor, 2 spawned workers, "
          f"cache {cache_dir}, writer id 'coordinator')")
    try:
        answers = await asyncio.gather(*[client.evaluate(q) for q in BURST])
        fleet = executor.stats_payload()
    finally:
        await server.stop()
        await service.stop()  # also closes the owned executor/fleet
    return answers, fleet


def main() -> None:
    """Run the demo and assert each stage's promise."""
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-distributed-demo-"))
    try:
        answers, fleet = asyncio.run(serve_burst(cache_dir))

        per_worker = {worker_id: info["completed"]
                      for worker_id, info in fleet["workers"].items()}
        print(f"\n{len(BURST)} misses fanned out across "
              f"{len(per_worker)} workers: {per_worker}")
        assert len(per_worker) == 2, "expected a 2-worker fleet"
        assert all(count > 0 for count in per_worker.values()), \
            "both workers should have evaluated items"
        assert sum(per_worker.values()) == len(BURST)

        # Parity: the distributed records match the serial executor's.
        base = ExperimentConfig()
        items = [WorkItem(config=base.with_overrides(**query),
                          scheme_names=tuple(SCHEMES), baseline_name="SC")
                 for query in BURST]
        serial = SerialExecutor().run(items)
        assert [list(answer["records"]) for answer in answers] \
            == [point.records for point in serial], \
            "distributed records must be bit-identical to serial"
        print("parity: distributed records == serial records "
              f"for all {len(BURST)} points")

        # A second journaled writer shares the directory.
        writer_b = EvaluationCache(directory=cache_dir, writer_id="sweeper")
        extra_items = [WorkItem(config=base.with_overrides(static_probability=p),
                                scheme_names=tuple(SCHEMES), baseline_name="SC")
                       for p in (0.15, 0.85)]
        for item, point in zip(extra_items, SerialExecutor().run(extra_items)):
            key = point_key(item.config, SCHEMES)
            from repro.engine import CachedEntry

            writer_b.put(key, CachedEntry(records=point.records))
        writer_b.flush_index()

        journals = sorted(p.name for p in cache_dir.glob(JOURNAL_GLOB))
        print(f"\njournals on disk: {journals}")
        assert journals == ["index.coordinator.journal",
                            "index.sweeper.journal"]

        reader = EvaluationCache(directory=cache_dir)
        merged = reader.disk_stats()
        print(f"fresh reader merges both journals: "
              f"{merged['entries']} entries indexed")
        assert merged["entries"] == len(BURST) + len(extra_items)

        # compact() folds the journals into index.json; nothing is lost.
        folded = reader.compact()
        after = reader.disk_stats()
        print(f"compact(): {folded} entries folded into index.json, "
              f"{after['journals']} journals left")
        assert after["journals"] == 0
        survivor = EvaluationCache(directory=cache_dir)
        assert survivor.disk_stats()["entries"] == folded
        for answer in answers:
            assert survivor.get(answer["key"]) is not None, \
                "every served point must survive the fold"
        print("merged journal index survived compact(); all keys readable")
        print("\ndistributed demo OK")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
