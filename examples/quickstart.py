"""Quickstart: evaluate one leakage-aware crossbar and print its headline numbers.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import create_scheme, default_45nm, evaluate_scheme  # noqa: E402
from repro.power import format_evaluation  # noqa: E402


def main() -> None:
    # The paper's technology point: 45 nm, 1.0 V, 3 GHz, hot junction.
    library = default_45nm()

    # Build the Dual-Vt Pre-Charged Crossbar (DPC) at the paper's 5x5 / 128-bit
    # configuration and collect every Table 1 quantity for it.
    scheme = create_scheme("DPC", library)
    evaluation = evaluate_scheme(scheme, static_probability=0.5)
    print(format_evaluation(evaluation))

    # Compare its leakage against the single-Vt baseline.
    baseline = evaluate_scheme(create_scheme("SC", library))
    active_saving = 1 - evaluation.leakage.active_power / baseline.leakage.active_power
    standby_saving = 1 - evaluation.leakage.standby_power / baseline.leakage.standby_power
    print()
    print(f"active leakage saving vs SC:  {active_saving:6.1%}")
    print(f"standby leakage saving vs SC: {standby_saving:6.1%}")
    print(f"delay penalty vs SC:          {evaluation.delay.penalty_versus(baseline.delay):6.1%}")


if __name__ == "__main__":
    main()
