"""Radix scaling: how each scheme's standing moves with crossbar size.

The paper fixes a 5x5 crossbar; this example sweeps the *structure* —
``crossbar.port_count`` crossed with the technology node — straight
through the engine's nested config paths, then prints, for every point,
which scheme draws the least total power and which saves the most active
leakage against the SC baseline.

Run with ``python examples/radix_scaling.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Evaluator, paper_experiment  # noqa: E402
from repro.analysis import render_table, sweep_table  # noqa: E402

SCHEMES = ["SC", "DFC", "DPC", "SDFC", "SDPC"]
PORT_COUNTS = [3, 5, 8]
NODES = ["65nm", "45nm"]


def main() -> None:
    evaluator = Evaluator(base_config=paper_experiment(), scheme_names=SCHEMES)
    start = time.perf_counter()
    results = evaluator.evaluate_grid({
        "crossbar.port_count": PORT_COUNTS,
        "technology_node": NODES,
    })
    elapsed = time.perf_counter() - start
    print(f"evaluated {len(results)} structural points x {len(SCHEMES)} schemes "
          f"in {elapsed:.2f} s")
    print()

    rows = []
    for point in results:
        ports = point.overrides["crossbar.port_count"]
        node = point.overrides["technology_node"]
        lowest_power = min(SCHEMES, key=lambda s: point.value(s, "total_power_mw"))
        best_saving = max(
            (s for s in SCHEMES if s != "SC"),
            key=lambda s: point.value(s, "active_leakage_saving_percent"),
        )
        rows.append([
            f"{ports}x{ports}",
            node,
            lowest_power,
            point.value(lowest_power, "total_power_mw"),
            best_saving,
            point.value(best_saving, "active_leakage_saving_percent"),
        ])
    print(render_table(
        ["crossbar", "node", "lowest power", "mW", "best saving", "% vs SC"],
        rows, title="Which scheme wins where"))
    print()

    for node in NODES:
        print(sweep_table(
            results.filter(technology_node=node), SCHEMES,
            "active_leakage_saving_percent", axis="crossbar.port_count",
            title=f"Active leakage saving (%) vs port count at {node}"))
        print()

    # The savings trend with radix, one line per scheme.
    at_45 = results.filter(technology_node="45nm")
    print("SDPC active-leakage saving vs radix at 45nm:")
    for ports, saving in at_45.series("SDPC", "active_leakage_saving_percent",
                                      axis="crossbar.port_count"):
        print(f"  {ports}x{ports}: {saving:.1f} %")


if __name__ == "__main__":
    main()
