"""Regenerate the paper's Table 1: all five schemes side by side.

Run with ``python examples/crossbar_comparison.py``.  This is the same
computation the Table 1 benchmark times; the example prints the rendered
table plus the per-scheme device inventory that explains *why* the
numbers move (which roles went high-Vt in each scheme).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import compare_schemes, paper_experiment  # noqa: E402
from repro.analysis import describe_output_path, render_table  # noqa: E402
from repro.core import SchemeEvaluator  # noqa: E402


def main() -> None:
    config = paper_experiment()
    comparison = compare_schemes(config)

    print("Reproduction of Table 1 (see EXPERIMENTS.md for the paper-reported values)")
    print()
    print(comparison.as_table_text())
    print()

    evaluator = SchemeEvaluator(config)
    rows = []
    for name in comparison.scheme_names:
        scheme = evaluator.build_scheme(name)
        structure = describe_output_path(scheme)
        rows.append([
            name,
            structure.device_count,
            structure.high_vt_count,
            f"{structure.high_vt_fraction:.0%}",
            ", ".join(structure.high_vt_roles) or "-",
        ])
    print(render_table(
        ["scheme", "devices / output bit", "high-Vt devices", "high-Vt fraction", "high-Vt roles"],
        rows, title="Per-scheme output-path inventory (the content of Figures 1-3)",
    ))


if __name__ == "__main__":
    main()
