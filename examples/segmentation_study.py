"""Segmentation study: where do the SDFC/SDPC gains come from?

Decomposes the segmented schemes' advantage over their unsegmented
parents into (a) the reduced switched wire capacitance, (b) the extra
high-Vt devices funded by the path-1 slack, and (c) the per-segment
standby opportunity — the three mechanisms Section 2.3/2.4 of the paper
describes — and shows the path-1 / path-2 delay asymmetry that makes it
possible.

Run with ``python examples/segmentation_study.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import create_all_schemes, default_45nm  # noqa: E402
from repro.analysis import describe_segmentation, render_table  # noqa: E402
from repro.technology import VtFlavor  # noqa: E402


def main() -> None:
    library = default_45nm()
    schemes = create_all_schemes(library)

    # Path asymmetry (Figure 3 content).
    rows = []
    for name in ("SDFC", "SDPC"):
        seg = describe_segmentation(schemes[name])
        rows.append([
            name,
            seg.near_path_delay * 1e12,
            seg.far_path_delay * 1e12,
            f"{seg.near_path_slack_fraction:.0%}",
        ])
    print(render_table(
        ["scheme", "path 1 delay (ps)", "path 2 delay (ps)", "path-1 slack"],
        rows, title="Path asymmetry created by segmentation",
    ))
    print()

    # Mechanism decomposition relative to the unsegmented parents.
    rows = []
    for segmented, parent in (("SDFC", "DFC"), ("SDPC", "DPC")):
        seg_scheme, parent_scheme = schemes[segmented], schemes[parent]
        switched_capacitance_reduction = 1.0 - (
            seg_scheme._row_switched_capacitance() / parent_scheme._row_switched_capacitance()
        )
        high_vt_delta = (
            seg_scheme.output_path_netlist().statistics().count_by_flavor.get(VtFlavor.HIGH, 0)
            - parent_scheme.output_path_netlist().statistics().count_by_flavor.get(VtFlavor.HIGH, 0)
        )
        rows.append([
            f"{segmented} vs {parent}",
            f"{switched_capacitance_reduction:.0%}",
            high_vt_delta,
            f"{1 - seg_scheme.dynamic_power() / parent_scheme.dynamic_power():.1%}",
            f"{1 - seg_scheme.active_leakage_power() / parent_scheme.active_leakage_power():.1%}",
            f"{1 - seg_scheme.standby_leakage_power() / parent_scheme.standby_leakage_power():.1%}",
        ])
    print(render_table(
        ["comparison", "row-wire C switched less", "extra high-Vt devices / bit",
         "dynamic power reduction", "active leakage reduction", "standby leakage reduction"],
        rows, title="What segmentation buys (relative to the unsegmented parent scheme)",
    ))


if __name__ == "__main__":
    main()
