"""Async serving demo: mixed hit/miss traffic against a live service.

Starts the evaluation service with its HTTP front on an ephemeral
loopback port, warms the cache with a small structural sweep, then
fires a burst of concurrent queries — repeats of warm points (cache
hits), fresh points (batched misses) and in-flight duplicates
(coalesced onto one evaluation) — through :class:`ServiceClient`.
Finishes by demonstrating the structured validation error a malformed
dotted path earns, and prints the server's own accounting.

Run with ``python examples/serving.py``.
"""

from __future__ import annotations

import asyncio
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine import (  # noqa: E402
    EvaluationServer,
    EvaluationService,
    InvalidRequestError,
    ServiceClient,
)

SCHEMES = ["SC", "SDPC"]

#: Warm-up sweep: these land in the cache before the mixed burst.
WARM_POINTS = [{"static_probability": p} for p in (0.1, 0.3, 0.5, 0.7)]

#: The mixed burst: warm repeats, fresh points, and deliberate
#: duplicates that should coalesce onto a single evaluation.
BURST = (
    WARM_POINTS                                            # 4 cache hits
    + [{"static_probability": 0.9},                        # fresh misses
       {"crossbar.port_count": 3},
       {"port_count": 8}]                                  # alias spelling
    + [{"temperature_celsius": 55.0}] * 3                  # 1 miss + 2 coalesced
)


async def main() -> None:
    service = EvaluationService(scheme_names=SCHEMES, executor="serial",
                                max_batch_size=8, flush_interval=0.02)
    server = await EvaluationServer(service, host="127.0.0.1", port=0).start()
    client = ServiceClient("127.0.0.1", server.port)
    print(f"service up on http://127.0.0.1:{server.port} (schemes {SCHEMES})")

    warm = await asyncio.gather(*[client.evaluate(q) for q in WARM_POINTS])
    assert all(not r["from_cache"] for r in warm)
    print(f"warmed the cache with {len(warm)} points")

    start = time.perf_counter()
    answers = await asyncio.gather(*[client.evaluate(q) for q in BURST])
    elapsed = time.perf_counter() - start

    hits = sum(r["from_cache"] for r in answers)
    coalesced = sum(r["coalesced"] for r in answers)
    misses = len(answers) - hits - coalesced
    print(f"burst: {len(answers)} queries in {elapsed*1e3:.1f} ms "
          f"({len(answers)/elapsed:.0f} q/s) — "
          f"{hits} cache hits, {misses} evaluated, {coalesced} coalesced")
    for query, answer in zip(BURST[:3], answers[:3]):
        sdpc = next(r for r in answer["records"] if r["scheme"] == "SDPC")
        print(f"  {query} -> SDPC total {sdpc['total_power_mw']:.1f} mW "
              f"(from_cache={answer['from_cache']})")

    try:
        await client.evaluate({"crossbar.portcount": 5})
    except InvalidRequestError as exc:
        print(f"malformed path rejected: error={exc.payload['error']!r} "
              f"path={exc.payload['path']!r}")

    stats = await client.stats()
    svc = stats["service"]
    print(f"server accounting: {svc['requests']} requests, "
          f"{svc['cache_hits']} hits, {svc['evaluated']} evaluated in "
          f"{svc['batches']} batches (largest {svc['largest_batch']}), "
          f"{svc['coalesced']} coalesced, {svc['invalid_requests']} rejected")

    await server.stop()
    await service.stop()
    print("service stopped (pending batches flushed)")


if __name__ == "__main__":
    asyncio.run(main())
