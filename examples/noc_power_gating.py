"""Architecture-level study: the standby mode under real traffic.

Simulates a 4x4 mesh under uniform and bursty traffic, measures the idle
intervals of every crossbar output port, and applies each scheme's
minimum-idle-time threshold (Table 1) to report how much leakage the
standby mode actually recovers at the network level.

Run with ``python examples/noc_power_gating.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import available_schemes, create_scheme, default_45nm  # noqa: E402
from repro.analysis import render_table  # noqa: E402
from repro.noc import (  # noqa: E402
    Mesh,
    NetworkSimulator,
    NocPowerConfig,
    NocPowerModel,
    TrafficConfig,
    TrafficPattern,
)
from repro.power import analyse_minimum_idle_time  # noqa: E402


def simulate(burst_on_fraction: float):
    """Run a 4x4 mesh for 3000 cycles at a light load."""
    mesh = Mesh(4, 4)
    traffic = TrafficConfig(
        injection_rate=0.08,
        pattern=TrafficPattern.UNIFORM,
        burst_on_fraction=burst_on_fraction,
        burst_phase_length=60,
        seed=11,
    )
    return NetworkSimulator(mesh, traffic).run(cycles=3000, warmup_cycles=300)


def main() -> None:
    library = default_45nm()

    for label, burst_on in (("smooth traffic", 1.0), ("bursty traffic (30% duty)", 0.3)):
        result = simulate(burst_on)
        intervals = result.idle_intervals()
        print(f"=== {label} ===")
        print(
            f"crossbar utilisation {result.average_crossbar_utilisation:.1%}, "
            f"average latency {result.average_latency:.1f} cycles, "
            f"{len(intervals)} idle intervals, "
            f"mean interval {sum(intervals) / len(intervals):.1f} cycles"
        )
        rows = []
        for name in available_schemes():
            scheme = create_scheme(name, library)
            threshold = analyse_minimum_idle_time(scheme).minimum_idle_cycles
            gateable = sum(i for i in intervals if i >= threshold) / max(sum(intervals), 1)
            report = NocPowerModel(
                scheme, NocPowerConfig(gating_enabled=True)
            ).evaluate(result)
            rows.append([
                name, threshold, f"{gateable:.0%}",
                report.crossbar_leakage * 1e3, report.total * 1e3,
                report.gating_net_saving * 1e3,
            ])
        print(render_table(
            ["scheme", "min idle (cyc)", "idle cycles above threshold",
             "crossbar leakage (mW)", "network total (mW)", "gating saving (mW)"],
            rows,
        ))
        print()


if __name__ == "__main__":
    main()
