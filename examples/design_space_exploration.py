"""Design-space exploration beyond the paper's single evaluation point.

Sweeps junction temperature, process corner and static probability and
reports how the scheme ranking moves — the questions a user adopting
these crossbars would ask next.  Uses the :mod:`repro.engine` evaluator,
so repeated points are served from its content-addressed cache.

Run with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import DesignSpace, Evaluator, paper_experiment  # noqa: E402
from repro.analysis import sweep_table  # noqa: E402

SCHEMES = ["SC", "DFC", "DPC", "SDPC"]

#: One evaluator for the whole exploration: its cache makes any point
#: shared between sweeps (here, the paper's own point) free.
EVALUATOR = Evaluator(base_config=paper_experiment(), scheme_names=SCHEMES)


def print_sweep(parameter: str, values: list, metric: str, title: str) -> None:
    """Run one sweep and print a scheme-by-value table of ``metric``."""
    results = EVALUATOR.evaluate(DesignSpace.single_sweep(parameter, values))
    print(sweep_table(results, SCHEMES, metric, title=title))
    print()


def main() -> None:
    print_sweep(
        "temperature_celsius", [25.0, 70.0, 110.0],
        "active_leakage_saving_percent",
        "Active leakage saving (%) vs junction temperature (C)",
    )
    print_sweep(
        "corner", ["SS", "TT", "FF"],
        "active_leakage_saving_percent",
        "Active leakage saving (%) vs process corner",
    )
    print_sweep(
        "static_probability", [0.1, 0.5, 0.9],
        "total_power_mw",
        "Total power (mW) vs static probability of logic 1",
    )
    print_sweep(
        "clock_frequency", [1.0e9, 3.0e9, 5.0e9],
        "total_power_mw",
        "Total power (mW) vs clock frequency (Hz)",
    )
    stats = EVALUATOR.cache.stats
    print(f"engine cache: {stats.hits} hits / {stats.lookups} lookups "
          f"({stats.hit_rate:.0%})")


if __name__ == "__main__":
    main()
