"""Design-space exploration beyond the paper's single evaluation point.

Sweeps junction temperature, process corner and static probability and
reports how the scheme ranking moves — the questions a user adopting
these crossbars would ask next.

Run with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import paper_experiment, sweep_parameter  # noqa: E402
from repro.analysis import render_table  # noqa: E402

SCHEMES = ["SC", "DFC", "DPC", "SDPC"]


def print_sweep(parameter: str, values: list, metric: str, title: str) -> None:
    """Run one sweep and print a scheme-by-value table of ``metric``."""
    result = sweep_parameter(parameter, values, base_config=paper_experiment(),
                             scheme_names=SCHEMES)
    rows = []
    for name in SCHEMES:
        series = result.series(name, metric)
        rows.append([name] + [value for _, value in series])
    print(render_table(["scheme"] + [str(v) for v in values], rows, title=title))
    print()


def main() -> None:
    print_sweep(
        "temperature_celsius", [25.0, 70.0, 110.0],
        "active_leakage_saving_percent",
        "Active leakage saving (%) vs junction temperature (C)",
    )
    print_sweep(
        "corner", ["SS", "TT", "FF"],
        "active_leakage_saving_percent",
        "Active leakage saving (%) vs process corner",
    )
    print_sweep(
        "static_probability", [0.1, 0.5, 0.9],
        "total_power_mw",
        "Total power (mW) vs static probability of logic 1",
    )
    print_sweep(
        "clock_frequency", [1.0e9, 3.0e9, 5.0e9],
        "total_power_mw",
        "Total power (mW) vs clock frequency (Hz)",
    )


if __name__ == "__main__":
    main()
