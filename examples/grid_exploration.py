"""Quickstart for the design-space engine: a 2-parameter grid.

Evaluates the full temperature-by-static-probability grid with the
process executor, slices the resulting :class:`~repro.engine.ResultSet`
along each axis, asks for the Pareto front of total power versus delay,
and demonstrates that a re-run is served entirely from the cache.

Run with ``python examples/grid_exploration.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import DesignSpace, Evaluator, paper_experiment  # noqa: E402
from repro.analysis import sweep_table  # noqa: E402

SCHEMES = ["SC", "DFC", "SDPC"]


def main() -> None:
    space = DesignSpace.grid({
        "temperature_celsius": [25.0, 70.0, 110.0],
        "static_probability": [0.1, 0.3, 0.5, 0.7, 0.9],
    })
    evaluator = Evaluator(base_config=paper_experiment(), scheme_names=SCHEMES,
                          executor="process")

    start = time.perf_counter()
    results = evaluator.evaluate(space)
    elapsed = time.perf_counter() - start
    print(f"evaluated {len(results)} grid points in {elapsed:.2f} s "
          f"({len(results) / elapsed:.1f} points/s, process executor)")
    print()

    # Slice the grid: one row of the temperature axis, tabulated along
    # static probability (and the transpose).
    print(sweep_table(results.filter(temperature_celsius=110.0), SCHEMES,
                      "total_power_mw", axis="static_probability",
                      title="Total power (mW) vs static probability at 110 C"))
    print()
    print(sweep_table(results.filter(static_probability=0.5), SCHEMES,
                      "active_leakage_saving_percent", axis="temperature_celsius",
                      title="Active leakage saving (%) vs temperature at p1=0.5"))
    print()

    # Pareto: which design points minimise SDPC total power and delay at once?
    front = results.pareto_front("SDPC", ["total_power_mw", "high_to_low_ps"])
    print("SDPC Pareto front over (total power, high-to-low delay):")
    for point in front:
        print(f"  {point.overrides}  ->  "
              f"{point.value('SDPC', 'total_power_mw'):.1f} mW, "
              f"{point.value('SDPC', 'high_to_low_ps'):.1f} ps")
    print()

    # Second run: every point is a cache hit.
    start = time.perf_counter()
    rerun = evaluator.evaluate(space)
    elapsed = time.perf_counter() - start
    print(f"re-run: {rerun.cache_hit_count}/{len(rerun)} points from cache "
          f"in {elapsed * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
