"""Tests for the cache maintenance CLI (python -m repro.engine.cache)."""

from __future__ import annotations

import hashlib
import json

from repro.engine.cache import CachedEntry, EvaluationCache
from repro.engine.cache import main as cache_main


def _fill(directory, count: int) -> EvaluationCache:
    cache = EvaluationCache(directory=directory)
    for i in range(count):
        key = hashlib.sha256(f"point-{i}".encode()).hexdigest()
        cache.put(key, CachedEntry(records=[{"scheme": "SC", "i": i}]))
    cache.flush_index()
    return cache


def test_stats_reports_entries_and_bytes(tmp_path, capsys):
    _fill(tmp_path / "cache", 5)
    assert cache_main(["stats", str(tmp_path / "cache")]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["command"] == "stats"
    assert report["entries"] == 5
    assert report["bytes"] > 0
    assert report["max_disk_entries"] is None


def test_stats_on_missing_directory_fails_cleanly(tmp_path, capsys):
    assert cache_main(["stats", str(tmp_path / "nope")]) == 2
    report = json.loads(capsys.readouterr().out)
    assert report["error"] == "no-such-directory"


def test_compact_drops_corrupt_entries_and_strays(tmp_path, capsys):
    directory = tmp_path / "cache"
    _fill(directory, 4)
    shard = directory / "ab"
    shard.mkdir(exist_ok=True)
    (shard / ("ab" + "0" * 62 + ".json")).write_text("{not json",
                                                     encoding="utf-8")
    (shard / "stray.json.tmp").write_text("x", encoding="utf-8")

    assert cache_main(["compact", str(directory)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["entries_after_compact"] == 4
    assert not (shard / ("ab" + "0" * 62 + ".json")).exists()
    assert not (shard / "stray.json.tmp").exists()


def test_compact_applies_eviction_bound(tmp_path, capsys):
    directory = tmp_path / "cache"
    _fill(directory, 6)
    assert cache_main(["compact", str(directory), "--max-entries", "2"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["entries_after_compact"] == 2
    assert report["evictions"] == 4
    assert report["max_disk_entries"] == 2

    # The survivors are still readable through a fresh cache instance.
    reopened = EvaluationCache(directory=directory)
    assert reopened.disk_stats()["entries"] == 2


def test_compact_applies_byte_budget(tmp_path, capsys):
    directory = tmp_path / "cache"
    filled = _fill(directory, 6)
    total_bytes = filled.disk_stats()["bytes"]
    per_entry = total_bytes // 6
    budget = per_entry * 3 + per_entry // 2  # room for exactly three entries

    assert cache_main(["compact", str(directory), "--max-bytes",
                       str(budget)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["max_disk_bytes"] == budget
    assert report["entries_after_compact"] == 3
    assert report["evictions"] == 3
    assert report["bytes"] <= budget

    # The survivors are still readable, and the budget is recorded.
    reopened = EvaluationCache(directory=directory)
    stats = reopened.disk_stats()
    assert stats["entries"] == 3
    assert stats["bytes"] <= budget
    assert stats["max_disk_bytes"] is None  # the bound is per instance
