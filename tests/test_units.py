"""Tests for the engineering-unit helpers."""

from __future__ import annotations

import math

import pytest

from repro import units


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert units.thermal_voltage(300.0) == pytest.approx(25.85e-3, rel=1e-3)

    def test_scales_linearly_with_temperature(self):
        assert units.thermal_voltage(600.0) == pytest.approx(2 * units.thermal_voltage(300.0))

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            units.thermal_voltage(0.0)


class TestCelsiusToKelvin:
    def test_zero_celsius(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_typical_junction_temperature(self):
        assert units.celsius_to_kelvin(110.0) == pytest.approx(383.15)

    def test_rejects_below_absolute_zero(self):
        with pytest.raises(ValueError):
            units.celsius_to_kelvin(-300.0)


class TestConversions:
    def test_seconds_to_picoseconds_round_trip(self):
        assert units.picoseconds_to_seconds(units.seconds_to_picoseconds(61.4e-12)) == pytest.approx(
            61.4e-12
        )

    def test_watts_to_milliwatts(self):
        assert units.watts_to_milliwatts(0.18281) == pytest.approx(182.81)

    def test_milliwatts_to_watts(self):
        assert units.milliwatts_to_watts(154.07) == pytest.approx(0.15407)

    def test_micron_round_trip(self):
        assert units.meters_to_microns(units.microns_to_meters(1.4)) == pytest.approx(1.4)

    def test_nanometers(self):
        assert units.nanometers_to_meters(45.0) == pytest.approx(45e-9)


class TestFormatSi:
    def test_picoseconds(self):
        assert units.format_si(61.4e-12, "s") == "61.4ps"

    def test_milliwatts(self):
        assert units.format_si(0.18281, "W") == "183mW"

    def test_zero(self):
        assert units.format_si(0.0, "A") == "0A"

    def test_nan_and_inf(self):
        assert units.format_si(float("nan"), "V") == "nanV"
        assert units.format_si(float("inf"), "V") == "infV"
        assert units.format_si(float("-inf"), "V") == "-infV"

    def test_large_values(self):
        assert units.format_si(3e9, "Hz") == "3GHz"


class TestParseSi:
    def test_picoseconds(self):
        assert units.parse_si("61.4ps", "s") == pytest.approx(61.4e-12)

    def test_gigahertz(self):
        assert units.parse_si("3GHz", "Hz") == pytest.approx(3e9)

    def test_plain_number(self):
        assert units.parse_si("42") == pytest.approx(42.0)

    def test_round_trip_with_format(self):
        value = 1.234e-6
        assert units.parse_si(units.format_si(value, "F"), "F") == pytest.approx(value, rel=1e-2)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            units.parse_si("not-a-number", "s")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            units.parse_si("  ", "s")


class TestConstants:
    def test_prefix_ladder_is_monotonic(self):
        assert units.FEMTO < units.PICO < units.NANO < units.MICRO < units.MILLI < 1 < units.KILO

    def test_boltzmann_over_charge_is_thermal_voltage(self):
        assert units.BOLTZMANN / units.ELEMENTARY_CHARGE * 300 == pytest.approx(
            units.thermal_voltage(300.0)
        )

    def test_nan_not_produced_by_format_parse_cycle(self):
        assert not math.isnan(units.parse_si(units.format_si(1e-15, "F"), "F"))
