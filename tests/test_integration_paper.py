"""Integration tests: the paper's qualitative claims (Table 1 shape).

The reproduction uses analytical models rather than the authors' HSPICE
decks, so these tests assert the *shape* of Table 1 — orderings, signs
and broad ranges — rather than the exact percentages.  The exact measured
values are recorded in EXPERIMENTS.md and printed by the benchmarks.
"""

from __future__ import annotations

import pytest

from repro import compare_schemes, paper_experiment

SCHEMES = ["SC", "DFC", "DPC", "SDFC", "SDPC"]


@pytest.fixture(scope="module")
def comparison():
    return compare_schemes(paper_experiment())


@pytest.fixture(scope="module")
def records(comparison):
    return {record["scheme"]: record for record in comparison.as_records()}


class TestTable1DelayShape:
    def test_delays_are_tens_of_picoseconds(self, records):
        for name in SCHEMES:
            assert 20.0 < records[name]["high_to_low_ps"] < 150.0, name
            assert 20.0 < records[name]["low_to_high_ps"] < 150.0, name

    def test_dfc_improves_high_to_low_over_sc(self, records):
        assert records["DFC"]["high_to_low_ps"] < records["SC"]["high_to_low_ps"]

    def test_only_segmented_schemes_pay_delay_penalty(self, records):
        assert records["DFC"]["delay_penalty_percent"] == 0.0
        assert records["DPC"]["delay_penalty_percent"] == 0.0
        assert records["SDFC"]["delay_penalty_percent"] > 0.0

    def test_segmented_penalty_is_single_digit_percent(self, records):
        assert records["SDFC"]["delay_penalty_percent"] < 15.0
        assert records["SDPC"]["delay_penalty_percent"] < 10.0


class TestTable1LeakageShape:
    def test_active_savings_ordering_matches_paper(self, records):
        """Paper: DFC (10%) < DPC (44%) ~ SDFC (42%) < SDPC (64%)."""
        dfc = records["DFC"]["active_leakage_saving_percent"]
        dpc = records["DPC"]["active_leakage_saving_percent"]
        sdfc = records["SDFC"]["active_leakage_saving_percent"]
        sdpc = records["SDPC"]["active_leakage_saving_percent"]
        assert dfc < dpc
        assert dfc < sdfc
        assert sdpc == max(dfc, dpc, sdfc, sdpc)

    def test_active_savings_magnitudes(self, records):
        assert 3.0 < records["DFC"]["active_leakage_saving_percent"] < 20.0
        assert 25.0 < records["DPC"]["active_leakage_saving_percent"] < 60.0
        assert 30.0 < records["SDFC"]["active_leakage_saving_percent"] < 60.0
        assert 55.0 < records["SDPC"]["active_leakage_saving_percent"] < 85.0

    def test_standby_savings_ordering_matches_paper(self, records):
        """Paper: DFC (12%) < SDFC (44%) < DPC (94%) ~ SDPC (96%)."""
        dfc = records["DFC"]["standby_leakage_saving_percent"]
        sdfc = records["SDFC"]["standby_leakage_saving_percent"]
        dpc = records["DPC"]["standby_leakage_saving_percent"]
        sdpc = records["SDPC"]["standby_leakage_saving_percent"]
        assert dfc < sdfc < dpc
        assert dfc < sdfc < sdpc

    def test_precharged_standby_savings_above_80_percent(self, records):
        assert records["DPC"]["standby_leakage_saving_percent"] > 80.0
        assert records["SDPC"]["standby_leakage_saving_percent"] > 80.0

    def test_segmentation_improves_on_unsegmented_feedback_design(self, records):
        assert records["SDFC"]["active_leakage_saving_percent"] > \
            records["DFC"]["active_leakage_saving_percent"] + 10.0
        assert records["SDFC"]["standby_leakage_saving_percent"] > \
            records["DFC"]["standby_leakage_saving_percent"]


class TestTable1PowerShape:
    def test_total_power_is_tens_to_hundreds_of_milliwatts(self, records):
        for name in SCHEMES:
            assert 20.0 < records[name]["total_power_mw"] < 500.0, name

    def test_sc_has_highest_or_near_highest_total_power(self, records):
        sc = records["SC"]["total_power_mw"]
        for name in ("DFC", "SDFC", "SDPC"):
            assert records[name]["total_power_mw"] < sc, name
        # The pre-charged DPC pays a switching penalty at 50 % static
        # probability and lands within a few percent of SC (paper: 180 vs 183).
        assert records["DPC"]["total_power_mw"] < 1.10 * sc

    def test_sdfc_has_lowest_total_power(self, records):
        totals = {name: records[name]["total_power_mw"] for name in SCHEMES}
        assert min(totals, key=totals.get) == "SDFC"

    def test_minimum_idle_times_are_a_few_cycles(self, records):
        for name in SCHEMES:
            assert 1 <= records[name]["minimum_idle_cycles"] <= 8, name


class TestStructuralShape:
    def test_high_vt_fraction_grows_with_scheme_aggressiveness(self, records):
        assert records["SC"]["high_vt_device_fraction"] == 0.0
        assert records["DFC"]["high_vt_device_fraction"] > 0.0
        assert records["SDPC"]["high_vt_device_fraction"] > records["DFC"]["high_vt_device_fraction"]

    def test_comparison_table_text_mentions_every_row(self, comparison):
        text = comparison.as_table_text()
        for row in ("High to low delay", "Active Leakage Savings", "Standby Leakage Savings",
                    "Minimum Idle Time", "Total Power", "Delay Penalty"):
            assert row in text
