"""Unit tests for the design-space engine: grid, cache, executors, results."""

from __future__ import annotations

import json

import pytest

from repro import ExperimentConfig, paper_experiment
from repro.analysis import sweep_table
from repro.analysis.sweep import SweepSeries, crossover_point, crossover_points
from repro.engine import (
    DesignSpace,
    EvaluationCache,
    Evaluator,
    ProcessExecutor,
    SerialExecutor,
    point_key,
    resolve_executor,
)
from repro.engine.cache import CachedEntry
from repro.errors import ConfigurationError, ReproError

SCHEMES = ["SC", "SDPC"]


@pytest.fixture(scope="module")
def small_results():
    """A 2x2 grid evaluated once, shared by the read-only query tests."""
    space = DesignSpace.grid({
        "temperature_celsius": [25.0, 110.0],
        "static_probability": [0.1, 0.9],
    })
    return Evaluator(scheme_names=SCHEMES).evaluate(space)


class TestDesignSpace:
    def test_grid_is_row_major_last_axis_fastest(self):
        space = DesignSpace.grid({"corner": ["SS", "FF"],
                                  "static_probability": [0.1, 0.9]})
        assert space.parameters == ("corner", "static_probability")
        assert [point.overrides for point in space.points()] == [
            {"corner": "SS", "static_probability": 0.1},
            {"corner": "SS", "static_probability": 0.9},
            {"corner": "FF", "static_probability": 0.1},
            {"corner": "FF", "static_probability": 0.9},
        ]
        assert len(space) == 4

    def test_explicit_point_list_preserves_order(self):
        space = DesignSpace.from_points([
            {"temperature_celsius": 110.0, "corner": "SS"},
            {"temperature_celsius": 25.0, "corner": "FF"},
        ])
        assert [point.overrides["corner"] for point in space.points()] == ["SS", "FF"]

    def test_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError, match="sweepable"):
            DesignSpace.grid({"oxide_thickness": [1.0]})

    def test_rejects_empty_axis_and_empty_grid(self):
        with pytest.raises(ConfigurationError):
            DesignSpace.grid({"corner": []})
        with pytest.raises(ConfigurationError):
            DesignSpace.grid({})
        with pytest.raises(ConfigurationError):
            DesignSpace.from_points([])

    def test_rejects_ragged_point_list(self):
        with pytest.raises(ConfigurationError, match="same parameters"):
            DesignSpace.from_points([{"corner": "TT"},
                                     {"corner": "TT", "static_probability": 0.5}])

    def test_rejects_duplicate_spellings_of_one_path(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            DesignSpace.grid({"port_count": [3], "crossbar.port_count": [5]})
        with pytest.raises(ConfigurationError, match="duplicate"):
            DesignSpace.from_points([{"port_count": 3, "crossbar.port_count": 5}])

    def test_grid_accepts_one_shot_iterables(self):
        space = DesignSpace.grid({"corner": (c for c in ["TT", "SS"])})
        assert len(space) == 2
        assert [p.overrides["corner"] for p in space.points()] == ["TT", "SS"]

    def test_configs_surface_invalid_values_before_evaluation(self):
        space = DesignSpace.grid({"static_probability": [0.5, 1.5]})
        with pytest.raises(ConfigurationError):
            space.configs()


class TestCache:
    def test_key_is_stable_and_content_addressed(self):
        a = point_key(ExperimentConfig(), SCHEMES)
        b = point_key(ExperimentConfig(), list(SCHEMES))
        assert a == b and len(a) == 64
        assert point_key(ExperimentConfig(temperature_celsius=25.0), SCHEMES) != a
        assert point_key(ExperimentConfig(), ["SC"]) != a
        assert point_key(ExperimentConfig(), SCHEMES, baseline_name="SDPC") != a

    def test_hit_and_miss_accounting(self):
        cache = EvaluationCache()
        assert cache.get("k") is None
        cache.put("k", CachedEntry(records=[{"scheme": "SC"}]))
        assert cache.get("k").records == [{"scheme": "SC"}]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_disk_round_trip(self, tmp_path):
        directory = tmp_path / "cache"
        writer = EvaluationCache(directory=directory)
        writer.put("deadbeef", CachedEntry(records=[{"scheme": "SC", "x": 1.25}]))
        # Hex keys shard under their own two-char prefix.
        assert (directory / "de" / "deadbeef.json").is_file()
        writer.flush_index()
        assert (directory / "index.json").is_file()

        reader = EvaluationCache(directory=directory)
        entry = reader.get("deadbeef")
        assert entry is not None
        assert entry.records == [{"scheme": "SC", "x": 1.25}]
        assert entry.comparison is None
        assert reader.stats.disk_hits == 1

    def test_unsafe_keys_are_hashed_not_traversed(self, tmp_path):
        directory = tmp_path / "cache"
        cache = EvaluationCache(directory=directory)
        hostile = "../../escape"
        cache.put(hostile, CachedEntry(records=[{"scheme": "SC"}]))
        # Nothing may be written outside the cache directory...
        assert not (tmp_path / "escape.json").exists()
        assert not (tmp_path.parent / "escape.json").exists()
        written = [p for p in directory.rglob("*.json") if p.name != "index.json"]
        assert len(written) == 1
        assert directory in written[0].parents
        # ...and the entry still round-trips through a fresh instance.
        fresh = EvaluationCache(directory=directory)
        assert fresh.get(hostile).records == [{"scheme": "SC"}]

    def test_flat_pr1_layout_is_migrated_into_shards(self, tmp_path):
        directory = tmp_path / "cache"
        directory.mkdir()
        key = "ab12cd34ef56ab12"
        payload = {"schema": 1, "key": key, "records": [{"scheme": "SC", "x": 2.5}]}
        (directory / f"{key}.json").write_text(json.dumps(payload), encoding="utf-8")

        cache = EvaluationCache(directory=directory)
        assert not (directory / f"{key}.json").exists()
        assert (directory / "ab" / f"{key}.json").is_file()
        assert cache.get(key).records == [{"scheme": "SC", "x": 2.5}]
        assert cache.stats.disk_hits == 1

    def test_eviction_keeps_most_recently_used(self, tmp_path):
        cache = EvaluationCache(directory=tmp_path / "cache", max_disk_entries=2)
        for key in ("aaaa1111", "bbbb2222", "cccc3333"):
            cache.put(key, CachedEntry(records=[{"scheme": key}]))
        assert cache.stats.evictions == 1
        fresh = EvaluationCache(directory=tmp_path / "cache", max_disk_entries=2)
        assert fresh.get("aaaa1111") is None  # oldest entry evicted
        assert fresh.get("bbbb2222") is not None
        assert fresh.get("cccc3333") is not None

    def test_byte_budget_evicts_least_recently_used(self, tmp_path):
        probe = EvaluationCache(directory=tmp_path / "probe")
        probe.put("aaaa1111", CachedEntry(records=[{"scheme": "SC"}]))
        per_entry = probe.disk_stats()["bytes"]
        assert per_entry > 0

        budget = per_entry * 2 + per_entry // 2  # fits exactly two entries
        cache = EvaluationCache(directory=tmp_path / "cache",
                                max_disk_bytes=budget)
        for key in ("aaaa1111", "bbbb2222", "cccc3333"):
            cache.put(key, CachedEntry(records=[{"scheme": "SC"}]))
        assert cache.stats.evictions == 1
        stats = cache.disk_stats()
        assert stats["bytes"] <= budget
        assert stats["max_disk_bytes"] == budget

        fresh = EvaluationCache(directory=tmp_path / "cache")
        assert fresh.get("aaaa1111") is None  # oldest paid for the budget
        assert fresh.get("bbbb2222") is not None
        assert fresh.get("cccc3333") is not None
        # The byte total survives a reopen (rebuilt from the index).
        assert fresh.disk_stats()["bytes"] <= budget

    def test_byte_budget_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            EvaluationCache(directory=tmp_path, max_disk_bytes=0)

    def test_compact_drops_corrupt_entries_and_rebuilds_index(self, tmp_path):
        directory = tmp_path / "cache"
        cache = EvaluationCache(directory=directory)
        cache.put("deadbeef", CachedEntry(records=[{"scheme": "SC"}]))
        (directory / "de" / "corrupt.json").write_text("{not json", encoding="utf-8")
        (directory / "de" / "stray.json.tmp").write_text("x", encoding="utf-8")
        (directory / "de" / "junkdir").mkdir()  # must be left alone, not crash
        assert cache.compact() == 1
        assert not (directory / "de" / "corrupt.json").exists()
        assert not (directory / "de" / "stray.json.tmp").exists()
        assert (directory / "de" / "junkdir").is_dir()
        fresh = EvaluationCache(directory=directory)
        assert fresh.get("deadbeef") is not None

    def test_hostile_or_corrupt_index_is_distrusted(self, tmp_path):
        directory = tmp_path / "cache"
        cache = EvaluationCache(directory=directory)
        cache.put("deadbeef", CachedEntry(records=[{"scheme": "SC"}]))
        cache.flush_index()
        outside = tmp_path / "outside.json"
        outside.write_text(json.dumps({"records": [{"scheme": "EVIL"}]}),
                           encoding="utf-8")
        index_path = directory / "index.json"
        index = json.loads(index_path.read_text(encoding="utf-8"))
        index["entries"]["deadbeef"]["file"] = str(outside)  # absolute escape
        index["entries"]["aaaa1111"] = {"file": "../outside.json", "seq": "oops"}
        index_path.write_text(json.dumps(index), encoding="utf-8")

        fresh = EvaluationCache(directory=directory)  # corrupt seq must not raise
        # The absolute path is ignored; the shard probe still finds the entry.
        assert fresh.get("deadbeef").records == [{"scheme": "SC"}]
        assert fresh.get("aaaa1111") is None  # traversal entry dropped

    def test_eviction_cannot_be_misdirected_by_hostile_index(self, tmp_path):
        directory = tmp_path / "cache"
        cache = EvaluationCache(directory=directory)
        cache.put("deadbeef", CachedEntry(records=[{"scheme": "A"}]))
        cache.flush_index()
        index_path = directory / "index.json"
        index = json.loads(index_path.read_text(encoding="utf-8"))
        # Aim the oldest entry's file at the index itself (relative,
        # in-directory: passes the traversal guard).
        index["entries"]["deadbeef"]["file"] = "index.json"
        index_path.write_text(json.dumps(index), encoding="utf-8")
        bounded = EvaluationCache(directory=directory, max_disk_entries=1)
        bounded.put("cafecafe", CachedEntry(records=[{"scheme": "B"}]))
        # Eviction removed deadbeef's canonical file, nothing else.
        assert (directory / "index.json").is_file()
        assert not (directory / "de" / "deadbeef.json").exists()
        assert EvaluationCache(directory=directory).get("cafecafe") is not None

    def test_misdirected_index_entry_cannot_alias_keys(self, tmp_path):
        directory = tmp_path / "cache"
        cache = EvaluationCache(directory=directory)
        cache.put("deadbeef", CachedEntry(records=[{"scheme": "A"}]))
        cache.put("cafecafe", CachedEntry(records=[{"scheme": "B"}]))
        cache.flush_index()
        index_path = directory / "index.json"
        index = json.loads(index_path.read_text(encoding="utf-8"))
        # Point A's index entry at B's (valid, in-directory) file.
        index["entries"]["deadbeef"]["file"] = index["entries"]["cafecafe"]["file"]
        index_path.write_text(json.dumps(index), encoding="utf-8")
        fresh = EvaluationCache(directory=directory)
        # The stored-key check rejects the aliased file; the canonical
        # shard probe still serves A's own records.
        assert fresh.get("deadbeef").records == [{"scheme": "A"}]

    def test_unindexed_entries_are_adopted_on_lookup(self, tmp_path):
        """Files from a session that crashed before flushing its index
        batch must re-enter the index (and thus the eviction bound) when
        a lookup finds them via the canonical shard probe."""
        directory = tmp_path / "cache"
        writer = EvaluationCache(directory=directory)
        writer.put("deadbeef", CachedEntry(records=[{"scheme": "SC"}]))
        assert not (directory / "index.json").exists()  # never flushed
        reader = EvaluationCache(directory=directory)
        assert reader.get("deadbeef") is not None
        reader.flush_index()
        index = json.loads((directory / "index.json").read_text(encoding="utf-8"))
        assert "deadbeef" in index["entries"]

    def test_disk_hit_recency_survives_sessions(self, tmp_path):
        directory = tmp_path / "cache"
        writer = EvaluationCache(directory=directory)
        writer.put("aaaa1111", CachedEntry(records=[{"scheme": "SC"}]))
        writer.put("bbbb2222", CachedEntry(records=[{"scheme": "SC"}]))
        writer.flush_index()
        # A hit-only session touches the older entry and flushes.
        warm = EvaluationCache(directory=directory)
        assert warm.get("aaaa1111") is not None
        warm.flush_index()
        # A later bounded session must evict the true LRU (bbbb2222).
        bounded = EvaluationCache(directory=directory, max_disk_entries=2)
        bounded.put("cccc3333", CachedEntry(records=[{"scheme": "SC"}]))
        fresh = EvaluationCache(directory=directory)
        assert fresh.get("aaaa1111") is not None
        assert fresh.get("bbbb2222") is None

    def test_index_writes_are_batched_until_flush(self, tmp_path):
        directory = tmp_path / "cache"
        cache = EvaluationCache(directory=directory)
        cache.put("deadbeef", CachedEntry(records=[{"scheme": "SC"}]))
        assert not (directory / "index.json").exists()  # batched, not per put
        cache.flush_index()
        index = json.loads((directory / "index.json").read_text(encoding="utf-8"))
        assert "deadbeef" in index["entries"]
        # A reader that never saw the index still finds the entry.
        assert EvaluationCache(directory=directory).get("deadbeef") is not None

    def test_nested_config_round_trips_through_disk(self, tmp_path):
        nested = ExperimentConfig().with_overrides(**{
            "crossbar.port_count": 7,
            "noc.link_length": 2.0e-3,
        })
        key = point_key(nested, SCHEMES)
        writer = EvaluationCache(directory=tmp_path / "cache")
        writer.put(key, CachedEntry(records=[{"scheme": "SC", "p": 7}]))
        reader = EvaluationCache(directory=tmp_path / "cache")
        assert reader.get(key).records == [{"scheme": "SC", "p": 7}]

    def test_key_ignores_default_extension_fields(self, monkeypatch):
        """Flat-only points keep their PR-1 cache keys: the optional noc
        branch and new crossbar fields only enter the key when set."""
        import repro

        # Pin the version the golden hash was captured under, so routine
        # version bumps (an *intended* invalidation) don't fail this test.
        monkeypatch.setattr(repro, "__version__", "1.0.0")
        base = point_key(ExperimentConfig(), SCHEMES)
        assert base == ("bd609d6dacd12aac0807b920269863c91337550c30a095"
                        "bd5c61f573ec6c500d")  # golden, captured pre-refactor
        explicit_defaults = ExperimentConfig().with_overrides(**{
            "crossbar.input_buffer_depth": 4})
        assert point_key(explicit_defaults, SCHEMES) == base
        assert point_key(ExperimentConfig().with_overrides(**{
            "crossbar.input_buffer_depth": 8}), SCHEMES) != base
        assert point_key(ExperimentConfig().with_overrides(**{
            "noc.buffer_depth": 4}), SCHEMES) != base  # branch materialised

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        directory = tmp_path / "cache"
        cache = EvaluationCache(directory=directory)
        (directory / "bad.json").write_text("{not json", encoding="utf-8")
        assert cache.get("bad") is None
        assert cache.stats.misses == 1


class TestExecutors:
    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)
        serial = SerialExecutor()
        assert resolve_executor(serial) is serial
        with pytest.raises(ConfigurationError):
            resolve_executor("threads")

    def test_process_parity_with_serial(self):
        space = DesignSpace.grid({"static_probability": [0.2, 0.8],
                                  "temperature_celsius": [25.0, 110.0]})
        serial = Evaluator(scheme_names=SCHEMES, executor="serial").evaluate(space)
        process = Evaluator(scheme_names=SCHEMES,
                            executor=ProcessExecutor(max_workers=2)).evaluate(space)
        assert [p.records for p in process] == [p.records for p in serial]
        assert process.points[0].comparison is None
        assert serial.points[0].comparison is not None

    def test_invalid_worker_and_chunk_counts(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(max_workers=0)
        with pytest.raises(ConfigurationError):
            ProcessExecutor(chunksize=0)


class TestEvaluator:
    def test_second_run_hits_cache_on_every_point(self):
        space = DesignSpace.grid({"static_probability": [0.3, 0.7]})
        evaluator = Evaluator(scheme_names=SCHEMES)
        first = evaluator.evaluate(space)
        assert first.cache_hit_count == 0
        second = evaluator.evaluate(space)
        assert second.cache_hit_count == len(space)
        assert [p.records for p in second] == [p.records for p in first]

    def test_overlapping_grids_share_points(self):
        evaluator = Evaluator(scheme_names=SCHEMES)
        evaluator.evaluate(DesignSpace.grid({"static_probability": [0.3, 0.5]}))
        widened = evaluator.evaluate(
            DesignSpace.grid({"static_probability": [0.3, 0.5, 0.7]}))
        assert widened.cache_hit_count == 2

    def test_duplicate_points_in_one_batch_evaluated_once(self):
        space = DesignSpace.from_points([{"corner": "TT"}, {"corner": "TT"}])
        evaluator = Evaluator(scheme_names=SCHEMES)
        results = evaluator.evaluate(space)
        assert evaluator.cache.stats.puts == 1
        assert results.points[0].records == results.points[1].records

    def test_disk_cache_survives_new_evaluator(self, tmp_path):
        space = DesignSpace.grid({"static_probability": [0.4]})
        first = Evaluator(scheme_names=SCHEMES, cache_dir=tmp_path)
        first.evaluate(space)
        second = Evaluator(scheme_names=SCHEMES, cache_dir=tmp_path)
        results = second.evaluate(space)
        assert results.cache_hit_count == 1
        assert second.cache.stats.disk_hits == 1

    def test_baseline_must_be_evaluated(self):
        with pytest.raises(ConfigurationError):
            Evaluator(scheme_names=["DFC", "DPC"])

    def test_base_config_is_respected(self):
        space = DesignSpace.grid({"static_probability": [0.5]})
        hot = Evaluator(base_config=paper_experiment().with_overrides(
            temperature_celsius=150.0), scheme_names=SCHEMES).evaluate(space)
        default = Evaluator(scheme_names=SCHEMES).evaluate(space)
        assert (hot.points[0].value("SC", "active_leakage_mw")
                > default.points[0].value("SC", "active_leakage_mw"))


class TestResultSet:
    def test_filter_and_series(self, small_results):
        sliced = small_results.filter(temperature_celsius=110.0)
        assert len(sliced) == 2
        series = sliced.series("SDPC", "total_power_mw", axis="static_probability")
        assert [value for value, _ in series] == [0.1, 0.9]
        assert all(power > 0 for _, power in series)

    def test_series_needs_axis_for_multi_parameter_sets(self, small_results):
        with pytest.raises(ConfigurationError):
            small_results.series("SC", "total_power_mw")

    def test_unknown_scheme_metric_and_parameter_rejected(self, small_results):
        with pytest.raises(ConfigurationError):
            small_results.points[0].value("XYZ", "total_power_mw")
        with pytest.raises(ConfigurationError):
            small_results.points[0].value("SC", "bogus_metric")
        with pytest.raises(ConfigurationError):
            small_results.filter(corner="TT")

    def test_pareto_front(self, small_results):
        front = small_results.pareto_front("SC", ["total_power_mw", "high_to_low_ps"])
        assert front
        # Every non-front point must be dominated by some front point.
        for point in small_results:
            if point in front:
                continue
            assert any(
                other.value("SC", "total_power_mw") <= point.value("SC", "total_power_mw")
                and other.value("SC", "high_to_low_ps") <= point.value("SC", "high_to_low_ps")
                for other in front
            )

    def test_pareto_front_respects_sense(self, small_results):
        best_saving = max(point.value("SDPC", "active_leakage_saving_percent")
                          for point in small_results)
        front = small_results.pareto_front(
            "SDPC", ["active_leakage_saving_percent"], minimize=[False])
        assert all(point.value("SDPC", "active_leakage_saving_percent") == best_saving
                   for point in front)

    def test_to_records_is_json_safe(self, small_results):
        rows = small_results.to_records()
        assert len(rows) == len(small_results) * len(SCHEMES)
        json.dumps(rows)

    def test_sweep_table_requires_singleton_other_axes(self, small_results):
        with pytest.raises(ConfigurationError, match="filter"):
            sweep_table(small_results, SCHEMES, "total_power_mw",
                        axis="static_probability")
        text = sweep_table(small_results.filter(temperature_celsius=25.0),
                           SCHEMES, "total_power_mw", axis="static_probability")
        assert "SDPC" in text and "0.9" in text


class TestNestedAxes:
    """Dotted config paths swept end-to-end through the engine."""

    @pytest.fixture(scope="class")
    def radix_results(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("radix-cache")
        evaluator = Evaluator(scheme_names=SCHEMES, cache_dir=cache_dir)
        results = evaluator.evaluate_grid({
            "crossbar.port_count": [3, 5, 8],
            "technology_node": ["65nm", "45nm"],
        })
        return evaluator, results, cache_dir

    def test_grid_order_and_configs(self, radix_results):
        _, results, _ = radix_results
        assert results.parameters == ("crossbar.port_count", "technology_node")
        assert [p.overrides["crossbar.port_count"] for p in results] == \
            [3, 3, 5, 5, 8, 8]
        assert [p.config.crossbar.port_count for p in results] == [3, 3, 5, 5, 8, 8]
        assert [p.config.technology_node for p in results] == \
            ["65nm", "45nm"] * 3
        # More ports -> more crosspoints -> more leakage, all else equal.
        at_45 = results.filter(technology_node="45nm")
        leakages = [p.value("SC", "active_leakage_mw") for p in at_45]
        assert leakages == sorted(leakages) and leakages[0] < leakages[-1]

    def test_second_run_hits_sharded_disk_cache(self, radix_results):
        _, first, cache_dir = radix_results
        fresh = Evaluator(scheme_names=SCHEMES, cache_dir=cache_dir)
        rerun = fresh.evaluate_grid({
            "crossbar.port_count": [3, 5, 8],
            "technology_node": ["65nm", "45nm"],
        })
        assert rerun.cache_hit_count == len(rerun) == 6
        assert fresh.cache.stats.disk_hits == 6
        assert [p.records for p in rerun] == [p.records for p in first]

    def test_series_filter_and_table_accept_dotted_names(self, radix_results):
        _, results, _ = radix_results
        series = results.filter(technology_node="45nm").series(
            "SDPC", "total_power_mw", axis="crossbar.port_count")
        assert [value for value, _ in series] == [3, 5, 8]
        # The unambiguous leaf alias resolves to the same axis.
        alias = results.filter(technology_node="45nm").series(
            "SDPC", "total_power_mw", axis="port_count")
        assert alias == series
        text = sweep_table(results.filter(technology_node="45nm"), SCHEMES,
                           "total_power_mw", axis="crossbar.port_count")
        assert "SDPC" in text and "8" in text
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            results.series("SC", "total_power_mw", axis="flit_width")
        with pytest.raises(ConfigurationError, match="twice"):
            results.filter(port_count=3, **{"crossbar.port_count": 5})

    def test_alias_and_dotted_spellings_share_cache_keys(self):
        evaluator = Evaluator(scheme_names=SCHEMES)
        evaluator.evaluate_grid({"port_count": [3]})
        rerun = evaluator.evaluate_grid({"crossbar.port_count": [3]})
        assert rerun.cache_hit_count == 1

    def test_invalid_nested_value_names_the_path(self):
        space = DesignSpace.grid({"crossbar.port_count": [1]})
        with pytest.raises(ReproError, match="crossbar.port_count"):
            space.configs()

    def test_noc_axis_materialises_branch(self):
        space = DesignSpace.grid({"noc.link_length": [1.0e-3, 2.0e-3]})
        configs = space.configs()
        assert [c.noc.link_length for c in configs] == [1.0e-3, 2.0e-3]

    def test_flat_sweep_tables_unchanged_by_path_refactor(self):
        """Flat-field sweeps must render byte-identically whether driven
        through sweep_parameter or the engine grid (same points, same
        order, same cache identity)."""
        from repro import sweep_parameter

        values = [0.2, 0.8]
        legacy = sweep_parameter("static_probability", values,
                                 scheme_names=SCHEMES)
        legacy_series = legacy.series("SDPC", "total_power_mw")
        results = Evaluator(scheme_names=SCHEMES).evaluate_grid(
            {"static_probability": values})
        engine_series = results.series("SDPC", "total_power_mw")
        assert legacy_series == engine_series


class TestStructuralMemoisation:
    def test_schemes_reused_across_non_structural_points(self):
        from repro.core.scheme_evaluator import (
            clear_structural_cache,
            structural_cache_stats,
        )

        clear_structural_cache()
        Evaluator(scheme_names=SCHEMES).evaluate_grid(
            {"static_probability": [0.1, 0.5, 0.9],
             "toggle_activity": [0.3, 0.7]})
        stats = structural_cache_stats()
        # One library and one build per scheme for all six points.
        assert stats.library_misses == 1
        assert stats.scheme_misses == len(SCHEMES)
        assert stats.scheme_hits == (6 - 1) * len(SCHEMES)

    def test_structural_axes_rebuild(self):
        from repro.core.scheme_evaluator import (
            clear_structural_cache,
            structural_cache_stats,
        )

        clear_structural_cache()
        Evaluator(scheme_names=SCHEMES).evaluate_grid(
            {"crossbar.flit_width": [32, 64]})
        stats = structural_cache_stats()
        assert stats.scheme_misses == 2 * len(SCHEMES)
        assert stats.library_misses == 1  # same technology point throughout


class TestCrossoverBugfix:
    def test_multiple_crossings_are_reported_not_swallowed(self):
        xs = (0.0, 1.0, 2.0, 3.0)
        wave = SweepSeries("wave", xs, (-1.0, 1.0, -1.0, 1.0))
        flat = SweepSeries("flat", xs, (0.0, 0.0, 0.0, 0.0))
        assert crossover_points(wave, flat) == (0.5, 1.5, 2.5)
        with pytest.raises(ReproError, match="3 times"):
            crossover_point(wave, flat)

    def test_single_crossing_still_returned(self):
        a = SweepSeries("a", (0.0, 1.0), (0.0, 2.0))
        b = SweepSeries("b", (0.0, 1.0), (1.0, 1.0))
        assert crossover_point(a, b) == pytest.approx(0.5)

    def test_nan_values_rejected(self):
        with pytest.raises(ReproError, match="NaN"):
            SweepSeries("bad", (0.0, 1.0), (0.0, float("nan")))
        with pytest.raises(ReproError, match="NaN"):
            SweepSeries("bad", (float("nan"), 1.0), (0.0, 1.0))
