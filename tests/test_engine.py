"""Unit tests for the design-space engine: grid, cache, executors, results."""

from __future__ import annotations

import json

import pytest

from repro import ExperimentConfig, paper_experiment
from repro.analysis import sweep_table
from repro.analysis.sweep import SweepSeries, crossover_point, crossover_points
from repro.engine import (
    DesignSpace,
    EvaluationCache,
    Evaluator,
    ProcessExecutor,
    SerialExecutor,
    point_key,
    resolve_executor,
)
from repro.engine.cache import CachedEntry
from repro.errors import ConfigurationError, ReproError

SCHEMES = ["SC", "SDPC"]


@pytest.fixture(scope="module")
def small_results():
    """A 2x2 grid evaluated once, shared by the read-only query tests."""
    space = DesignSpace.grid({
        "temperature_celsius": [25.0, 110.0],
        "static_probability": [0.1, 0.9],
    })
    return Evaluator(scheme_names=SCHEMES).evaluate(space)


class TestDesignSpace:
    def test_grid_is_row_major_last_axis_fastest(self):
        space = DesignSpace.grid({"corner": ["SS", "FF"],
                                  "static_probability": [0.1, 0.9]})
        assert space.parameters == ("corner", "static_probability")
        assert [point.overrides for point in space.points()] == [
            {"corner": "SS", "static_probability": 0.1},
            {"corner": "SS", "static_probability": 0.9},
            {"corner": "FF", "static_probability": 0.1},
            {"corner": "FF", "static_probability": 0.9},
        ]
        assert len(space) == 4

    def test_explicit_point_list_preserves_order(self):
        space = DesignSpace.from_points([
            {"temperature_celsius": 110.0, "corner": "SS"},
            {"temperature_celsius": 25.0, "corner": "FF"},
        ])
        assert [point.overrides["corner"] for point in space.points()] == ["SS", "FF"]

    def test_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError, match="sweepable"):
            DesignSpace.grid({"oxide_thickness": [1.0]})

    def test_rejects_empty_axis_and_empty_grid(self):
        with pytest.raises(ConfigurationError):
            DesignSpace.grid({"corner": []})
        with pytest.raises(ConfigurationError):
            DesignSpace.grid({})
        with pytest.raises(ConfigurationError):
            DesignSpace.from_points([])

    def test_rejects_ragged_point_list(self):
        with pytest.raises(ConfigurationError, match="same parameters"):
            DesignSpace.from_points([{"corner": "TT"},
                                     {"corner": "TT", "static_probability": 0.5}])

    def test_grid_accepts_one_shot_iterables(self):
        space = DesignSpace.grid({"corner": (c for c in ["TT", "SS"])})
        assert len(space) == 2
        assert [p.overrides["corner"] for p in space.points()] == ["TT", "SS"]

    def test_configs_surface_invalid_values_before_evaluation(self):
        space = DesignSpace.grid({"static_probability": [0.5, 1.5]})
        with pytest.raises(ConfigurationError):
            space.configs()


class TestCache:
    def test_key_is_stable_and_content_addressed(self):
        a = point_key(ExperimentConfig(), SCHEMES)
        b = point_key(ExperimentConfig(), list(SCHEMES))
        assert a == b and len(a) == 64
        assert point_key(ExperimentConfig(temperature_celsius=25.0), SCHEMES) != a
        assert point_key(ExperimentConfig(), ["SC"]) != a
        assert point_key(ExperimentConfig(), SCHEMES, baseline_name="SDPC") != a

    def test_hit_and_miss_accounting(self):
        cache = EvaluationCache()
        assert cache.get("k") is None
        cache.put("k", CachedEntry(records=[{"scheme": "SC"}]))
        assert cache.get("k").records == [{"scheme": "SC"}]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_disk_round_trip(self, tmp_path):
        directory = tmp_path / "cache"
        writer = EvaluationCache(directory=directory)
        writer.put("deadbeef", CachedEntry(records=[{"scheme": "SC", "x": 1.25}]))
        assert (directory / "deadbeef.json").is_file()

        reader = EvaluationCache(directory=directory)
        entry = reader.get("deadbeef")
        assert entry is not None
        assert entry.records == [{"scheme": "SC", "x": 1.25}]
        assert entry.comparison is None
        assert reader.stats.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        directory = tmp_path / "cache"
        cache = EvaluationCache(directory=directory)
        (directory / "bad.json").write_text("{not json", encoding="utf-8")
        assert cache.get("bad") is None
        assert cache.stats.misses == 1


class TestExecutors:
    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)
        serial = SerialExecutor()
        assert resolve_executor(serial) is serial
        with pytest.raises(ConfigurationError):
            resolve_executor("threads")

    def test_process_parity_with_serial(self):
        space = DesignSpace.grid({"static_probability": [0.2, 0.8],
                                  "temperature_celsius": [25.0, 110.0]})
        serial = Evaluator(scheme_names=SCHEMES, executor="serial").evaluate(space)
        process = Evaluator(scheme_names=SCHEMES,
                            executor=ProcessExecutor(max_workers=2)).evaluate(space)
        assert [p.records for p in process] == [p.records for p in serial]
        assert process.points[0].comparison is None
        assert serial.points[0].comparison is not None

    def test_invalid_worker_and_chunk_counts(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(max_workers=0)
        with pytest.raises(ConfigurationError):
            ProcessExecutor(chunksize=0)


class TestEvaluator:
    def test_second_run_hits_cache_on_every_point(self):
        space = DesignSpace.grid({"static_probability": [0.3, 0.7]})
        evaluator = Evaluator(scheme_names=SCHEMES)
        first = evaluator.evaluate(space)
        assert first.cache_hit_count == 0
        second = evaluator.evaluate(space)
        assert second.cache_hit_count == len(space)
        assert [p.records for p in second] == [p.records for p in first]

    def test_overlapping_grids_share_points(self):
        evaluator = Evaluator(scheme_names=SCHEMES)
        evaluator.evaluate(DesignSpace.grid({"static_probability": [0.3, 0.5]}))
        widened = evaluator.evaluate(
            DesignSpace.grid({"static_probability": [0.3, 0.5, 0.7]}))
        assert widened.cache_hit_count == 2

    def test_duplicate_points_in_one_batch_evaluated_once(self):
        space = DesignSpace.from_points([{"corner": "TT"}, {"corner": "TT"}])
        evaluator = Evaluator(scheme_names=SCHEMES)
        results = evaluator.evaluate(space)
        assert evaluator.cache.stats.puts == 1
        assert results.points[0].records == results.points[1].records

    def test_disk_cache_survives_new_evaluator(self, tmp_path):
        space = DesignSpace.grid({"static_probability": [0.4]})
        first = Evaluator(scheme_names=SCHEMES, cache_dir=tmp_path)
        first.evaluate(space)
        second = Evaluator(scheme_names=SCHEMES, cache_dir=tmp_path)
        results = second.evaluate(space)
        assert results.cache_hit_count == 1
        assert second.cache.stats.disk_hits == 1

    def test_baseline_must_be_evaluated(self):
        with pytest.raises(ConfigurationError):
            Evaluator(scheme_names=["DFC", "DPC"])

    def test_base_config_is_respected(self):
        space = DesignSpace.grid({"static_probability": [0.5]})
        hot = Evaluator(base_config=paper_experiment().with_overrides(
            temperature_celsius=150.0), scheme_names=SCHEMES).evaluate(space)
        default = Evaluator(scheme_names=SCHEMES).evaluate(space)
        assert (hot.points[0].value("SC", "active_leakage_mw")
                > default.points[0].value("SC", "active_leakage_mw"))


class TestResultSet:
    def test_filter_and_series(self, small_results):
        sliced = small_results.filter(temperature_celsius=110.0)
        assert len(sliced) == 2
        series = sliced.series("SDPC", "total_power_mw", axis="static_probability")
        assert [value for value, _ in series] == [0.1, 0.9]
        assert all(power > 0 for _, power in series)

    def test_series_needs_axis_for_multi_parameter_sets(self, small_results):
        with pytest.raises(ConfigurationError):
            small_results.series("SC", "total_power_mw")

    def test_unknown_scheme_metric_and_parameter_rejected(self, small_results):
        with pytest.raises(ConfigurationError):
            small_results.points[0].value("XYZ", "total_power_mw")
        with pytest.raises(ConfigurationError):
            small_results.points[0].value("SC", "bogus_metric")
        with pytest.raises(ConfigurationError):
            small_results.filter(corner="TT")

    def test_pareto_front(self, small_results):
        front = small_results.pareto_front("SC", ["total_power_mw", "high_to_low_ps"])
        assert front
        # Every non-front point must be dominated by some front point.
        for point in small_results:
            if point in front:
                continue
            assert any(
                other.value("SC", "total_power_mw") <= point.value("SC", "total_power_mw")
                and other.value("SC", "high_to_low_ps") <= point.value("SC", "high_to_low_ps")
                for other in front
            )

    def test_pareto_front_respects_sense(self, small_results):
        best_saving = max(point.value("SDPC", "active_leakage_saving_percent")
                          for point in small_results)
        front = small_results.pareto_front(
            "SDPC", ["active_leakage_saving_percent"], minimize=[False])
        assert all(point.value("SDPC", "active_leakage_saving_percent") == best_saving
                   for point in front)

    def test_to_records_is_json_safe(self, small_results):
        rows = small_results.to_records()
        assert len(rows) == len(small_results) * len(SCHEMES)
        json.dumps(rows)

    def test_sweep_table_requires_singleton_other_axes(self, small_results):
        with pytest.raises(ConfigurationError, match="filter"):
            sweep_table(small_results, SCHEMES, "total_power_mw",
                        axis="static_probability")
        text = sweep_table(small_results.filter(temperature_celsius=25.0),
                           SCHEMES, "total_power_mw", axis="static_probability")
        assert "SDPC" in text and "0.9" in text


class TestCrossoverBugfix:
    def test_multiple_crossings_are_reported_not_swallowed(self):
        xs = (0.0, 1.0, 2.0, 3.0)
        wave = SweepSeries("wave", xs, (-1.0, 1.0, -1.0, 1.0))
        flat = SweepSeries("flat", xs, (0.0, 0.0, 0.0, 0.0))
        assert crossover_points(wave, flat) == (0.5, 1.5, 2.5)
        with pytest.raises(ReproError, match="3 times"):
            crossover_point(wave, flat)

    def test_single_crossing_still_returned(self):
        a = SweepSeries("a", (0.0, 1.0), (0.0, 2.0))
        b = SweepSeries("b", (0.0, 1.0), (1.0, 1.0))
        assert crossover_point(a, b) == pytest.approx(0.5)

    def test_nan_values_rejected(self):
        with pytest.raises(ReproError, match="NaN"):
            SweepSeries("bad", (0.0, 1.0), (0.0, float("nan")))
        with pytest.raises(ReproError, match="NaN"):
            SweepSeries("bad", (float("nan"), 1.0), (0.0, 1.0))
