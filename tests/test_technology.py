"""Tests for the technology substrate: ITRS geometry, BPTM wire models,
MOSFET leakage/drive models, corners and the bundled library."""

from __future__ import annotations

import pytest

from repro.errors import TechnologyError
from repro.technology import (
    ITRS_NODES,
    Mosfet,
    OperatingCondition,
    Polarity,
    VtFlavor,
    WireElectricalModel,
    WireGeometry,
    available_nodes,
    default_45nm,
    default_library_for_node,
    get_corner,
    get_node,
    stack_factor,
    subthreshold_current,
    temperature_scaled_vt,
    wire_capacitance_per_meter,
    wire_resistance_per_meter,
)
from repro.technology.leakage_model import gate_leakage_current, junction_leakage_current


class TestItrsNodes:
    def test_45nm_node_exists_with_paper_parameters(self):
        node = get_node("45nm")
        assert node.supply_voltage == pytest.approx(1.0)
        assert node.nominal_clock_hz == pytest.approx(3.0e9)
        assert node.feature_size == pytest.approx(45e-9)

    def test_every_node_has_three_wire_layers(self):
        for node in ITRS_NODES.values():
            assert set(node.wires) == {"local", "intermediate", "global"}

    def test_pitch_is_width_plus_spacing(self):
        layer = get_node("45nm").wire_layer("intermediate")
        assert layer.pitch == pytest.approx(layer.width + layer.spacing)

    def test_aspect_ratio_is_thickness_over_width(self):
        layer = get_node("45nm").wire_layer("global")
        assert layer.aspect_ratio == pytest.approx(layer.thickness / layer.width)

    def test_wire_geometry_scales_down_with_node(self):
        older = get_node("90nm").wire_layer("intermediate")
        newer = get_node("45nm").wire_layer("intermediate")
        assert newer.pitch < older.pitch

    def test_supply_voltage_scales_down_with_node(self):
        assert get_node("45nm").supply_voltage < get_node("90nm").supply_voltage

    def test_unknown_node_raises(self):
        with pytest.raises(TechnologyError):
            get_node("7nm")

    def test_unknown_layer_raises(self):
        with pytest.raises(TechnologyError):
            get_node("45nm").wire_layer("metal9")

    def test_available_nodes_sorted_old_to_new(self):
        names = available_nodes()
        sizes = [ITRS_NODES[name].feature_size for name in names]
        assert sizes == sorted(sizes, reverse=True)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(TechnologyError):
            WireGeometry("bad", width=-1e-9, spacing=1e-9, thickness=1e-9,
                         height_above_plane=1e-9, dielectric_constant=2.7, resistivity=2e-8)

    def test_dielectric_below_vacuum_rejected(self):
        with pytest.raises(TechnologyError):
            WireGeometry("bad", width=1e-9, spacing=1e-9, thickness=1e-9,
                         height_above_plane=1e-9, dielectric_constant=0.5, resistivity=2e-8)


class TestBptmWireModel:
    @pytest.fixture()
    def geometry(self):
        return get_node("45nm").wire_layer("intermediate")

    def test_resistance_matches_sheet_formula(self, geometry):
        expected = geometry.resistivity / (geometry.width * geometry.thickness)
        assert wire_resistance_per_meter(geometry) == pytest.approx(expected)

    def test_resistance_per_micron_in_plausible_range(self, geometry):
        per_micron = wire_resistance_per_meter(geometry) * 1e-6
        assert 0.5 < per_micron < 20.0

    def test_capacitance_per_micron_in_plausible_range(self, geometry):
        per_micron = wire_capacitance_per_meter(geometry) * 1e-6
        assert 0.05e-15 < per_micron < 1.0e-15

    def test_capacitance_grows_with_neighbours(self, geometry):
        c0 = wire_capacitance_per_meter(geometry, neighbours=0)
        c1 = wire_capacitance_per_meter(geometry, neighbours=1)
        c2 = wire_capacitance_per_meter(geometry, neighbours=2)
        assert c0 < c1 < c2

    def test_invalid_neighbour_count_rejected(self, geometry):
        with pytest.raises(TechnologyError):
            wire_capacitance_per_meter(geometry, neighbours=3)

    def test_model_from_geometry_consistent(self, geometry):
        model = WireElectricalModel.from_geometry(geometry)
        assert model.resistance(1e-3) == pytest.approx(wire_resistance_per_meter(geometry) * 1e-3)
        assert model.capacitance(1e-3, 2) == pytest.approx(
            wire_capacitance_per_meter(geometry, 2) * 1e-3, rel=1e-9
        )

    def test_miller_factor_scales_coupling_only(self, geometry):
        model = WireElectricalModel.from_geometry(geometry)
        quiet = model.total_capacitance_per_meter(2, 1.0)
        worst = model.total_capacitance_per_meter(2, 2.0)
        best = model.total_capacitance_per_meter(2, 0.0)
        assert best < quiet < worst
        assert worst - quiet == pytest.approx(quiet - best)

    def test_negative_length_rejected(self, geometry):
        model = WireElectricalModel.from_geometry(geometry)
        with pytest.raises(TechnologyError):
            model.resistance(-1.0)

    def test_wider_wire_has_lower_resistance_higher_capacitance(self):
        narrow = get_node("45nm").wire_layer("intermediate")
        wide = get_node("45nm").wire_layer("global")
        assert wire_resistance_per_meter(wide) < wire_resistance_per_meter(narrow)


class TestLeakageModel:
    def test_subthreshold_exponential_in_vt(self):
        low = subthreshold_current(1e-6, 1.0, 0.0, 1.0, vt=0.22, subthreshold_swing=0.1, dibl=0.0)
        high = subthreshold_current(1e-6, 1.0, 0.0, 1.0, vt=0.32, subthreshold_swing=0.1, dibl=0.0)
        assert low / high == pytest.approx(10.0, rel=1e-6)

    def test_subthreshold_increases_with_temperature(self):
        cold = subthreshold_current(1e-6, 1.0, 0.0, 1.0, 0.3, 0.1, 0.1, temperature=300.0)
        hot = subthreshold_current(1e-6, 1.0, 0.0, 1.0, 0.3, 0.1, 0.1, temperature=383.0)
        assert hot > 2.0 * cold

    def test_subthreshold_dibl_increases_leakage_with_vds(self):
        low_vds = subthreshold_current(1e-6, 1.0, 0.0, 0.5, 0.3, 0.1, dibl=0.15)
        high_vds = subthreshold_current(1e-6, 1.0, 0.0, 1.0, 0.3, 0.1, dibl=0.15)
        assert high_vds > low_vds

    def test_subthreshold_zero_vds_means_zero_current(self):
        assert subthreshold_current(1e-6, 1.0, 0.0, 0.0, 0.3, 0.1, 0.1) == 0.0

    def test_subthreshold_scales_linearly_with_width(self):
        one = subthreshold_current(1e-6, 1.0, 0.0, 1.0, 0.3, 0.1, 0.1)
        two = subthreshold_current(2e-6, 1.0, 0.0, 1.0, 0.3, 0.1, 0.1)
        assert two == pytest.approx(2 * one)

    def test_subthreshold_rejects_negative_vds(self):
        with pytest.raises(TechnologyError):
            subthreshold_current(1e-6, 1.0, 0.0, -0.5, 0.3, 0.1, 0.1)

    def test_gate_leakage_zero_at_zero_voltage(self):
        assert gate_leakage_current(1e-6, 45e-9, 1e6, 0.0, 1.0) == 0.0

    def test_gate_leakage_superlinear_in_voltage(self):
        half = gate_leakage_current(1e-6, 45e-9, 1e6, 0.5, 1.0)
        full = gate_leakage_current(1e-6, 45e-9, 1e6, 1.0, 1.0)
        assert full > 4.0 * half

    def test_junction_leakage_scales_with_bias(self):
        half = junction_leakage_current(1e-6, 1e-3, 0.5, 1.0)
        full = junction_leakage_current(1e-6, 1e-3, 1.0, 1.0)
        assert full == pytest.approx(2 * half)

    def test_stack_factor_single_device_is_unity(self):
        assert stack_factor(1) == 1.0

    def test_stack_factor_two_devices_reduces_leakage(self):
        assert stack_factor(2) == pytest.approx(0.2)

    def test_stack_factor_zero_off_devices_is_zero(self):
        assert stack_factor(0) == 0.0

    def test_stack_factor_rejects_bad_base(self):
        with pytest.raises(TechnologyError):
            stack_factor(2, base_factor=1.5)

    def test_vt_decreases_with_temperature(self):
        assert temperature_scaled_vt(0.22, 383.0) < 0.22


class TestMosfet:
    def test_high_vt_leaks_about_an_order_less(self, library):
        nominal = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        high = library.make_transistor(Polarity.NMOS, VtFlavor.HIGH, 1e-6)
        ratio = nominal.off_current() / high.off_current()
        assert 5.0 < ratio < 50.0

    def test_high_vt_drives_less_current(self, library):
        nominal = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        high = library.make_transistor(Polarity.NMOS, VtFlavor.HIGH, 1e-6)
        assert high.saturation_current() < nominal.saturation_current()
        assert high.effective_resistance() > nominal.effective_resistance()

    def test_pmos_weaker_than_nmos(self, library):
        nmos = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        pmos = library.make_transistor(Polarity.PMOS, VtFlavor.NOMINAL, 1e-6)
        assert pmos.saturation_current() < nmos.saturation_current()

    def test_pass_resistance_exceeds_switching_resistance(self, library):
        device = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        assert device.pass_resistance() > device.effective_resistance()

    def test_capacitances_scale_with_width(self, library):
        one = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        two = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 2e-6)
        assert two.gate_capacitance() == pytest.approx(2 * one.gate_capacitance())
        assert two.diffusion_capacitance() == pytest.approx(2 * one.diffusion_capacitance())

    def test_leakage_higher_when_hot(self, library, cold_library):
        hot = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        cold = cold_library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        assert hot.off_current() > 3.0 * cold.off_current()

    def test_resized_preserves_parameters(self, library):
        device = library.make_transistor(Polarity.NMOS, VtFlavor.HIGH, 1e-6)
        bigger = device.resized(3e-6)
        assert bigger.width == pytest.approx(3e-6)
        assert bigger.vt_flavor is VtFlavor.HIGH

    def test_rejects_zero_width(self, library):
        with pytest.raises(TechnologyError):
            library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 0.0)

    def test_rejects_vt_above_supply(self, library):
        params = library.device_parameters(Polarity.NMOS, VtFlavor.NOMINAL).with_threshold(1.5)
        with pytest.raises(TechnologyError):
            Mosfet(params, 1e-6, supply_voltage=1.0)


class TestCornersAndLibrary:
    def test_fast_corner_leaks_more_and_drives_more(self, library):
        typical = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        fast_lib = library.with_corner("FF")
        fast = fast_lib.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        assert fast.off_current() > typical.off_current()
        assert fast.saturation_current() > typical.saturation_current()

    def test_slow_corner_leaks_less(self, library):
        slow = library.with_corner("SS").make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        typical = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        assert slow.off_current() < typical.off_current()

    def test_unknown_corner_raises(self):
        with pytest.raises(TechnologyError):
            get_corner("XX")

    def test_corner_lookup_is_case_insensitive(self):
        assert get_corner("ff").name == "FF"

    def test_operating_condition_temperature_conversion(self):
        condition = OperatingCondition(supply_voltage=1.0, temperature_celsius=110.0)
        assert condition.temperature_kelvin == pytest.approx(383.15)

    def test_default_45nm_matches_paper_operating_point(self, library):
        assert library.supply_voltage == pytest.approx(1.0)
        assert library.clock_frequency == pytest.approx(3e9)
        assert library.clock_period == pytest.approx(1 / 3e9)

    def test_library_wire_model_lookup(self, library):
        model = library.wire_model("intermediate")
        assert model.resistance_per_meter > 0
        with pytest.raises(TechnologyError):
            library.wire_model("bogus")

    def test_with_temperature_changes_leakage_only(self, library):
        cooler = library.with_temperature(25.0)
        hot_leak = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6).off_current()
        cold_leak = cooler.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6).off_current()
        assert cold_leak < hot_leak
        assert cooler.supply_voltage == library.supply_voltage

    def test_library_for_other_nodes(self):
        lib_65 = default_library_for_node("65nm")
        assert lib_65.node.name == "65nm"
        assert lib_65.supply_voltage == pytest.approx(1.1)

    def test_minimum_width_is_two_feature_sizes(self, library):
        assert library.minimum_width == pytest.approx(2 * 45e-9)
