"""Tests for the power analyses (Table 1 quantities) and the core
evaluation / comparison / design-space layer."""

from __future__ import annotations

import pytest

from repro.analysis import describe_output_path, describe_segmentation, render_table
from repro.analysis.sweep import SweepSeries, crossover_point, run_sweep
from repro.core import (
    ExperimentConfig,
    SchemeEvaluator,
    compare_schemes,
    paper_experiment,
    sweep_parameter,
)
from repro.errors import ConfigurationError, PowerError, ReproError
from repro.power import (
    analyse_dynamic,
    analyse_leakage,
    analyse_minimum_idle_time,
    analyse_total_power,
    evaluate_scheme,
    format_evaluation,
    format_table1,
    power_versus_static_probability,
    savings_versus_baseline,
)


@pytest.fixture(scope="module")
def comparison():
    """Full Table 1 comparison at the paper's configuration (computed once)."""
    return compare_schemes(paper_experiment())


class TestLeakageAnalysis:
    def test_savings_relative_to_baseline(self, schemes):
        baseline = analyse_leakage(schemes["SC"])
        dpc = analyse_leakage(schemes["DPC"])
        assert 0.0 < dpc.active_saving_versus(baseline) < 1.0
        assert 0.0 < dpc.standby_saving_versus(baseline) < 1.0

    def test_powers_are_consistent_with_breakdowns(self, schemes):
        analysis = analyse_leakage(schemes["SC"])
        assert analysis.active_power == pytest.approx(
            analysis.active.total * analysis.supply_voltage
        )

    def test_invalid_probability_rejected(self, schemes):
        with pytest.raises(PowerError):
            analyse_leakage(schemes["SC"], static_probability=2.0)


class TestDynamicAndTotalPower:
    def test_dynamic_power_is_energy_times_frequency(self, schemes):
        analysis = analyse_dynamic(schemes["SC"])
        assert analysis.power == pytest.approx(analysis.energy_per_cycle * analysis.frequency)

    def test_energy_per_flit(self, schemes):
        analysis = analyse_dynamic(schemes["SC"])
        assert analysis.energy_per_flit(128) == pytest.approx(analysis.energy_per_cycle / 128)

    def test_total_power_components(self, schemes):
        total = analyse_total_power(schemes["DFC"])
        assert total.total == pytest.approx(total.dynamic_power + total.leakage_power)
        assert 0.0 < total.leakage_fraction < 1.0

    def test_total_power_saving_versus_baseline(self, schemes):
        baseline = analyse_total_power(schemes["SC"])
        sdfc = analyse_total_power(schemes["SDFC"])
        assert sdfc.saving_versus(baseline) > 0

    def test_static_probability_sweep_shows_precharge_sensitivity(self, schemes):
        sweep = power_versus_static_probability(schemes["DPC"], [0.1, 0.5, 0.9])
        totals = [point.total for point in sweep]
        assert totals[1] > totals[2]  # 50 % worse than mostly-ones
        assert totals[0] > totals[2]  # mostly-zeros worst for a pre-charge-high design

    def test_empty_sweep_rejected(self, schemes):
        with pytest.raises(PowerError):
            power_versus_static_probability(schemes["DPC"], [])

    def test_invalid_activity_rejected(self, schemes):
        with pytest.raises(PowerError):
            analyse_dynamic(schemes["SC"], toggle_activity=1.5)


class TestMinimumIdleTime:
    def test_minimum_idle_cycles_are_small_integers(self, schemes):
        for name, scheme in schemes.items():
            analysis = analyse_minimum_idle_time(scheme)
            assert 1 <= analysis.minimum_idle_cycles <= 10, name

    def test_break_even_consistent_with_components(self, schemes):
        analysis = analyse_minimum_idle_time(schemes["DFC"])
        assert analysis.break_even_cycles == pytest.approx(
            analysis.transition_energy / (analysis.power_saved_in_standby * analysis.clock_period)
        )

    def test_minimum_idle_time_seconds(self, schemes):
        analysis = analyse_minimum_idle_time(schemes["SC"])
        assert analysis.minimum_idle_time_seconds == pytest.approx(
            analysis.minimum_idle_cycles / 3e9
        )

    def test_faster_clock_needs_more_cycles(self, schemes):
        slow = analyse_minimum_idle_time(schemes["DFC"], frequency=1e9)
        fast = analyse_minimum_idle_time(schemes["DFC"], frequency=6e9)
        assert fast.minimum_idle_cycles >= slow.minimum_idle_cycles


class TestEvaluationAndSavings:
    def test_evaluate_scheme_gathers_all_rows(self, schemes):
        evaluation = evaluate_scheme(schemes["DPC"])
        assert evaluation.scheme == "DPC"
        assert evaluation.delay.high_to_low > 0
        assert evaluation.leakage.active_power > 0
        assert evaluation.total_power.total > 0
        assert evaluation.idle_time.minimum_idle_cycles >= 1

    def test_savings_versus_baseline_signs(self, schemes):
        baseline = evaluate_scheme(schemes["SC"])
        dpc = savings_versus_baseline(evaluate_scheme(schemes["DPC"]), baseline)
        assert dpc.active_leakage_saving > 0
        assert dpc.standby_leakage_saving > 0
        assert dpc.delay_penalty == 0.0

    def test_savings_percentages_mapping(self, schemes):
        baseline = evaluate_scheme(schemes["SC"])
        saving = savings_versus_baseline(evaluate_scheme(schemes["SDPC"]), baseline)
        percentages = saving.as_percentages()
        assert percentages["active_leakage_saving_percent"] == pytest.approx(
            saving.active_leakage_saving * 100
        )

    def test_report_formatting_contains_all_schemes(self, schemes):
        evaluations = {name: evaluate_scheme(scheme) for name, scheme in schemes.items()}
        baseline = evaluations["SC"]
        savings = {
            name: savings_versus_baseline(evaluation, baseline)
            for name, evaluation in evaluations.items()
            if name != "SC"
        }
        text = format_table1(evaluations, savings)
        for name in schemes:
            assert name in text
        assert "Minimum Idle Time" in text

    def test_single_evaluation_formatting(self, schemes):
        text = format_evaluation(evaluate_scheme(schemes["DFC"]))
        assert "DFC" in text and "mW" in text


class TestExperimentConfig:
    def test_paper_experiment_defaults(self):
        config = paper_experiment()
        assert config.technology_node == "45nm"
        assert config.clock_frequency == pytest.approx(3e9)
        assert config.static_probability == 0.5
        assert config.crossbar.flit_width == 128

    def test_build_library_uses_config(self):
        config = ExperimentConfig(temperature_celsius=25.0, clock_frequency=2e9)
        library = config.build_library()
        assert library.clock_frequency == pytest.approx(2e9)
        assert library.temperature_kelvin == pytest.approx(298.15)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(static_probability=1.5)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(clock_frequency=0.0)

    def test_with_overrides(self):
        config = paper_experiment().with_overrides(corner="FF")
        assert config.corner == "FF"


class TestSchemeEvaluatorAndComparison:
    def test_evaluator_produces_inventory(self):
        evaluator = SchemeEvaluator()
        result = evaluator.evaluate("DFC")
        assert result.scheme_name == "DFC"
        assert 0.0 < result.high_vt_device_fraction < 1.0

    def test_comparison_contains_all_schemes_in_order(self, comparison):
        assert comparison.scheme_names == ["SC", "DFC", "DPC", "SDFC", "SDPC"]

    def test_comparison_baseline_has_no_savings_entry(self, comparison):
        with pytest.raises(ConfigurationError):
            comparison.saving("SC")

    def test_comparison_records_have_expected_keys(self, comparison):
        record = comparison.as_records()[0]
        for key in ("scheme", "high_to_low_ps", "active_leakage_saving_percent",
                    "total_power_mw", "minimum_idle_cycles"):
            assert key in record

    def test_comparison_table_text_renders(self, comparison):
        text = comparison.as_table_text()
        assert "SDPC" in text and "Delay Penalty" in text

    def test_unknown_scheme_lookup_raises(self, comparison):
        with pytest.raises(ConfigurationError):
            comparison.evaluation("XYZ")

    def test_comparison_requires_baseline_in_scheme_list(self):
        with pytest.raises(ConfigurationError):
            compare_schemes(scheme_names=["DFC", "DPC"], baseline_name="SC")

    def test_subset_comparison(self):
        comparison = compare_schemes(scheme_names=["SC", "DPC"])
        assert comparison.scheme_names == ["SC", "DPC"]
        assert comparison.saving("DPC").active_leakage_saving > 0


class TestDesignSpace:
    def test_temperature_sweep_changes_leakage_not_ordering(self):
        result = sweep_parameter("temperature_celsius", [25.0, 110.0],
                                 scheme_names=["SC", "SDPC"])
        series = result.series("SDPC", "active_leakage_saving_percent")
        assert len(series) == 2
        for _, saving in series:
            assert saving > 0

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(ConfigurationError):
            sweep_parameter("oxide_thickness", [1, 2])

    def test_sweep_rejects_empty_values(self):
        with pytest.raises(ConfigurationError):
            sweep_parameter("corner", [])

    def test_series_unknown_metric_rejected(self):
        result = sweep_parameter("static_probability", [0.5], scheme_names=["SC", "DPC"])
        with pytest.raises(ConfigurationError):
            result.series("DPC", "bogus_metric")


class TestAnalysisHelpers:
    def test_render_table_alignment_and_values(self):
        text = render_table(["scheme", "value"], [["SC", 1.23456], ["DPC", 7]])
        assert "scheme" in text and "1.235" in text and "DPC" in text

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ReproError):
            render_table(["a", "b"], [["only-one"]])

    def test_run_sweep_and_crossover(self):
        rising = run_sweep("rising", [0, 1, 2, 3], lambda x: float(x))
        falling = run_sweep("falling", [0, 1, 2, 3], lambda x: 3.0 - x)
        assert crossover_point(rising, falling) == pytest.approx(1.5)

    def test_crossover_none_when_no_intersection(self):
        a = SweepSeries("a", (0.0, 1.0), (5.0, 6.0))
        b = SweepSeries("b", (0.0, 1.0), (1.0, 2.0))
        assert crossover_point(a, b) is None

    def test_crossover_requires_same_grid(self):
        a = SweepSeries("a", (0.0, 1.0), (5.0, 6.0))
        b = SweepSeries("b", (0.0, 2.0), (1.0, 2.0))
        with pytest.raises(ReproError):
            crossover_point(a, b)

    def test_describe_output_path_matches_scheme_features(self, schemes):
        structure = describe_output_path(schemes["DPC"])
        assert structure.has_precharge and not structure.has_keeper
        assert structure.high_vt_count > 0
        assert "precharge" in structure.high_vt_roles

    def test_describe_segmentation_reports_path_asymmetry(self, schemes):
        structure = describe_segmentation(schemes["SDFC"])
        assert structure.far_path_delay > structure.near_path_delay
        assert 0.0 < structure.near_path_slack_fraction < 1.0

    def test_describe_segmentation_rejects_flat_scheme(self, schemes):
        with pytest.raises(ReproError):
            describe_segmentation(schemes["SC"])
