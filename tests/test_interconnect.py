"""Tests for the interconnect substrate: wires, pi models, buses,
crosstalk, repeaters and segmentation."""

from __future__ import annotations

import pytest

from repro.errors import CrossbarError, TechnologyError
from repro.interconnect import (
    Bus,
    NeighbourActivity,
    PiModel,
    SegmentationPlan,
    SegmentedWire,
    Wire,
    average_miller_factor,
    coupling_delay_factor,
    miller_factor,
    optimal_repeaters,
    repeated_wire_delay,
    worst_case_miller_factor,
)


class TestWire:
    def test_resistance_and_capacitance_scale_with_length(self, library):
        short = Wire.on_layer(library, 50e-6)
        long = Wire.on_layer(library, 100e-6)
        assert long.resistance == pytest.approx(2 * short.resistance)
        assert long.capacitance == pytest.approx(2 * short.capacitance)

    def test_pi_model_splits_capacitance_evenly(self, library):
        wire = Wire.on_layer(library, 100e-6)
        pi = wire.pi_model()
        assert pi.near_capacitance == pytest.approx(pi.far_capacitance)
        assert pi.total_capacitance == pytest.approx(wire.capacitance)
        assert pi.resistance == pytest.approx(wire.resistance)

    def test_split_preserves_totals(self, library):
        wire = Wire.on_layer(library, 100e-6)
        near, far = wire.split([0.5, 0.5])
        assert near.resistance + far.resistance == pytest.approx(wire.resistance)
        assert near.capacitance + far.capacitance == pytest.approx(wire.capacitance)

    def test_split_rejects_bad_fractions(self, library):
        wire = Wire.on_layer(library, 100e-6)
        with pytest.raises(TechnologyError):
            wire.split([0.7, 0.7])
        with pytest.raises(TechnologyError):
            wire.split([])

    def test_switching_capacitance_with_miller(self, library):
        wire = Wire.on_layer(library, 100e-6)
        assert wire.switching_capacitance(2.0) > wire.capacitance

    def test_negative_length_rejected(self, library):
        with pytest.raises(TechnologyError):
            Wire(length=-1e-6, model=library.wire_model())


class TestPiModel:
    def test_driver_stage_delay_grows_with_load(self):
        pi = PiModel(10e-15, 500.0, 10e-15)
        assert pi.driver_stage_delay(1000.0, 20e-15) > pi.driver_stage_delay(1000.0, 5e-15)

    def test_cascade_preserves_total_r_and_c(self):
        a = PiModel(5e-15, 200.0, 5e-15)
        b = PiModel(7e-15, 300.0, 7e-15)
        cascade = a.cascaded_with(b)
        assert cascade.resistance == pytest.approx(500.0)
        assert cascade.total_capacitance == pytest.approx(24e-15)

    def test_cascade_elmore_matches_manual_sum(self):
        a = PiModel(5e-15, 200.0, 5e-15)
        b = PiModel(7e-15, 300.0, 7e-15)
        driver = 1000.0
        load = 10e-15
        # Elmore through the cascade computed edge by edge.
        ln2 = 0.6931471805599453
        manual = ln2 * (
            driver * (24e-15 + load)
            + 200.0 * (5e-15 + 14e-15 + load)
            + 300.0 * (7e-15 + load)
        )
        cascade = a.cascaded_with(b)
        assert cascade.driver_stage_delay(driver, load) == pytest.approx(manual, rel=0.15)

    def test_negative_values_rejected(self):
        with pytest.raises(TechnologyError):
            PiModel(-1e-15, 100.0, 1e-15)


class TestCrosstalk:
    def test_miller_factors(self):
        assert miller_factor(NeighbourActivity.QUIET) == 1.0
        assert miller_factor(NeighbourActivity.SAME_DIRECTION) == 0.0
        assert miller_factor(NeighbourActivity.OPPOSITE_DIRECTION) == 2.0
        assert worst_case_miller_factor() == 2.0

    def test_average_miller_factor_weights(self):
        assert average_miller_factor(1.0, 0.0, 0.0) == pytest.approx(1.0)
        assert average_miller_factor(0.0, 0.0, 1.0) == pytest.approx(2.0)

    def test_average_miller_rejects_bad_probabilities(self):
        with pytest.raises(TechnologyError):
            average_miller_factor(0.5, 0.5, 0.5)

    def test_coupling_delay_factor_bounds(self):
        assert coupling_delay_factor(1e-15, 1e-15, 2.0) > 1.0
        assert coupling_delay_factor(1e-15, 1e-15, 0.0) < 1.0
        assert coupling_delay_factor(1e-15, 0.0, 2.0) == pytest.approx(1.0)


class TestBus:
    def test_transition_energy_counts_rising_bits(self, library):
        bus = Bus(8, 100e-6, library.wire_model())
        zero_to_ones = bus.transition_energy(0b0000, 0b1111, 1.0)
        assert zero_to_ones.switched_bits == 4
        assert zero_to_ones.energy > 0

    def test_no_transition_no_energy(self, library):
        bus = Bus(8, 100e-6, library.wire_model())
        transition = bus.transition_energy(0xAA, 0xAA, 1.0)
        assert transition.switched_bits == 0
        assert transition.energy == 0.0

    def test_opposite_toggles_cost_more_than_same_direction(self, library):
        bus = Bus(2, 100e-6, library.wire_model())
        together = bus.transition_energy(0b00, 0b11, 1.0)
        opposite = bus.transition_energy(0b01, 0b10, 1.0)
        assert opposite.energy > together.energy

    def test_random_data_energy_positive_and_scales_with_width(self, library):
        narrow = Bus(32, 100e-6, library.wire_model())
        wide = Bus(128, 100e-6, library.wire_model())
        assert wide.random_data_energy_per_cycle(1.0) == pytest.approx(
            4 * narrow.random_data_energy_per_cycle(1.0)
        )

    def test_total_capacitances(self, library):
        bus = Bus(128, 100e-6, library.wire_model())
        assert bus.total_ground_capacitance() > 0
        assert bus.total_coupling_capacitance() > 0

    def test_invalid_width_rejected(self, library):
        with pytest.raises(TechnologyError):
            Bus(0, 100e-6, library.wire_model())


class TestRepeaters:
    def test_long_wire_gets_multiple_repeaters(self, library):
        wire = Wire.on_layer(library, 2e-3, "global")
        design = optimal_repeaters(library, wire)
        assert design.stage_count >= 2
        assert design.repeater_width > library.minimum_width

    def test_repeated_delay_better_than_unrepeated_for_long_wire(self, library):
        wire = Wire.on_layer(library, 5e-3, "global")
        driver_resistance = 1000.0
        unrepeated = 0.69 * (driver_resistance * wire.capacitance + wire.resistance * wire.capacitance / 2)
        assert repeated_wire_delay(library, wire) < unrepeated

    def test_repeated_delay_scales_roughly_linearly_with_length(self, library):
        one = repeated_wire_delay(library, Wire.on_layer(library, 1e-3, "global"))
        two = repeated_wire_delay(library, Wire.on_layer(library, 2e-3, "global"))
        assert two == pytest.approx(2 * one, rel=0.35)

    def test_zero_length_wire_rejected(self, library):
        with pytest.raises(TechnologyError):
            optimal_repeaters(library, Wire.on_layer(library, 0.0))


class TestSegmentation:
    def test_plan_validation(self):
        with pytest.raises(CrossbarError):
            SegmentationPlan(near_fraction=0.0)
        with pytest.raises(CrossbarError):
            SegmentationPlan(inputs_on_near_segment=4, total_inputs=4)
        with pytest.raises(CrossbarError):
            SegmentationPlan(segment_count=1)

    def test_near_traffic_fraction(self):
        plan = SegmentationPlan(inputs_on_near_segment=2, total_inputs=4)
        assert plan.near_traffic_fraction == pytest.approx(0.5)

    def test_average_switched_fraction_below_one(self):
        plan = SegmentationPlan(near_fraction=0.5, inputs_on_near_segment=2, total_inputs=4)
        assert plan.average_switched_fraction() == pytest.approx(0.75)

    def test_segmented_wire_preserves_totals(self, library):
        wire = Wire.on_layer(library, 100e-6)
        plan = SegmentationPlan()
        segmented = SegmentedWire.from_wire(wire, plan)
        assert segmented.total_resistance == pytest.approx(wire.resistance)
        assert segmented.total_capacitance == pytest.approx(wire.capacitance)

    def test_segmented_average_switched_capacitance_below_total(self, library):
        wire = Wire.on_layer(library, 100e-6)
        segmented = SegmentedWire.from_wire(wire, SegmentationPlan())
        assert segmented.average_switched_capacitance() < segmented.total_capacitance
