"""Tests for the circuit substrate: leakage accounting, biasing, gates,
netlists, RC trees, the transient solver and dynamic-energy helpers."""

from __future__ import annotations

import pytest

from repro.circuit import (
    GROUND_NET,
    SUPPLY_NET,
    BiasState,
    Buffer,
    DeviceRole,
    Inverter,
    Keeper,
    LeakageBreakdown,
    Nand2,
    Netlist,
    Nor2,
    PassTransistorSwitch,
    PrechargeTransistor,
    RCTransientSolver,
    RCTree,
    SleepTransistor,
    StateLeakage,
    TransmissionGate,
    contention_energy,
    device_leakage,
    dynamic_power,
    leakage_from_node_voltages,
    lumped_stage_delay,
    precharge_energy_per_cycle,
    switching_energy,
)
from repro.circuit.devices import DeviceInstance
from repro.errors import CircuitError, PowerError
from repro.technology import Polarity, VtFlavor


class TestLeakageBreakdown:
    def test_total_is_sum_of_mechanisms(self):
        breakdown = LeakageBreakdown(subthreshold=1e-6, gate=2e-6, junction=3e-6)
        assert breakdown.total == pytest.approx(6e-6)

    def test_addition_is_componentwise(self):
        a = LeakageBreakdown(1e-6, 2e-6, 3e-6)
        b = LeakageBreakdown(4e-6, 5e-6, 6e-6)
        combined = a + b
        assert combined.subthreshold == pytest.approx(5e-6)
        assert combined.gate == pytest.approx(7e-6)
        assert combined.junction == pytest.approx(9e-6)

    def test_scaling(self):
        breakdown = LeakageBreakdown(1e-6, 1e-6, 1e-6).scaled(128)
        assert breakdown.total == pytest.approx(384e-6)

    def test_power_at_supply(self):
        assert LeakageBreakdown(1e-3, 0, 0).power(1.0) == pytest.approx(1e-3)

    def test_negative_components_rejected(self):
        with pytest.raises(CircuitError):
            LeakageBreakdown(subthreshold=-1e-9)

    def test_negative_scale_rejected(self):
        with pytest.raises(CircuitError):
            LeakageBreakdown(1e-6, 0, 0).scaled(-1)

    def test_zero_is_additive_identity(self):
        a = LeakageBreakdown(1e-6, 2e-6, 3e-6)
        assert (a + LeakageBreakdown.zero()).total == pytest.approx(a.total)


class TestDeviceLeakage:
    def test_off_device_leaks_subthreshold(self, library):
        device = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        breakdown = device_leakage(device, BiasState(vgs=0.0, vds=1.0, gate_oxide_voltage=0.0))
        assert breakdown.subthreshold > 0
        assert breakdown.subthreshold == pytest.approx(device.off_current(), rel=1e-6)

    def test_stack_effect_reduces_subthreshold(self, library):
        device = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        single = device_leakage(device, BiasState(vds=1.0))
        stacked = device_leakage(device, BiasState(vds=1.0, series_off_devices=2))
        assert stacked.subthreshold < single.subthreshold

    def test_state_leakage_accumulates_with_multiplicity(self, library):
        device = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        state = StateLeakage("active")
        state.add("pass", device, BiasState(vds=1.0), multiplicity=4)
        state.add("driver", device, BiasState(vds=1.0), multiplicity=1)
        assert state.total().subthreshold == pytest.approx(5 * device.off_current(), rel=1e-6)
        assert state.total_current() > state.total().subthreshold  # junction leakage included
        assert set(state.by_label()) == {"pass", "driver"}

    def test_bias_state_validation(self):
        with pytest.raises(CircuitError):
            BiasState(vds=-0.1)
        with pytest.raises(CircuitError):
            BiasState(series_off_devices=0)


class TestBiasing:
    def test_on_nmos_has_no_subthreshold_but_gate_leaks(self, library):
        device = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        breakdown = leakage_from_node_voltages(device, 1.0, 0.0, 0.0)
        assert breakdown.subthreshold == 0.0
        assert breakdown.gate > 0.0

    def test_off_nmos_with_full_vds_leaks(self, library):
        device = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        breakdown = leakage_from_node_voltages(device, 0.0, 1.0, 0.0)
        assert breakdown.subthreshold > 0

    def test_off_device_with_equal_terminals_has_no_subthreshold(self, library):
        device = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        breakdown = leakage_from_node_voltages(device, 0.0, 0.0, 0.0)
        assert breakdown.subthreshold == 0.0
        assert breakdown.gate == 0.0

    def test_pmos_off_when_gate_high(self, library):
        device = library.make_transistor(Polarity.PMOS, VtFlavor.NOMINAL, 1e-6)
        off = leakage_from_node_voltages(device, 1.0, 0.0, 1.0)
        on = leakage_from_node_voltages(device, 0.0, 0.0, 1.0)
        assert off.subthreshold > 0
        assert on.subthreshold == 0.0

    def test_high_vt_off_device_leaks_less(self, library):
        nominal = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        high = library.make_transistor(Polarity.NMOS, VtFlavor.HIGH, 1e-6)
        assert leakage_from_node_voltages(high, 0.0, 1.0, 0.0).subthreshold < \
            leakage_from_node_voltages(nominal, 0.0, 1.0, 0.0).subthreshold

    def test_voltage_outside_rails_rejected(self, library):
        device = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        with pytest.raises(CircuitError):
            leakage_from_node_voltages(device, 2.0, 0.0, 0.0)


class TestGates:
    def test_inverter_leakage_depends_on_input_state(self, library):
        inverter = Inverter(library, 1e-6, 2e-6)
        high = inverter.leakage(True).total
        low = inverter.leakage(False).total
        assert high > 0 and low > 0
        assert high != pytest.approx(low)

    def test_inverter_average_leakage_between_extremes(self, library):
        inverter = Inverter(library, 1e-6, 2e-6)
        average = inverter.average_leakage(0.5).total
        assert min(inverter.leakage(True).total, inverter.leakage(False).total) < average
        assert average < max(inverter.leakage(True).total, inverter.leakage(False).total)

    def test_asymmetric_vt_inverter_leaks_less_in_matching_state(self, library):
        symmetric = Inverter(library, 1e-6, 2e-6)
        asymmetric = Inverter(library, 1e-6, 2e-6,
                              nmos_flavor=VtFlavor.HIGH, pmos_flavor=VtFlavor.NOMINAL)
        # With the input low the NMOS is the leaking device.
        assert asymmetric.leakage(False).total < symmetric.leakage(False).total

    def test_inverter_resistances_positive_and_ordered(self, library):
        inverter = Inverter(library, 1e-6, 2e-6)
        assert inverter.pull_down_resistance() > 0
        assert inverter.pull_up_resistance() > 0

    def test_buffer_composes_two_inverters(self, library):
        first = Inverter(library, 1e-6, 2e-6)
        second = Inverter(library, 2e-6, 4e-6)
        buffer = Buffer(first, second)
        assert buffer.input_capacitance() == pytest.approx(first.input_capacitance())
        assert buffer.leakage(True).total == pytest.approx(
            (first.leakage(True) + second.leakage(False)).total
        )

    def test_pass_transistor_off_leakage_depends_on_terminal_difference(self, library):
        switch = PassTransistorSwitch(library, 1.4e-6)
        different = switch.leakage(False, 1.0, 0.0).total
        same = switch.leakage(False, 0.0, 0.0).total
        assert different > same

    def test_pass_transistor_on_resistance_positive(self, library):
        switch = PassTransistorSwitch(library, 1.4e-6)
        assert switch.on_resistance() > 0

    def test_sleep_transistor_gate_leaks_when_asserted(self, library):
        sleep = SleepTransistor(library, 1e-6)
        asleep = sleep.leakage(True, 0.0)
        awake_high_node = sleep.leakage(False, 1.0)
        assert asleep.gate > 0
        assert awake_high_node.subthreshold > 0

    def test_precharge_leaks_when_off_and_node_low(self, library):
        precharge = PrechargeTransistor(library, 0.8e-6)
        off_low = precharge.leakage(False, 0.0)
        off_high = precharge.leakage(False, 1.0)
        assert off_low.subthreshold > off_high.subthreshold

    def test_keeper_high_vt_is_weaker_and_less_leaky(self, library):
        nominal = Keeper(library, 0.55e-6, flavor=VtFlavor.NOMINAL)
        high = Keeper(library, 0.55e-6, flavor=VtFlavor.HIGH)
        assert high.opposing_current() < nominal.opposing_current()
        assert high.leakage(False).subthreshold < nominal.leakage(False).subthreshold

    def test_transmission_gate_resistance_below_either_device(self, library):
        tgate = TransmissionGate(library, 1e-6, 2e-6)
        assert tgate.on_resistance() < tgate.nmos.effective_resistance()
        assert tgate.on_resistance() < tgate.pmos.effective_resistance()

    def test_nand_and_nor_average_leakage_positive(self, library):
        nand = Nand2(library, 1e-6, 2e-6)
        nor = Nor2(library, 1e-6, 2e-6)
        assert nand.average_leakage().total > 0
        assert nor.average_leakage().total > 0

    def test_nand_leaks_least_with_both_inputs_low(self, library):
        nand = Nand2(library, 1e-6, 2e-6)
        both_low = nand.leakage(False, False).subthreshold
        one_high = nand.leakage(True, False).subthreshold
        assert both_low < one_high  # stack effect with both NMOS off

    def test_gate_devices_emit_netlist_instances(self, library):
        inverter = Inverter(library, 1e-6, 2e-6)
        devices = inverter.devices("in", "out", "u0")
        assert len(devices) == 2
        assert {device.source for device in devices} == {SUPPLY_NET, GROUND_NET}


class TestNetlist:
    def _simple_netlist(self, library):
        netlist = Netlist("test")
        inverter = Inverter(library, 1e-6, 2e-6)
        for device in inverter.devices("a", "b", "u0"):
            netlist.add_device(device)
        switch = PassTransistorSwitch(library, 1.4e-6)
        for device in switch.devices("grant", "b", "c", "u1"):
            netlist.add_device(device)
        return netlist

    def test_device_and_net_bookkeeping(self, library):
        netlist = self._simple_netlist(library)
        assert len(netlist) == 3
        assert {"a", "b", "c", "grant", SUPPLY_NET, GROUND_NET} <= netlist.nets

    def test_duplicate_device_name_rejected(self, library):
        netlist = self._simple_netlist(library)
        duplicate = netlist.devices[0]
        with pytest.raises(CircuitError):
            netlist.add_device(duplicate)

    def test_devices_on_net_and_fan_in(self, library):
        netlist = self._simple_netlist(library)
        assert netlist.fan_in("b") == 3  # inverter NMOS+PMOS drains plus pass terminal

    def test_channel_graph_reaches_rails(self, library):
        netlist = self._simple_netlist(library)
        assert netlist.net_is_drivable("b")
        assert netlist.net_is_drivable("c")

    def test_statistics_counts_by_flavor_and_role(self, library):
        netlist = self._simple_netlist(library)
        stats = netlist.statistics()
        assert stats.device_count == 3
        assert stats.count_by_role[DeviceRole.DRIVER] == 2
        assert stats.count_by_role[DeviceRole.PASS_TRANSISTOR] == 1
        assert stats.high_vt_fraction == 0.0

    def test_unknown_device_lookup_raises(self, library):
        netlist = self._simple_netlist(library)
        with pytest.raises(CircuitError):
            netlist.device("missing")

    def test_device_instance_validation(self, library):
        mosfet = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1e-6)
        with pytest.raises(CircuitError):
            DeviceInstance("", mosfet, "g", "d", "s")
        with pytest.raises(CircuitError):
            DeviceInstance("m1", mosfet, "g", "", "s")


class TestRcTree:
    def test_single_rc_elmore(self):
        tree = RCTree("drv")
        tree.add_node("out", "drv", resistance=1000.0, capacitance=1e-15)
        assert tree.elmore_delay("out") == pytest.approx(1000.0 * 1e-15)

    def test_driver_resistance_sees_total_capacitance(self):
        tree = RCTree("drv")
        tree.add_node("a", "drv", 100.0, 1e-15)
        tree.add_node("b", "a", 100.0, 1e-15)
        delay = tree.elmore_delay_from_driver("b", driver_resistance=1000.0)
        expected = 1000.0 * 2e-15 + 100.0 * 2e-15 + 100.0 * 1e-15
        assert delay == pytest.approx(expected)

    def test_wire_ladder_approaches_distributed_limit(self, library):
        # Elmore of a distributed RC line is R*C/2; a 5-section ladder should
        # land between the lumped (R*C) and distributed (R*C/2) values.
        resistance, capacitance = 1000.0, 100e-15
        tree = RCTree("drv")
        tree.add_wire("drv", "out", resistance, capacitance, segments=5)
        delay = tree.elmore_delay("out")
        assert 0.5 * resistance * capacitance < delay < resistance * capacitance
        assert delay == pytest.approx(0.6 * resistance * capacitance, rel=0.01)

    def test_downstream_capacitance(self):
        tree = RCTree("drv")
        tree.add_node("a", "drv", 1.0, 1e-15)
        tree.add_node("b", "a", 1.0, 2e-15)
        tree.add_node("c", "a", 1.0, 3e-15)
        assert tree.downstream_capacitance("a") == pytest.approx(6e-15)
        assert tree.total_capacitance() == pytest.approx(6e-15)

    def test_duplicate_and_missing_nodes_rejected(self):
        tree = RCTree("drv")
        tree.add_node("a", "drv", 1.0, 1e-15)
        with pytest.raises(CircuitError):
            tree.add_node("a", "drv", 1.0, 0.0)
        with pytest.raises(CircuitError):
            tree.add_node("b", "missing", 1.0, 0.0)
        with pytest.raises(CircuitError):
            tree.elmore_delay("missing")

    def test_lumped_stage_delay_closed_form(self):
        delay = lumped_stage_delay(1000.0, 10e-15, wire_resistance=500.0, wire_capacitance=20e-15)
        assert delay > 0.693 * 1000.0 * 30e-15  # at least the driver term


class TestTransientSolver:
    def test_transient_matches_elmore_within_tolerance(self, library):
        tree = RCTree("drv")
        tree.add_wire("drv", "mid", 500.0, 30e-15, segments=5)
        tree.add_node("out", "mid", 200.0, 10e-15)
        elmore = tree.step_delay_from_driver("out", driver_resistance=800.0)
        solver = RCTransientSolver(tree, driver_resistance=800.0, supply_voltage=1.0)
        transient = solver.fifty_percent_delay("out")
        assert transient == pytest.approx(elmore, rel=0.25)

    def test_falling_step_symmetric_with_rising(self):
        tree = RCTree("drv")
        tree.add_node("out", "drv", 1000.0, 10e-15)
        solver = RCTransientSolver(tree, 500.0, 1.0)
        rising = solver.fifty_percent_delay("out", rising=True)
        falling = solver.fifty_percent_delay("out", rising=False)
        assert rising == pytest.approx(falling, rel=1e-6)

    def test_waveform_settles_to_supply(self):
        tree = RCTree("drv")
        tree.add_node("out", "drv", 1000.0, 10e-15)
        solver = RCTransientSolver(tree, 500.0, 1.0)
        result = solver.rising_step(duration=1e-9)
        assert result.voltage_of("out")[-1] == pytest.approx(1.0, abs=0.01)

    def test_crossing_time_error_when_window_too_short(self):
        tree = RCTree("drv")
        tree.add_node("out", "drv", 1e6, 1e-12)  # very slow node
        solver = RCTransientSolver(tree, 1e6, 1.0)
        result = solver.rising_step(duration=1e-12)
        with pytest.raises(CircuitError):
            result.crossing_time("out", 0.5)


class TestDynamicHelpers:
    def test_switching_energy_cv2(self):
        assert switching_energy(100e-15, 1.0) == pytest.approx(100e-15)

    def test_dynamic_power_scales_with_activity_and_frequency(self):
        base = dynamic_power(100e-15, 1.0, 3e9, 0.25)
        assert dynamic_power(100e-15, 1.0, 3e9, 0.5) == pytest.approx(2 * base)
        assert dynamic_power(100e-15, 1.0, 6e9, 0.25) == pytest.approx(2 * base)

    def test_contention_energy(self):
        assert contention_energy(1e-3, 50e-12, 1.0) == pytest.approx(50e-15)

    def test_precharge_energy_zero_when_never_discharged(self):
        assert precharge_energy_per_cycle(100e-15, 1.0, 0.0) == 0.0

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(PowerError):
            dynamic_power(1e-15, 1.0, 1e9, 1.5)
        with pytest.raises(PowerError):
            precharge_energy_per_cycle(1e-15, 1.0, -0.1)

    def test_negative_capacitance_rejected(self):
        with pytest.raises(PowerError):
            switching_energy(-1e-15, 1.0)
