"""Edge-case tests that cut across modules: the exception hierarchy,
formatting helpers, and defensive checks that protect downstream users."""

from __future__ import annotations

import pytest

from repro import ReproError, available_schemes, create_scheme
from repro.analysis import render_table
from repro.crossbar import CrossbarConfig, PortDirection
from repro.errors import (
    CircuitError,
    ConfigurationError,
    CrossbarError,
    NocError,
    PowerError,
    TechnologyError,
    TimingError,
)
from repro.noc import Mesh, NetworkSimulator, TrafficConfig
from repro.power import analyse_minimum_idle_time


class TestErrorHierarchy:
    def test_every_domain_error_is_a_repro_error(self):
        for error_type in (TechnologyError, CircuitError, TimingError, CrossbarError,
                           PowerError, NocError, ConfigurationError):
            assert issubclass(error_type, ReproError)

    def test_domain_errors_are_distinct(self):
        assert not issubclass(TechnologyError, CircuitError)
        assert not issubclass(NocError, PowerError)

    def test_library_raises_repro_errors_not_bare_exceptions(self, library):
        with pytest.raises(ReproError):
            create_scheme("NOPE", library)


class TestPortDirections:
    def test_five_ports_in_paper_order(self):
        ports = PortDirection.ordered()
        assert len(ports) == 5
        assert ports[0] is PortDirection.NORTH
        assert ports[-1] is PortDirection.PE

    def test_port_values_are_stable_strings(self):
        assert {port.value for port in PortDirection} == {"north", "south", "west", "east", "pe"}


class TestRenderTableEdges:
    def test_single_column_table(self):
        text = render_table(["only"], [["a"], ["b"]])
        assert "only" in text and "a" in text

    def test_boolean_cells_render_yes_no(self):
        text = render_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_empty_rows_allowed(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_title_prepended(self):
        assert render_table(["a"], [[1]], title="My Title").startswith("My Title")


class TestSchemeScaling:
    def test_larger_radix_crossbar_leaks_more(self, library):
        small = create_scheme("SC", library, CrossbarConfig(flit_width=16, port_count=4))
        large = create_scheme("SC", library, CrossbarConfig(flit_width=16, port_count=5))
        assert large.active_leakage_power() > small.active_leakage_power()

    def test_savings_shape_holds_for_a_64_bit_crossbar(self, library):
        config = CrossbarConfig(flit_width=64)
        baseline = create_scheme("SC", library, config).active_leakage_power()
        savings = {
            name: 1 - create_scheme(name, library, config).active_leakage_power() / baseline
            for name in ("DFC", "DPC", "SDPC")
        }
        assert savings["DFC"] < savings["DPC"] < savings["SDPC"]

    def test_every_registered_scheme_evaluates_without_error(self, library):
        config = CrossbarConfig(flit_width=8)
        for name in available_schemes():
            scheme = create_scheme(name, library, config)
            assert scheme.total_power() > 0
            assert analyse_minimum_idle_time(scheme).minimum_idle_cycles >= 1


class TestSimulatorEdges:
    def test_two_node_mesh_delivers_traffic(self):
        mesh = Mesh(2, 1)
        result = NetworkSimulator(mesh, TrafficConfig(injection_rate=0.2, packet_length=1,
                                                      seed=4)).run(500, 50)
        assert result.latency.ejected_flits > 0

    def test_saturating_load_does_not_crash_and_drops_are_counted(self):
        mesh = Mesh(2, 2)
        simulator = NetworkSimulator(mesh, TrafficConfig(injection_rate=1.0, packet_length=4,
                                                         seed=4))
        result = simulator.run(400, 0)
        assert result.latency.ejected_flits > 0
        assert result.dropped_injections >= 0

    def test_router_lookup_outside_mesh_raises(self):
        with pytest.raises(NocError):
            Mesh(2, 2).router((5, 5))
