"""Multi-writer index journaling for the disk cache (ISSUE 4).

Two writers sharing one directory must not clobber each other's index
bookkeeping: with a ``writer_id`` each appends to its own
``index.<id>.journal``, readers merge every journal at open, and
``compact()`` folds the journals back into ``index.json``.  A crash
mid-append leaves a truncated last line that readers must skip.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.engine import EvaluationCache
from repro.engine.cache import CachedEntry, JOURNAL_GLOB
from repro.errors import ConfigurationError


def key_of(tag: str) -> str:
    """A distinct, shard-friendly 64-hex key per tag."""
    return hashlib.sha256(tag.encode("utf-8")).hexdigest()


def put(cache: EvaluationCache, tag: str) -> str:
    key = key_of(tag)
    cache.put(key, CachedEntry(records=[{"scheme": "SC", "tag": tag}]))
    return key


class TestJournaledWriters:
    def test_writer_id_requires_directory(self):
        with pytest.raises(ConfigurationError, match="directory"):
            EvaluationCache(writer_id="a")

    def test_writer_id_must_be_filesystem_safe(self, tmp_path):
        for bad in ("", "a/b", "../up", ".hidden", "x" * 65):
            with pytest.raises(ConfigurationError):
                EvaluationCache(directory=tmp_path, writer_id=bad)

    def test_journaled_writer_appends_instead_of_rewriting_index(self, tmp_path):
        writer = EvaluationCache(directory=tmp_path, writer_id="alpha")
        put(writer, "one")
        writer.flush_index()
        assert (tmp_path / "index.alpha.journal").is_file()
        assert not (tmp_path / "index.json").is_file()

    def test_two_concurrent_writers_merge_on_read(self, tmp_path):
        a = EvaluationCache(directory=tmp_path, writer_id="a")
        b = EvaluationCache(directory=tmp_path, writer_id="b")
        key_a = put(a, "from-a")
        key_b = put(b, "from-b")
        a.flush_index()
        b.flush_index()

        reader = EvaluationCache(directory=tmp_path)
        stats = reader.disk_stats()
        assert stats["entries"] == 2
        assert stats["journals"] == 2
        assert reader.get(key_a).records == [{"scheme": "SC", "tag": "from-a"}]
        assert reader.get(key_b).records == [{"scheme": "SC", "tag": "from-b"}]

    def test_compact_folds_journals_into_index_json(self, tmp_path):
        a = EvaluationCache(directory=tmp_path, writer_id="a")
        b = EvaluationCache(directory=tmp_path, writer_id="b")
        keys = [put(a, "a1"), put(a, "a2"), put(b, "b1")]
        a.flush_index()
        b.flush_index()

        maintainer = EvaluationCache(directory=tmp_path)
        assert maintainer.compact() == 3
        assert not list(tmp_path.glob(JOURNAL_GLOB))
        index = json.loads((tmp_path / "index.json").read_text(encoding="utf-8"))
        assert set(index["entries"]) == set(keys)

        # A post-fold reader (no journals left) still sees everything.
        reader = EvaluationCache(directory=tmp_path)
        assert reader.disk_stats()["entries"] == 3
        for key in keys:
            assert reader.get(key) is not None

    def test_crash_mid_journal_append_is_tolerated(self, tmp_path):
        writer = EvaluationCache(directory=tmp_path, writer_id="w")
        good = put(writer, "good")
        writer.flush_index()
        journal = tmp_path / "index.w.journal"
        # Simulate a crash mid-append: a truncated record on the last line.
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"op": "put", "key": "deadbeefdeadbeef", "fi')

        reader = EvaluationCache(directory=tmp_path)
        assert reader.disk_stats()["entries"] == 1
        assert reader.get(good) is not None

    def test_journal_del_records_propagate_evictions(self, tmp_path):
        writer = EvaluationCache(directory=tmp_path, writer_id="w",
                                 max_disk_entries=1)
        first = put(writer, "first")
        second = put(writer, "second")
        writer.flush_index()
        assert writer.stats.evictions == 1

        reader = EvaluationCache(directory=tmp_path)
        assert reader.disk_stats()["entries"] == 1
        assert reader.get(second) is not None
        assert reader.get(first) is None

    def test_hostile_journal_lines_are_ignored(self, tmp_path):
        writer = EvaluationCache(directory=tmp_path, writer_id="w")
        good = put(writer, "good")
        writer.flush_index()
        journal = tmp_path / "index.evil.journal"
        journal.write_text(
            "\n".join([
                "not json at all",
                json.dumps(["a", "list"]),
                json.dumps({"op": "put", "key": 7, "file": "aa/x.json"}),
                json.dumps({"op": "put", "key": "esc", "file": "../outside.json"}),
                json.dumps({"op": "put", "key": "abs", "file": "/etc/passwd"}),
                json.dumps({"op": "wipe", "key": good}),
            ]) + "\n",
            encoding="utf-8")

        reader = EvaluationCache(directory=tmp_path)
        assert set(reader._index) == {good}
        assert reader.get(good) is not None

    def test_journal_mode_survives_writer_restart(self, tmp_path):
        first_session = EvaluationCache(directory=tmp_path, writer_id="w")
        one = put(first_session, "one")
        first_session.flush_index()

        second_session = EvaluationCache(directory=tmp_path, writer_id="w")
        assert second_session.get(one) is not None
        two = put(second_session, "two")
        second_session.flush_index()

        reader = EvaluationCache(directory=tmp_path)
        assert reader.disk_stats()["entries"] == 2
        assert reader.get(one) is not None and reader.get(two) is not None

    def test_disk_stats_reports_writer_and_journals(self, tmp_path):
        writer = EvaluationCache(directory=tmp_path, writer_id="me")
        put(writer, "x")
        writer.flush_index()
        stats = writer.disk_stats()
        assert stats["writer_id"] == "me"
        assert stats["journals"] == 1

    def test_cli_compact_folds_journals(self, tmp_path, capsys):
        from repro.engine.cache import main as cache_main

        writer = EvaluationCache(directory=tmp_path, writer_id="w")
        put(writer, "x")
        writer.flush_index()
        assert cache_main(["compact", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries_after_compact"] == 1
        assert report["journals"] == 0
        assert not list(tmp_path.glob(JOURNAL_GLOB))
