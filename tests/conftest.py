"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import ExperimentConfig
from repro.crossbar import CrossbarConfig, create_all_schemes
from repro.technology import default_45nm


@pytest.fixture(scope="session")
def library():
    """The paper's technology point (45 nm, 1.0 V, 3 GHz, 110 C, TT)."""
    return default_45nm()


@pytest.fixture(scope="session")
def cold_library():
    """Same technology at 25 C, for temperature-sensitivity tests."""
    return default_45nm(temperature_celsius=25.0)


@pytest.fixture(scope="session")
def crossbar_config():
    """The paper's crossbar configuration (5x5, 128-bit flits)."""
    return CrossbarConfig()


@pytest.fixture(scope="session")
def small_crossbar_config():
    """A reduced crossbar (5x5, 8-bit flits) for structure-heavy tests."""
    return CrossbarConfig(flit_width=8)


@pytest.fixture(scope="session")
def schemes(library, crossbar_config):
    """All five schemes instantiated at the paper's configuration."""
    return create_all_schemes(library, crossbar_config)


@pytest.fixture(scope="session")
def experiment_config():
    """The paper's experiment configuration."""
    return ExperimentConfig()
