"""Tests for the NoC substrate: flits, buffers, arbitration, routing,
routers, mesh, the cycle-based simulator, traffic, power gating and the
network power roll-up."""

from __future__ import annotations

import pytest

from repro.crossbar import PortDirection
from repro.errors import NocError
from repro.noc import (
    Flit,
    FlitBuffer,
    FlitType,
    GatingPolicy,
    IdleIntervalTracker,
    Mesh,
    NetworkSimulator,
    NocPowerConfig,
    NocPowerModel,
    Packet,
    RoundRobinArbiter,
    Router,
    TrafficConfig,
    TrafficGenerator,
    TrafficPattern,
    evaluate_gating,
    evaluate_oracle_gating,
    opposite_port,
    xy_route,
)
from repro.power import analyse_minimum_idle_time


class TestFlitsAndPackets:
    def test_single_flit_packet(self):
        packet = Packet(source=(0, 0), destination=(1, 1), length_flits=1)
        flits = packet.flits()
        assert len(flits) == 1
        assert flits[0].flit_type is FlitType.SINGLE

    def test_multi_flit_packet_head_body_tail(self):
        packet = Packet(source=(0, 0), destination=(1, 1), length_flits=4)
        types = [flit.flit_type for flit in packet.flits()]
        assert types[0] is FlitType.HEAD
        assert types[-1] is FlitType.TAIL
        assert all(t is FlitType.BODY for t in types[1:-1])

    def test_packet_ids_unique(self):
        a = Packet((0, 0), (1, 1), 2)
        b = Packet((0, 0), (1, 1), 2)
        assert a.packet_id != b.packet_id

    def test_latency_requires_ejection(self):
        flit = Flit(0, FlitType.SINGLE, (0, 0), (1, 1), injection_cycle=5)
        with pytest.raises(NocError):
            _ = flit.latency
        flit.ejection_cycle = 9
        assert flit.latency == 4

    def test_zero_length_packet_rejected(self):
        with pytest.raises(NocError):
            Packet((0, 0), (1, 1), 0)


class TestFlitBuffer:
    def test_fifo_order(self):
        buffer = FlitBuffer(capacity=4)
        first = Flit(0, FlitType.SINGLE, (0, 0), (1, 1))
        second = Flit(1, FlitType.SINGLE, (0, 0), (1, 1))
        buffer.push(first)
        buffer.push(second)
        assert buffer.pop() is first
        assert buffer.pop() is second

    def test_overflow_raises(self):
        buffer = FlitBuffer(capacity=1)
        buffer.push(Flit(0, FlitType.SINGLE, (0, 0), (1, 1)))
        assert buffer.is_full
        with pytest.raises(NocError):
            buffer.push(Flit(1, FlitType.SINGLE, (0, 0), (1, 1)))

    def test_empty_pop_raises(self):
        with pytest.raises(NocError):
            FlitBuffer(capacity=1).pop()

    def test_occupancy_statistics(self):
        buffer = FlitBuffer(capacity=2)
        buffer.push(Flit(0, FlitType.SINGLE, (0, 0), (1, 1)))
        buffer.record_cycle()
        buffer.record_cycle()
        assert buffer.average_occupancy == pytest.approx(1.0)
        assert buffer.utilisation == pytest.approx(0.5)
        assert buffer.peak_occupancy == 1


class TestArbiterAndRouting:
    def test_round_robin_fairness(self):
        arbiter = RoundRobinArbiter(3)
        grants = [arbiter.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_no_request_returns_none(self):
        assert RoundRobinArbiter(3).grant([False, False, False]) is None

    def test_wrong_width_rejected(self):
        with pytest.raises(NocError):
            RoundRobinArbiter(3).grant([True])

    def test_xy_routes_x_before_y(self):
        assert xy_route((0, 0), (2, 2)) is PortDirection.EAST
        assert xy_route((2, 0), (2, 2)) is PortDirection.NORTH
        assert xy_route((2, 2), (0, 2)) is PortDirection.WEST
        assert xy_route((2, 2), (2, 0)) is PortDirection.SOUTH

    def test_xy_ejects_at_destination(self):
        assert xy_route((1, 1), (1, 1)) is PortDirection.PE

    def test_opposite_ports(self):
        assert opposite_port(PortDirection.EAST) is PortDirection.WEST
        assert opposite_port(PortDirection.NORTH) is PortDirection.SOUTH
        with pytest.raises(NocError):
            opposite_port(PortDirection.PE)


class TestRouterAndMesh:
    def test_router_routes_head_flit_to_correct_output(self):
        router = Router((0, 0))
        router.accept(PortDirection.PE, Flit(0, FlitType.SINGLE, (0, 0), (2, 0)))
        moves = router.decide_moves()
        assert len(moves) == 1
        assert moves[0].output_port is PortDirection.EAST

    def test_router_arbitrates_one_winner_per_output(self):
        router = Router((0, 0))
        router.accept(PortDirection.PE, Flit(0, FlitType.SINGLE, (0, 0), (2, 0)))
        router.accept(PortDirection.WEST, Flit(1, FlitType.SINGLE, (3, 0), (2, 0)))
        moves = router.decide_moves()
        east_moves = [m for m in moves if m.output_port is PortDirection.EAST]
        assert len(east_moves) == 1

    def test_commit_move_pops_and_counts(self):
        router = Router((0, 0))
        router.accept(PortDirection.PE, Flit(0, FlitType.SINGLE, (0, 0), (1, 0)))
        move = router.decide_moves()[0]
        flit = router.commit_move(move)
        assert flit.hops == 1
        assert router.crossbar_traversals == 1
        assert router.input_buffers[PortDirection.PE].is_empty

    def test_mesh_neighbours_and_edges(self):
        mesh = Mesh(3, 3)
        assert mesh.neighbour((0, 0), PortDirection.EAST) == (1, 0)
        assert mesh.neighbour((0, 0), PortDirection.WEST) is None
        assert mesh.neighbour((2, 2), PortDirection.NORTH) is None
        assert mesh.node_count == 9

    def test_mesh_average_hop_count(self):
        # For a 2x2 mesh every pair is 1 or 2 hops apart; mean is 4/3.
        assert Mesh(2, 2).average_hop_count() == pytest.approx(4 / 3)

    def test_invalid_mesh_rejected(self):
        with pytest.raises(NocError):
            Mesh(0, 3)
        with pytest.raises(NocError):
            Mesh(1, 1)


class TestTraffic:
    def test_generation_rate_close_to_target(self):
        config = TrafficConfig(injection_rate=0.2, packet_length=2, seed=7)
        generator = TrafficGenerator(config, 4, 4)
        cycles = 4000
        flits = 0
        for cycle in range(cycles):
            for node in [(x, y) for x in range(4) for y in range(4)]:
                for packet in generator.generate(cycle, node):
                    flits += packet.length_flits
        measured = flits / (cycles * 16)
        assert measured == pytest.approx(0.2, rel=0.15)

    def test_transpose_destination(self):
        config = TrafficConfig(pattern=TrafficPattern.TRANSPOSE, injection_rate=1.0,
                               packet_length=1, seed=1)
        generator = TrafficGenerator(config, 4, 4)
        packets = []
        for cycle in range(50):
            packets.extend(generator.generate(cycle, (1, 3)))
        assert packets, "transpose traffic should generate packets at rate 1.0"
        assert all(packet.destination == (3, 1) for packet in packets)

    def test_bit_complement_destination(self):
        config = TrafficConfig(pattern=TrafficPattern.BIT_COMPLEMENT, injection_rate=1.0,
                               packet_length=1, seed=1)
        generator = TrafficGenerator(config, 4, 4)
        packets = []
        for cycle in range(50):
            packets.extend(generator.generate(cycle, (0, 1)))
        assert all(packet.destination == (3, 2) for packet in packets)

    def test_hotspot_biases_destinations(self):
        config = TrafficConfig(pattern=TrafficPattern.HOTSPOT, hotspot_node=(0, 0),
                               hotspot_fraction=0.8, injection_rate=1.0, packet_length=1, seed=5)
        generator = TrafficGenerator(config, 4, 4)
        destinations = []
        for cycle in range(300):
            destinations.extend(p.destination for p in generator.generate(cycle, (3, 3)))
        hot = sum(1 for d in destinations if d == (0, 0))
        assert hot / len(destinations) > 0.6

    def test_never_sends_to_self(self):
        config = TrafficConfig(pattern=TrafficPattern.UNIFORM, injection_rate=1.0,
                               packet_length=1, seed=2)
        generator = TrafficGenerator(config, 2, 2)
        for cycle in range(200):
            for packet in generator.generate(cycle, (0, 0)):
                assert packet.destination != (0, 0)

    def test_deterministic_for_fixed_seed(self):
        config = TrafficConfig(injection_rate=0.3, seed=11)
        a = TrafficGenerator(config, 3, 3)
        b = TrafficGenerator(config, 3, 3)
        trace_a = [len(a.generate(c, (1, 1))) for c in range(200)]
        trace_b = [len(b.generate(c, (1, 1))) for c in range(200)]
        assert trace_a == trace_b

    def test_hotspot_requires_node(self):
        with pytest.raises(NocError):
            TrafficConfig(pattern=TrafficPattern.HOTSPOT)

    def test_invalid_rate_rejected(self):
        with pytest.raises(NocError):
            TrafficConfig(injection_rate=1.5)


class TestIdleIntervalTracker:
    def test_intervals_and_fractions(self):
        tracker = IdleIntervalTracker()
        for busy in [True, False, False, True, False, False, False, True]:
            tracker.record(busy)
        tracker.finalise()
        assert tracker.idle_intervals() == [2, 3]
        assert tracker.idle_fraction == pytest.approx(5 / 8)
        assert tracker.intervals_of_at_least(3) == [3]
        assert tracker.gateable_idle_fraction(3) == pytest.approx(3 / 8)

    def test_trailing_idle_interval_closed_on_finalise(self):
        tracker = IdleIntervalTracker()
        for busy in [True, False, False]:
            tracker.record(busy)
        tracker.finalise()
        assert tracker.idle_intervals() == [2]

    def test_reading_before_finalise_raises(self):
        tracker = IdleIntervalTracker()
        tracker.record(False)
        with pytest.raises(NocError):
            tracker.idle_intervals()


class TestNetworkSimulation:
    @pytest.fixture(scope="class")
    def simulation(self):
        mesh = Mesh(4, 4)
        traffic = TrafficConfig(injection_rate=0.1, packet_length=4, seed=3)
        return NetworkSimulator(mesh, traffic).run(cycles=1500, warmup_cycles=100)

    def test_flits_are_delivered(self, simulation):
        assert simulation.latency.ejected_flits > 100

    def test_latency_at_least_hop_distance(self, simulation):
        assert simulation.average_latency >= 1.0

    def test_throughput_tracks_offered_load(self, simulation):
        assert simulation.accepted_throughput == pytest.approx(0.1, rel=0.3)

    def test_utilisation_between_zero_and_one(self, simulation):
        assert 0.0 < simulation.average_crossbar_utilisation < 1.0

    def test_idle_intervals_collected(self, simulation):
        intervals = simulation.idle_intervals()
        assert len(intervals) > 50
        assert all(interval >= 1 for interval in intervals)

    def test_higher_load_increases_latency_and_utilisation(self):
        def run(rate):
            mesh = Mesh(3, 3)
            return NetworkSimulator(mesh, TrafficConfig(injection_rate=rate, seed=9)).run(1200, 100)

        light = run(0.05)
        heavy = run(0.35)
        assert heavy.average_crossbar_utilisation > light.average_crossbar_utilisation
        assert heavy.average_latency >= light.average_latency

    def test_bursty_traffic_creates_longer_idle_intervals(self):
        def run(burst_on):
            mesh = Mesh(3, 3)
            traffic = TrafficConfig(injection_rate=0.08, burst_on_fraction=burst_on,
                                    burst_phase_length=40, seed=5)
            return NetworkSimulator(mesh, traffic).run(2500, 100)

        smooth = run(1.0)
        bursty = run(0.25)
        longest_smooth = max(smooth.idle_intervals())
        longest_bursty = max(bursty.idle_intervals())
        assert longest_bursty >= longest_smooth

    def test_zero_cycle_run_rejected(self):
        simulator = NetworkSimulator(Mesh(2, 2), TrafficConfig())
        with pytest.raises(NocError):
            simulator.run(0)


class TestPowerGating:
    def _idle_analysis(self, schemes):
        return analyse_minimum_idle_time(schemes["DPC"])

    def test_timeout_gating_saves_energy_on_long_intervals(self, schemes):
        analysis = self._idle_analysis(schemes)
        idle_power = schemes["DPC"].idle_leakage().power(schemes["DPC"].supply_voltage)
        standby_power = schemes["DPC"].standby_leakage_power()
        report = evaluate_gating([100, 200, 300], 1000, analysis, idle_power, standby_power,
                                 GatingPolicy(idle_detect_cycles=4))
        assert report.net_energy_saved > 0
        assert report.sleep_transitions == 3
        assert 0.9 < report.gated_fraction_of_idle <= 1.0

    def test_short_intervals_are_not_gated(self, schemes):
        analysis = self._idle_analysis(schemes)
        idle_power = schemes["DPC"].idle_leakage().power(1.0)
        standby_power = schemes["DPC"].standby_leakage_power()
        report = evaluate_gating([1, 2, 3], 100, analysis, idle_power, standby_power,
                                 GatingPolicy(idle_detect_cycles=4))
        assert report.gated_cycles == 0
        assert report.sleep_transitions == 0

    def test_oracle_beats_timeout_policy(self, schemes):
        analysis = self._idle_analysis(schemes)
        idle_power = schemes["DPC"].idle_leakage().power(1.0)
        standby_power = schemes["DPC"].standby_leakage_power()
        intervals = [2, 5, 50, 200, 3, 80]
        timeout = evaluate_gating(intervals, 1000, analysis, idle_power, standby_power,
                                  GatingPolicy(idle_detect_cycles=8))
        oracle = evaluate_oracle_gating(intervals, 1000, analysis, idle_power, standby_power)
        assert oracle.net_energy_saved >= timeout.net_energy_saved

    def test_gating_rejects_idle_below_standby(self, schemes):
        analysis = self._idle_analysis(schemes)
        with pytest.raises(NocError):
            evaluate_gating([10], 100, analysis, idle_power=1e-6, standby_power=2e-6)

    def test_policy_validation(self):
        with pytest.raises(NocError):
            GatingPolicy(idle_detect_cycles=0)


class TestNocPower:
    @pytest.fixture(scope="class")
    def simulation(self):
        mesh = Mesh(3, 3)
        traffic = TrafficConfig(injection_rate=0.1, seed=3)
        return NetworkSimulator(mesh, traffic).run(1000, 100)

    def test_report_components_positive(self, schemes, simulation):
        model = NocPowerModel(schemes["SC"])
        report = model.evaluate(simulation)
        assert report.crossbar_dynamic > 0
        assert report.crossbar_leakage > 0
        assert report.buffer_leakage > 0
        assert report.link_dynamic > 0
        assert report.total == pytest.approx(
            report.crossbar_dynamic + report.crossbar_leakage
            + report.buffer_leakage + report.link_dynamic
        )

    def test_gating_reduces_crossbar_leakage(self, schemes, simulation):
        gated = NocPowerModel(schemes["DPC"], NocPowerConfig(gating_enabled=True)).evaluate(simulation)
        ungated = NocPowerModel(schemes["DPC"], NocPowerConfig(gating_enabled=False)).evaluate(simulation)
        assert gated.crossbar_leakage < ungated.crossbar_leakage
        assert gated.gating_net_saving > 0

    def test_leakage_aware_scheme_lowers_network_leakage(self, schemes, simulation):
        sc = NocPowerModel(schemes["SC"], NocPowerConfig(gating_enabled=False)).evaluate(simulation)
        sdpc = NocPowerModel(schemes["SDPC"], NocPowerConfig(gating_enabled=False)).evaluate(simulation)
        assert sdpc.crossbar_leakage < sc.crossbar_leakage

    def test_energy_per_traversal_and_link_energy_positive(self, schemes):
        model = NocPowerModel(schemes["SC"])
        assert model.crossbar_energy_per_traversal() > 0
        assert model.link_energy_per_flit() > 0
        assert model.buffer_leakage_per_router() > 0

    def test_config_validation(self):
        with pytest.raises(NocError):
            NocPowerConfig(buffer_depth=0)
        with pytest.raises(NocError):
            NocPowerConfig(link_length=0.0)
