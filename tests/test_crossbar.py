"""Tests for the crossbar schemes — the paper's contribution.

These tests assert the *mechanisms* of each scheme (which devices are
high-Vt, what the sleep/pre-charge state does, how segmentation changes
the switched capacitance) rather than calibrated absolute numbers; the
quantitative reproduction of Table 1 lives in the integration tests and
the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.crossbar import (
    CrossbarConfig,
    SchemeFeatures,
    available_schemes,
    create_scheme,
    register_scheme,
)
from repro.crossbar.dfc import DualVtFeedbackCrossbar
from repro.crossbar.sc import SingleVtCrossbar
from repro.errors import CrossbarError
from repro.technology import VtFlavor


class TestCrossbarConfig:
    def test_paper_defaults(self, crossbar_config):
        assert crossbar_config.port_count == 5
        assert crossbar_config.flit_width == 128
        assert crossbar_config.inputs_per_output == 4
        assert crossbar_config.total_crosspoints == 5 * 4 * 128

    def test_self_connection_changes_fan_in(self):
        config = CrossbarConfig(allow_self_connection=True)
        assert config.inputs_per_output == 5

    def test_derived_wire_lengths_scale_with_flit_width(self, library):
        narrow = CrossbarConfig(flit_width=32)
        wide = CrossbarConfig(flit_width=128)
        assert wide.crossbar_span(library) == pytest.approx(4 * narrow.crossbar_span(library))

    def test_explicit_wire_length_overrides_derivation(self, library):
        config = CrossbarConfig(row_wire_length=200e-6)
        assert config.resolved_row_wire_length(library) == pytest.approx(200e-6)
        assert config.resolved_input_wire_length(library) != pytest.approx(200e-6)

    def test_receiver_capacitance_default_positive(self, library, crossbar_config):
        assert crossbar_config.resolved_receiver_capacitance(library) > 0

    def test_invalid_configs_rejected(self):
        with pytest.raises(CrossbarError):
            CrossbarConfig(port_count=1)
        with pytest.raises(CrossbarError):
            CrossbarConfig(flit_width=0)
        with pytest.raises(CrossbarError):
            CrossbarConfig(pass_width=-1.0)
        with pytest.raises(CrossbarError):
            CrossbarConfig(timing_budget_fraction=0.0)

    def test_with_overrides_returns_modified_copy(self, crossbar_config):
        modified = crossbar_config.with_overrides(flit_width=64)
        assert modified.flit_width == 64
        assert crossbar_config.flit_width == 128


class TestFactory:
    def test_all_five_schemes_available_in_table_order(self):
        assert available_schemes()[:5] == ["SC", "DFC", "DPC", "SDFC", "SDPC"]

    def test_create_scheme_case_insensitive(self, library):
        assert create_scheme("dfc", library).name == "DFC"

    def test_unknown_scheme_raises(self, library):
        with pytest.raises(CrossbarError):
            create_scheme("XYZ", library)

    def test_create_all_returns_every_scheme(self, schemes):
        assert set(schemes) >= {"SC", "DFC", "DPC", "SDFC", "SDPC"}

    def test_register_rejects_duplicates_without_overwrite(self):
        with pytest.raises(CrossbarError):
            register_scheme("SC", SingleVtCrossbar)

    def test_register_and_use_custom_scheme(self, library):
        from repro.crossbar import factory

        register_scheme("SC2", SingleVtCrossbar, overwrite=True)
        try:
            assert create_scheme("SC2", library).name == "SC"
            assert "SC2" in available_schemes()
        finally:
            factory._REGISTRY.pop("SC2", None)


class TestSchemeStructure:
    def test_features_match_paper_descriptions(self, schemes):
        assert schemes["SC"].features.has_keeper and not schemes["SC"].features.has_precharge
        assert schemes["DFC"].features.has_keeper and not schemes["DFC"].features.segmented
        assert schemes["DPC"].features.has_precharge and not schemes["DPC"].features.has_keeper
        assert schemes["SDFC"].features.segmented and schemes["SDFC"].features.has_keeper
        assert schemes["SDPC"].features.segmented and schemes["SDPC"].features.has_precharge

    def test_keeper_and_precharge_mutually_exclusive(self):
        with pytest.raises(CrossbarError):
            SchemeFeatures(has_keeper=True, has_precharge=True)

    def test_sc_uses_only_nominal_devices(self, schemes):
        stats = schemes["SC"].output_path_netlist().statistics()
        assert stats.count_by_flavor.get(VtFlavor.HIGH, 0) == 0

    def test_dual_vt_schemes_contain_high_vt_devices(self, schemes):
        for name in ("DFC", "DPC", "SDFC", "SDPC"):
            stats = schemes[name].output_path_netlist().statistics()
            assert stats.count_by_flavor.get(VtFlavor.HIGH, 0) > 0, name

    def test_high_vt_fraction_increases_along_scheme_ladder(self, schemes):
        fractions = {
            name: schemes[name].output_path_netlist().statistics().high_vt_fraction
            for name in ("SC", "DFC", "SDPC")
        }
        assert fractions["SC"] < fractions["DFC"] < fractions["SDPC"]

    def test_dfc_high_vt_devices_are_off_the_data_path(self, schemes):
        dfc = schemes["DFC"]
        assert dfc.keeper.pmos.vt_flavor is VtFlavor.HIGH
        assert dfc.sleep.nmos.vt_flavor is VtFlavor.HIGH
        assert dfc.driver2.nmos.vt_flavor is VtFlavor.NOMINAL
        assert dfc.pass_switch.nmos.vt_flavor is VtFlavor.NOMINAL

    def test_dpc_driver_vt_is_asymmetric(self, schemes):
        dpc = schemes["DPC"]
        assert dpc.driver1.nmos.vt_flavor is VtFlavor.HIGH
        assert dpc.driver1.pmos.vt_flavor is VtFlavor.NOMINAL
        assert dpc.driver2.nmos.vt_flavor is VtFlavor.NOMINAL
        assert dpc.driver2.pmos.vt_flavor is VtFlavor.HIGH

    def test_sdpc_drivers_fully_high_vt(self, schemes):
        sdpc = schemes["SDPC"]
        for device in (sdpc.driver1.nmos, sdpc.driver1.pmos, sdpc.driver2.nmos, sdpc.driver2.pmos):
            assert device.vt_flavor is VtFlavor.HIGH

    def test_output_path_netlist_counts(self, schemes, crossbar_config):
        path = schemes["SC"].output_path_netlist()
        stats = path.statistics()
        from repro.circuit import DeviceRole

        assert stats.count_by_role[DeviceRole.PASS_TRANSISTOR] == crossbar_config.inputs_per_output
        assert stats.count_by_role[DeviceRole.KEEPER] == 1
        assert stats.count_by_role[DeviceRole.SLEEP] == 1
        assert stats.count_by_role[DeviceRole.DRIVER] == 4  # I1 + I2, two devices each

    def test_segmented_path_has_segment_switch_and_two_sleeps(self, schemes):
        from repro.circuit import DeviceRole

        stats = schemes["SDFC"].output_path_netlist().statistics()
        assert stats.count_by_role[DeviceRole.SEGMENT_SWITCH] == 1
        assert stats.count_by_role[DeviceRole.SLEEP] == 2

    def test_sdpc_has_per_segment_precharge(self, schemes):
        from repro.circuit import DeviceRole

        stats = schemes["SDPC"].output_path_netlist().statistics()
        assert stats.count_by_role[DeviceRole.PRECHARGE] == 2

    def test_full_netlist_scales_with_bits(self, library, small_crossbar_config):
        scheme = create_scheme("SC", library, small_crossbar_config)
        one_bit = scheme.build_netlist(bits=1)
        two_bits = scheme.build_netlist(bits=2)
        assert len(two_bits) == 2 * len(one_bit)

    def test_full_netlist_merge_nodes_are_drivable(self, library, small_crossbar_config):
        scheme = create_scheme("DFC", library, small_crossbar_config)
        netlist = scheme.build_netlist(bits=1)
        assert netlist.net_is_drivable("out_pe.bit0.merge_near")
        assert netlist.net_is_drivable("out_pe.bit0.port_wire")

    def test_build_netlist_rejects_bad_bit_count(self, schemes):
        with pytest.raises(CrossbarError):
            schemes["SC"].build_netlist(bits=0)
        with pytest.raises(CrossbarError):
            schemes["SC"].build_netlist(bits=1000)


class TestSchemeTiming:
    def test_all_delays_in_crossbar_plausible_range(self, schemes):
        for name, scheme in schemes.items():
            report = scheme.delay_report()
            assert 10e-12 < report.high_to_low < 200e-12, name
            assert 10e-12 < report.low_to_high < 200e-12, name

    def test_dfc_high_to_low_faster_than_sc(self, schemes):
        # The high-Vt keeper opposes the falling merge node less.
        assert schemes["DFC"].delay_report().high_to_low < schemes["SC"].delay_report().high_to_low

    def test_dfc_low_to_high_not_faster_than_sc(self, schemes):
        assert schemes["DFC"].delay_report().low_to_high >= \
            schemes["SC"].delay_report().low_to_high * 0.999

    def test_segmented_schemes_pay_a_delay_penalty(self, schemes):
        baseline = schemes["SC"].delay_report()
        assert schemes["SDFC"].delay_report().penalty_versus(baseline) > 0

    def test_unsegmented_dual_vt_schemes_have_no_penalty(self, schemes):
        baseline = schemes["SC"].delay_report()
        assert schemes["DFC"].delay_report().penalty_versus(baseline) == 0.0
        assert schemes["DPC"].delay_report().penalty_versus(baseline) == 0.0

    def test_near_path_faster_than_far_path_in_segmented_schemes(self, schemes):
        sdfc = schemes["SDFC"]
        near = sdfc._merge_stage(falling=True, far_path=False).delay()
        far = sdfc._merge_stage(falling=True, far_path=True).delay()
        assert near < far

    def test_delays_shrink_with_smaller_crossbar(self, library):
        small = create_scheme("SC", library, CrossbarConfig(flit_width=32))
        large = create_scheme("SC", library, CrossbarConfig(flit_width=128))
        assert small.delay_report().high_to_low < large.delay_report().high_to_low


class TestSchemeLeakage:
    def test_every_dual_vt_scheme_saves_active_leakage(self, schemes):
        baseline = schemes["SC"].active_leakage_power()
        for name in ("DFC", "DPC", "SDFC", "SDPC"):
            assert schemes[name].active_leakage_power() < baseline, name

    def test_every_scheme_saves_standby_leakage_versus_sc(self, schemes):
        baseline = schemes["SC"].standby_leakage_power()
        for name in ("DFC", "DPC", "SDFC", "SDPC"):
            assert schemes[name].standby_leakage_power() < baseline, name

    def test_standby_leaks_less_than_idle_for_every_scheme(self, schemes):
        for name, scheme in schemes.items():
            idle = scheme.idle_leakage().power(scheme.supply_voltage)
            standby = scheme.standby_leakage_power()
            assert standby < idle, name

    def test_precharged_schemes_dominate_standby_savings(self, schemes):
        baseline = schemes["SC"].standby_leakage_power()
        dpc_saving = 1 - schemes["DPC"].standby_leakage_power() / baseline
        dfc_saving = 1 - schemes["DFC"].standby_leakage_power() / baseline
        assert dpc_saving > 0.8
        assert dpc_saving > 5 * dfc_saving

    def test_sdpc_has_best_active_savings(self, schemes):
        baseline = schemes["SC"].active_leakage_power()
        savings = {
            name: 1 - schemes[name].active_leakage_power() / baseline
            for name in ("DFC", "DPC", "SDFC", "SDPC")
        }
        assert max(savings, key=savings.get) == "SDPC"

    def test_leakage_scales_with_flit_width(self, library):
        narrow = create_scheme("SC", library, CrossbarConfig(flit_width=64))
        wide = create_scheme("SC", library, CrossbarConfig(flit_width=128))
        assert wide.active_leakage_power() == pytest.approx(2 * narrow.active_leakage_power(),
                                                            rel=1e-6)

    def test_leakage_higher_at_higher_temperature(self, library, cold_library, crossbar_config):
        hot = create_scheme("SC", library, crossbar_config)
        cold = create_scheme("SC", cold_library, crossbar_config)
        assert hot.active_leakage_power() > 2 * cold.active_leakage_power()

    def test_static_probability_bounds_checked(self, schemes):
        with pytest.raises(CrossbarError):
            schemes["SC"].active_leakage(1.5)


class TestSchemeDynamicAndStandby:
    def test_dynamic_energy_positive_and_scales_with_activity(self, schemes):
        low = schemes["SC"].dynamic_energy_per_cycle(toggle_activity=0.2)
        high = schemes["SC"].dynamic_energy_per_cycle(toggle_activity=0.8)
        assert 0 < low < high

    def test_precharged_scheme_dynamic_power_worst_at_half_static_probability(self, schemes):
        dpc = schemes["DPC"]
        half = dpc.dynamic_energy_per_cycle(static_probability=0.5)
        mostly_ones = dpc.dynamic_energy_per_cycle(static_probability=0.9)
        assert half > mostly_ones

    def test_feedback_scheme_insensitive_to_polarity(self, schemes):
        sc = schemes["SC"]
        assert sc.dynamic_energy_per_cycle(static_probability=0.3) == pytest.approx(
            sc.dynamic_energy_per_cycle(static_probability=0.7)
        )

    def test_segmentation_reduces_switched_row_capacitance(self, schemes):
        assert schemes["SDFC"]._row_switched_capacitance() < \
            schemes["DFC"]._row_switched_capacitance()

    def test_segmented_feedback_scheme_has_lower_dynamic_power(self, schemes):
        assert schemes["SDFC"].dynamic_power() < schemes["SC"].dynamic_power()

    def test_total_power_is_dynamic_plus_leakage(self, schemes):
        scheme = schemes["DFC"]
        assert scheme.total_power() == pytest.approx(
            scheme.dynamic_power() + scheme.active_leakage_power(), rel=1e-9
        )

    def test_sleep_transition_energy_positive_for_sleep_capable_schemes(self, schemes):
        for name, scheme in schemes.items():
            assert scheme.sleep_transition_energy() > 0, name

    def test_standby_power_saving_positive(self, schemes):
        for name, scheme in schemes.items():
            assert scheme.standby_power_saving() > 0, name

    def test_segmented_transition_costs_more_control_energy_than_flat(self, schemes):
        assert schemes["SDFC"].sleep_transition_energy() > schemes["DFC"].sleep_transition_energy() * 0.99


class TestMergeCapacitances:
    def test_merge_capacitance_composition(self, schemes):
        sc = schemes["SC"]
        assert sc.far_merge_capacitance() == 0.0
        assert sc.merge_capacitance() == pytest.approx(sc.near_merge_capacitance())

    def test_segmented_scheme_splits_merge_capacitance(self, schemes):
        sdfc = schemes["SDFC"]
        assert sdfc.far_merge_capacitance() > 0
        assert sdfc.merge_capacitance() == pytest.approx(
            sdfc.near_merge_capacitance() + sdfc.far_merge_capacitance()
        )

    def test_output_path_count(self, schemes, crossbar_config):
        assert schemes["SC"].output_path_count == crossbar_config.port_count * crossbar_config.flit_width


class TestDescriptions:
    def test_every_scheme_has_name_and_description(self, schemes):
        for name, scheme in schemes.items():
            assert scheme.name == name
            assert len(scheme.description) > 10

    def test_dfc_is_sc_plus_vt_changes_only(self, library, crossbar_config):
        sc = SingleVtCrossbar(library, crossbar_config)
        dfc = DualVtFeedbackCrossbar(library, crossbar_config)
        assert len(sc.output_path_netlist()) == len(dfc.output_path_netlist())
        assert sc.features.has_keeper == dfc.features.has_keeper
        assert sc.features.has_sleep == dfc.features.has_sleep
