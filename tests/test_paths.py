"""Unit tests for dotted config paths (repro.core.paths) and the
nested-override surface of ExperimentConfig."""

from __future__ import annotations

import pytest

from repro import ExperimentConfig, describe_path, get_path, set_path, sweepable_paths
from repro.core.paths import normalize_path, path_aliases
from repro.crossbar.ports import CrossbarConfig
from repro.errors import ConfigurationError, CrossbarError


class TestGetSetPath:
    def test_get_top_level_and_nested(self):
        config = ExperimentConfig()
        assert get_path(config, "temperature_celsius") == 110.0
        assert get_path(config, "crossbar.flit_width") == 128
        assert get_path(config, "crossbar") is config.crossbar

    def test_get_unset_optional_branch_reads_defaults(self):
        config = ExperimentConfig()
        assert config.noc is None
        assert get_path(config, "noc.buffer_depth") == 4
        assert get_path(config, "noc.gating_policy.idle_detect_cycles") == 4

    def test_set_returns_new_config_and_leaves_original(self):
        config = ExperimentConfig()
        updated = set_path(config, "crossbar.port_count", 9)
        assert updated.crossbar.port_count == 9
        assert config.crossbar.port_count == 5
        assert updated.crossbar.flit_width == config.crossbar.flit_width

    def test_set_materialises_optional_branch(self):
        config = ExperimentConfig()
        updated = set_path(config, "noc.gating_policy.wakeup_cycles", 2)
        assert config.noc is None
        assert updated.noc.gating_policy.wakeup_cycles == 2
        assert updated.noc.buffer_depth == 4  # rest of the branch defaulted

    def test_unknown_segment_names_the_path(self):
        with pytest.raises(ConfigurationError, match="crossbar.bogus"):
            set_path(ExperimentConfig(), "crossbar.bogus", 1)
        with pytest.raises(ConfigurationError, match="bogus"):
            get_path(ExperimentConfig(), "bogus")

    def test_descending_into_scalar_rejected(self):
        with pytest.raises(ConfigurationError, match="flit_width"):
            get_path(ExperimentConfig(), "crossbar.flit_width.bits")

    def test_set_revalidates_and_names_the_path(self):
        with pytest.raises(CrossbarError, match="crossbar.port_count"):
            set_path(ExperimentConfig(), "crossbar.port_count", 0)
        with pytest.raises(CrossbarError, match="crossbar.input_buffer_depth"):
            CrossbarConfig(input_buffer_depth=0)


class TestRegistry:
    def test_registry_covers_tree_and_flat_names(self):
        paths = sweepable_paths()
        for expected in (
            "technology_node",
            "static_probability",
            "crossbar.port_count",
            "crossbar.flit_width",
            "crossbar.input_buffer_depth",
            "noc.link_length",
            "noc.gating_policy.wakeup_cycles",
        ):
            assert expected in paths
        # Interior nodes are not sweepable as a whole.
        assert "crossbar" not in paths
        assert "noc" not in paths

    def test_aliases_are_unambiguous(self):
        aliases = path_aliases()
        assert aliases["port_count"] == "crossbar.port_count"
        assert aliases["flit_width"] == "crossbar.flit_width"
        # static_probability exists both flat and under noc: the flat
        # spelling is canonical, so no alias may shadow it.
        assert "static_probability" not in aliases
        assert normalize_path("static_probability") == "static_probability"

    def test_network_level_paths_have_no_aliases(self):
        """A shorthand like 'buffer_depth' silently landing on a knob the
        Table-1 comparison never reads would masquerade as a no-op sweep;
        network-level paths must be spelled out in full."""
        aliases = path_aliases()
        assert "buffer_depth" not in aliases
        assert "link_length" not in aliases
        assert "input_buffer_depth" not in aliases
        with pytest.raises(ConfigurationError, match="sweepable"):
            normalize_path("buffer_depth")
        assert normalize_path("noc.buffer_depth") == "noc.buffer_depth"

    def test_normalize_rejects_unknown_with_sweepable_list(self):
        with pytest.raises(ConfigurationError, match="sweepable"):
            normalize_path("oxide_thickness")

    def test_describe_path_accepts_aliases(self):
        assert describe_path("crossbar.port_count") == describe_path("port_count")

    def test_network_level_paths_are_annotated(self):
        """Paths consumed by NocPowerModel (not the Table-1 comparison)
        must say so, or a flat sweep over them reads as 'no effect'."""
        paths = sweepable_paths()
        assert "network-level" in paths["noc.link_length"]
        assert "network-level" in paths["noc.gating_policy.wakeup_cycles"]
        assert "network-level" in paths["crossbar.input_buffer_depth"]
        assert "network-level" not in paths["crossbar.port_count"]
        assert "network-level" not in paths["static_probability"]


class TestWithOverrides:
    def test_flat_overrides_unchanged(self):
        config = ExperimentConfig().with_overrides(temperature_celsius=25.0,
                                                   corner="FF")
        assert config.temperature_celsius == 25.0
        assert config.corner == "FF"

    def test_whole_subconfig_then_dotted_path_compose(self):
        config = ExperimentConfig().with_overrides(**{
            "crossbar": CrossbarConfig(flit_width=64),
            "crossbar.port_count": 6,
        })
        assert config.crossbar.flit_width == 64
        assert config.crossbar.port_count == 6

    def test_alias_and_path_conflict_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicates"):
            ExperimentConfig().with_overrides(**{
                "port_count": 6, "crossbar.port_count": 7})

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig().with_overrides(oxide_thickness=1.0)
