"""The distributed executor subsystem (ISSUE 4).

Covers the wire protocol (framing, config round-trip), the
registration handshake (including version-skew rejection), end-to-end
runs against spawned worker subprocesses with result ordering identical
to the serial executor, worker death with per-item re-dispatch, the
all-workers-lost failure mode, and the engine/service integration
points (``executor="distributed"``, CLI flags).
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading

import pytest

import repro
from repro.core.config import ExperimentConfig
from repro.engine import DistributedExecutor, Evaluator
from repro.engine.distributed import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    config_from_wire,
    config_to_wire,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.engine.executor import SerialExecutor, WorkItem, resolve_executor
from repro.errors import ConfigurationError, DistributedError

SCHEMES = ("SC", "SDPC")

#: Spawned-subprocess tests are slow-ish (each worker is a fresh Python
#: importing the model); keep the fleets and batches small.
WORKER_ENV = dict(os.environ)
WORKER_ENV["PYTHONPATH"] = (
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    + os.pathsep + WORKER_ENV.get("PYTHONPATH", ""))


def items_for(probabilities) -> list[WorkItem]:
    return [WorkItem(config=ExperimentConfig(static_probability=p),
                     scheme_names=SCHEMES, baseline_name="SC")
            for p in probabilities]


def spawn_worker(port: int, *extra: str) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro.engine.worker",
               "--connect", f"127.0.0.1:{port}", *extra]
    return subprocess.Popen(command, env=WORKER_ENV,
                            stdout=subprocess.DEVNULL)


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------

class TestFraming:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"type": "ping", "n": 7})
            assert recv_frame(b) == {"type": "ping", "n": 7}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall((100).to_bytes(4, "big") + b"short")
            a.close()
            with pytest.raises(DistributedError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(DistributedError, match="length"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_payload_rejected(self):
        a, b = socket.socketpair()
        try:
            payload = b'["a", "list"]'
            a.sendall(len(payload).to_bytes(4, "big") + payload)
            with pytest.raises(DistributedError, match="type"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestConfigWire:
    def test_default_config_is_empty_on_the_wire(self):
        assert config_to_wire(ExperimentConfig()) == {}

    def test_nested_config_round_trips(self):
        config = ExperimentConfig().with_overrides(**{
            "crossbar.port_count": 7,
            "static_probability": 0.3,
            "noc.injection_rate": 0.25,
            "noc.gating_policy.wakeup_cycles": 2,
        })
        wire = config_to_wire(config)
        assert wire["crossbar.port_count"] == 7
        # A materialised noc branch ships whole so the worker
        # materialises it too.
        assert wire["noc.mesh_columns"] == 4
        assert config_from_wire(wire) == config

    def test_flat_config_round_trips_without_noc(self):
        config = ExperimentConfig(temperature_celsius=55.0)
        wire = config_to_wire(config)
        assert not any(path.startswith("noc.") for path in wire)
        rebuilt = config_from_wire(wire)
        assert rebuilt == config and rebuilt.noc is None

    def test_malformed_wire_overrides_raise(self):
        with pytest.raises(DistributedError):
            config_from_wire(["not", "a", "mapping"])

    def test_parse_address(self):
        assert parse_address("10.0.0.2:9000") == ("10.0.0.2", 9000)
        assert parse_address("somehost", default_port=17) == ("somehost", 17)
        with pytest.raises(ConfigurationError):
            parse_address("host:notaport")


# ---------------------------------------------------------------------------
# registration handshake (raw-socket fake workers)
# ---------------------------------------------------------------------------

class TestRegistration:
    def handshake(self, executor: DistributedExecutor, register: dict) -> dict | None:
        sock = socket.create_connection(executor.address, timeout=5.0)
        try:
            sock.settimeout(5.0)
            send_frame(sock, register)
            return recv_frame(sock)
        finally:
            sock.close()

    def test_valid_registration_is_acked(self):
        with DistributedExecutor() as executor:
            answer = self.handshake(executor, {
                "type": "register", "protocol": PROTOCOL_VERSION,
                "worker": "w1", "model_version": repro.__version__})
            assert answer == {"type": "registered", "worker": "w1"}

    def test_protocol_mismatch_is_rejected(self):
        with DistributedExecutor() as executor:
            answer = self.handshake(executor, {
                "type": "register", "protocol": PROTOCOL_VERSION + 1,
                "worker": "w1", "model_version": repro.__version__})
            assert answer["type"] == "rejected"
            assert "protocol" in answer["reason"]

    def test_model_version_skew_is_rejected(self):
        with DistributedExecutor() as executor:
            answer = self.handshake(executor, {
                "type": "register", "protocol": PROTOCOL_VERSION,
                "worker": "w1", "model_version": "0.0.0-elsewhere"})
            assert answer["type"] == "rejected"
            assert "version" in answer["reason"]
            assert executor.stats.workers_rejected == 1

    def test_duplicate_worker_ids_are_uniquified(self):
        with DistributedExecutor() as executor:
            first = self.handshake(executor, {
                "type": "register", "protocol": PROTOCOL_VERSION,
                "worker": "twin", "model_version": repro.__version__})
            # The first connection stays open server-side long enough for
            # a twin to collide; ids must still end up distinct.
            second = self.handshake(executor, {
                "type": "register", "protocol": PROTOCOL_VERSION,
                "worker": "twin", "model_version": repro.__version__})
            assert first["worker"] == "twin"
            assert second["worker"].startswith("twin")


# ---------------------------------------------------------------------------
# end-to-end runs against real worker subprocesses
# ---------------------------------------------------------------------------

class TestDistributedRuns:
    def test_results_match_serial_in_submission_order(self):
        items = items_for((0.1, 0.3, 0.5, 0.7, 0.9))
        serial = SerialExecutor().run(items)
        with DistributedExecutor(spawn_workers=2) as executor:
            distributed = executor.run(items)
            # Persistent pool: a second run reuses the same fleet.
            again = executor.run(items_for((0.2,)))
            assert executor.stats.workers_registered == 2
        assert [point.records for point in distributed] \
            == [point.records for point in serial]
        assert all(point.comparison is None for point in distributed)
        assert len(again) == 1

    def test_worker_death_redispatches_items(self):
        executor = DistributedExecutor(min_workers=2).start()
        mortal = spawn_worker(executor.port, "--worker-id", "mortal",
                              "--max-items", "1")
        survivor = spawn_worker(executor.port, "--worker-id", "survivor")
        try:
            items = items_for((0.1, 0.3, 0.5, 0.7, 0.9, 0.2))
            results = executor.run(items)
            assert len(results) == 6
            serial = SerialExecutor().run(items)
            assert [p.records for p in results] == [p.records for p in serial]
            # The mortal worker died after one item; at least one item
            # must have been re-dispatched to the survivor.
            assert executor.stats.workers_lost >= 1
        finally:
            executor.close()
            mortal.wait(timeout=10)
            survivor.wait(timeout=10)

    def test_all_workers_lost_fails_the_run(self):
        executor = DistributedExecutor(min_workers=1,
                                       heartbeat_interval=0.5).start()
        only = spawn_worker(executor.port, "--worker-id", "only",
                            "--max-items", "1")
        try:
            with pytest.raises(DistributedError):
                executor.run(items_for((0.1, 0.3, 0.5)))
        finally:
            executor.close()
            only.wait(timeout=10)

    def test_deterministic_evaluation_error_fails_the_run(self):
        bad = ExperimentConfig(technology_node="13nm-imaginary")
        items = [WorkItem(config=bad, scheme_names=SCHEMES, baseline_name="SC")]
        with DistributedExecutor(spawn_workers=1) as executor:
            with pytest.raises(DistributedError, match="failed item"):
                executor.run(items)
            # The fleet survives a failed run.
            ok = executor.run(items_for((0.4,)))
            assert len(ok) == 1

    def test_registration_timeout_raises(self):
        executor = DistributedExecutor(register_timeout=0.3).start()
        try:
            with pytest.raises(DistributedError, match="registered"):
                executor.run(items_for((0.5,)))
        finally:
            executor.close()

    def test_empty_run_is_free(self):
        executor = DistributedExecutor()
        assert executor.run([]) == []
        executor.close()

    def test_close_is_idempotent_and_final(self):
        executor = DistributedExecutor().start()
        executor.close()
        executor.close()
        with pytest.raises(DistributedError, match="closed"):
            executor.start()


# ---------------------------------------------------------------------------
# worker --listen mode: the coordinator dials out
# ---------------------------------------------------------------------------

class TestDialOut:
    def test_coordinator_connects_to_listening_worker(self):
        listener = subprocess.Popen(
            [sys.executable, "-m", "repro.engine.worker",
             "--listen", "127.0.0.1:0", "--worker-id", "remote"],
            env=WORKER_ENV, stdout=subprocess.PIPE, text=True)
        try:
            line = listener.stdout.readline()
            address = line.strip().rsplit(" ", 1)[-1]
            with DistributedExecutor(connect=[address]) as executor:
                results = executor.run(items_for((0.25, 0.75)))
                assert len(results) == 2
                assert "remote" in executor.workers_payload()
        finally:
            listener.stdout.close()
            try:
                listener.wait(timeout=10)
            except subprocess.TimeoutExpired:
                listener.kill()


# ---------------------------------------------------------------------------
# engine / service integration
# ---------------------------------------------------------------------------

class TestIntegration:
    def test_resolve_executor_knows_distributed(self):
        executor = resolve_executor("distributed", max_workers=1)
        assert executor.name == "distributed"
        assert executor.spawn_workers == 1
        executor.close()

    def test_evaluator_runs_a_distributed_grid(self):
        with Evaluator(scheme_names=list(SCHEMES),
                       executor=DistributedExecutor(spawn_workers=2)) as evaluator:
            results = evaluator.evaluate_grid(
                {"static_probability": [0.2, 0.4, 0.6, 0.8]})
            serial = Evaluator(scheme_names=list(SCHEMES)).evaluate_grid(
                {"static_probability": [0.2, 0.4, 0.6, 0.8]})
            assert [p.records for p in results] == [p.records for p in serial]
        # Borrowed executor objects are NOT closed by the evaluator...
        # (ownership belongs to whoever constructed it)

    def test_evaluator_owns_string_spec_executors(self):
        evaluator = Evaluator(scheme_names=list(SCHEMES), executor="serial")
        evaluator.evaluate_grid({"static_probability": [0.5]})
        assert "serial" in evaluator._owned_executors
        evaluator.close()
        assert evaluator._owned_executors == {}

    def test_service_cli_flags_build_a_distributed_service(self):
        from repro.engine.service import _build_parser, service_from_args

        args = _build_parser().parse_args(
            ["--executor", "distributed", "--workers", "1",
             "--batch-size", "4"])
        service = service_from_args(args)
        try:
            assert service.executor.name == "distributed"
            assert service.executor.spawn_workers == 1
            assert service._own_executor
        finally:
            service.executor.close()

    def test_service_cli_rejects_workers_without_distributed(self):
        from repro.engine.service import _build_parser, service_from_args

        args = _build_parser().parse_args(["--executor", "serial",
                                           "--workers", "2"])
        with pytest.raises(ConfigurationError, match="distributed"):
            service_from_args(args)

    def test_service_cli_distributed_needs_a_worker_source(self):
        from repro.engine.service import _build_parser, service_from_args

        args = _build_parser().parse_args(["--executor", "distributed"])
        with pytest.raises(ConfigurationError, match="--workers"):
            service_from_args(args)


# ---------------------------------------------------------------------------
# concurrency: run() is serialised
# ---------------------------------------------------------------------------

def test_concurrent_runs_are_serialised_not_interleaved():
    """Two threads calling run() share the fleet safely (the service's
    flush serialisation makes this rare, but the lock must hold)."""
    with DistributedExecutor(spawn_workers=1) as executor:
        outcomes: dict[str, list] = {}

        def work(tag: str, probabilities) -> None:
            outcomes[tag] = executor.run(items_for(probabilities))

        threads = [threading.Thread(target=work, args=("a", (0.15, 0.35))),
                   threading.Thread(target=work, args=("b", (0.55, 0.85)))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(outcomes["a"]) == 2 and len(outcomes["b"]) == 2
        expected_a = SerialExecutor().run(items_for((0.15, 0.35)))
        assert [p.records for p in outcomes["a"]] \
            == [p.records for p in expected_a]


# ---------------------------------------------------------------------------
# review regressions: close() vs in-flight runs; HTTP status of fleet faults
# ---------------------------------------------------------------------------

def test_close_during_run_fails_the_run_instead_of_hanging():
    """close() while items are outstanding wakes the blocked run() with
    a DistributedError rather than leaving it waiting forever."""
    import time

    executor = DistributedExecutor().start()
    # A silent fake worker: registers, then never answers its item.
    sock = socket.create_connection(executor.address, timeout=5.0)
    send_frame(sock, {"type": "register", "protocol": PROTOCOL_VERSION,
                      "worker": "silent", "model_version": repro.__version__})
    assert recv_frame(sock)["type"] == "registered"

    outcome: dict[str, object] = {}

    def run():
        try:
            executor.run(items_for((0.5,)))
            outcome["result"] = "finished"
        except DistributedError as exc:
            outcome["error"] = exc

    runner = threading.Thread(target=run)
    runner.start()
    time.sleep(0.3)  # let the item reach the silent worker
    closer = threading.Thread(target=executor.close)
    closer.start()
    time.sleep(0.1)
    sock.close()  # unblock the coordinator's dispatch thread
    runner.join(timeout=15)
    closer.join(timeout=15)
    assert not runner.is_alive() and not closer.is_alive()
    assert "error" in outcome
    assert "closed" in str(outcome["error"]) or "lost" in str(outcome["error"])


def test_fleet_failure_is_a_503_over_http_not_a_client_error():
    """A DistributedError reaching the HTTP front (workers unavailable)
    answers 503 executor-unavailable, never a 400."""
    import asyncio
    import json as json_module

    from repro.engine import EvaluationServer, EvaluationService

    async def scenario():
        executor = DistributedExecutor(register_timeout=0.2)
        service = EvaluationService(scheme_names=list(SCHEMES),
                                    executor=executor, max_batch_size=1,
                                    own_executor=True)
        server = await EvaluationServer(service, port=0).start()
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)
        body = json_module.dumps(
            {"overrides": {"static_probability": 0.5}}).encode()
        writer.write((f"POST /evaluate HTTP/1.1\r\nHost: x\r\n"
                      f"Content-Length: {len(body)}\r\n"
                      f"Connection: close\r\n\r\n").encode() + body)
        await writer.drain()
        status_line = await reader.readline()
        raw = await reader.read()
        writer.close()
        await server.stop()
        await service.stop()
        payload = json_module.loads(raw.split(b"\r\n\r\n", 1)[-1])
        return int(status_line.split()[1]), payload

    status, payload = asyncio.run(scenario())
    assert status == 503
    assert payload["error"] == "executor-unavailable"
