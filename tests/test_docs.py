"""Docs stay true: generated references in sync, public API documented.

Two guards from ISSUE 3: ``docs/config_paths.md`` must match what
``scripts/gen_path_docs.py`` renders from the live path registry (so
the committed reference can never drift from the code), and every
public symbol of the engine API must carry a docstring.
"""

from __future__ import annotations

import importlib.util
import inspect
from pathlib import Path

import pytest

import repro.engine as engine
import repro.engine.cache
import repro.engine.distributed
import repro.engine.evaluator
import repro.engine.executor
import repro.engine.grid
import repro.engine.resultset
import repro.engine.service
import repro.engine.worker
import repro.core.paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_gen_path_docs():
    script = REPO_ROOT / "scripts" / "gen_path_docs.py"
    spec = importlib.util.spec_from_file_location("gen_path_docs", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_config_paths_doc_matches_live_registry():
    """docs/config_paths.md is exactly what the generator renders today.

    On failure: ``python scripts/gen_path_docs.py`` regenerates it.
    """
    generator = _load_gen_path_docs()
    committed = (REPO_ROOT / "docs" / "config_paths.md").read_text(
        encoding="utf-8")
    assert committed == generator.render(), (
        "docs/config_paths.md is out of sync with the path registry; "
        "regenerate it with: python scripts/gen_path_docs.py"
    )


def test_config_paths_doc_covers_every_sweepable_path():
    from repro.core.paths import sweepable_paths

    committed = (REPO_ROOT / "docs" / "config_paths.md").read_text(
        encoding="utf-8")
    for path in sweepable_paths():
        assert f"`{path}`" in committed


def test_readme_links_resolve():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for doc in ("docs/architecture.md", "docs/serving.md",
                "docs/config_paths.md", "docs/distributed.md",
                "docs/performance.md"):
        assert doc in readme
        assert (REPO_ROOT / doc).is_file()


# ---------------------------------------------------------------------------
# docstring presence over the public engine API
# ---------------------------------------------------------------------------

ENGINE_MODULES = [
    engine,
    repro.engine.cache,
    repro.engine.distributed,
    repro.engine.evaluator,
    repro.engine.executor,
    repro.engine.grid,
    repro.engine.resultset,
    repro.engine.service,
    repro.engine.worker,
    repro.core.paths,
]


def _documented(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


def _public_symbols():
    """(label, object) for every __all__ symbol of the engine modules."""
    seen = set()
    for module in ENGINE_MODULES:
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if id(obj) in seen or not (inspect.isclass(obj)
                                       or inspect.isfunction(obj)):
                continue
            seen.add(id(obj))
            yield f"{module.__name__}.{name}", obj


@pytest.mark.parametrize("label,obj",
                         list(_public_symbols()),
                         ids=[label for label, _ in _public_symbols()])
def test_public_engine_symbols_are_documented(label, obj):
    """Every public class/function has a docstring, and so does every
    public method and property the class itself defines."""
    assert _documented(obj), f"{label} is missing a docstring"
    if not inspect.isclass(obj):
        return
    for name, member in vars(obj).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            assert _documented(member), (
                f"{label}.{name} (property) is missing a docstring")
        elif inspect.isfunction(member) or isinstance(
                member, (classmethod, staticmethod)):
            target = member.__func__ if isinstance(
                member, (classmethod, staticmethod)) else member
            assert _documented(target), (
                f"{label}.{name} is missing a docstring")
