"""The leakage-kernel fast path must change nothing but the speed.

``tests/golden/leakage_parity.json`` holds the full ``compare_schemes``
output (all registered schemes, every Table 1 column) captured from the
pre-kernel implementation across three technology nodes, two static
probabilities and two crossbar radixes.  The memoised kernel, the
allocation-free accumulator and the per-scheme analysis memo must
reproduce every number to 1e-12 relative tolerance — in practice the
fast path is arithmetic-order-preserving enough to be bit-identical on
most columns, but the committed contract is the tolerance.

The second half checks the fast path is actually *fast*: bias-point
evaluations are shared across ports (a port-count sweep adds almost no
kernel misses) and the memo serves the overwhelming majority of
lookups.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro import compare_schemes, paper_experiment
from repro.circuit.biasing import (
    LeakageKernel,
    kernel_for,
    kernel_totals,
    leakage_from_node_voltages,
)
from repro.circuit.leakage import LeakageAccumulator, LeakageBreakdown
from repro.core.scheme_evaluator import (
    SchemeEvaluator,
    clear_structural_cache,
    structural_cache_stats,
)
from repro.errors import CircuitError
from repro.technology import default_45nm

GOLDEN_PATH = Path(__file__).parent / "golden" / "leakage_parity.json"

#: Relative tolerance of the golden comparison (absolute for exact zeros).
PARITY_RTOL = 1e-12


def _golden_cases():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def _case_id(case):
    parts = [case["technology_node"], f"p{case['static_probability']}"]
    if "crossbar.port_count" in case:
        parts.append(f"ports{case['crossbar.port_count']}")
    return "-".join(parts)


@pytest.mark.parametrize("case", _golden_cases(), ids=_case_id)
def test_compare_schemes_matches_pre_kernel_golden(case):
    """Full comparison output matches the pre-refactor numbers at 1e-12."""
    overrides = {"technology_node": case["technology_node"],
                 "static_probability": case["static_probability"]}
    if "crossbar.port_count" in case:
        overrides["crossbar.port_count"] = case["crossbar.port_count"]
    config = paper_experiment().with_overrides(**overrides)
    live = compare_schemes(config).as_records()

    golden = case["records"]
    assert len(live) == len(golden)
    for new, old in zip(live, golden):
        assert new.keys() == old.keys()
        for column, old_value in old.items():
            new_value = new[column]
            if isinstance(old_value, float):
                assert math.isclose(new_value, old_value,
                                    rel_tol=PARITY_RTOL, abs_tol=1e-30), (
                    f"{new['scheme']}.{column}: {new_value!r} != {old_value!r}"
                )
            else:
                assert new_value == old_value, f"{new['scheme']}.{column}"


def test_kernel_matches_unmemoised_function(library):
    """kernel.evaluate is value-identical to leakage_from_node_voltages."""
    kernel = kernel_for(library)
    from repro.technology.transistor import Polarity, VtFlavor

    device = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 2.0e-6)
    vdd = library.supply_voltage
    for bias in [(0.0, vdd, 0.0, 1), (vdd, vdd, 0.0, 1), (0.0, vdd, 0.0, 2),
                 (vdd, 0.3, 0.0, 1), (0.0, 0.0, 0.0, 1)]:
        direct = leakage_from_node_voltages(device, *bias[:3],
                                            series_off_devices=bias[3])
        memoised_cold = kernel.evaluate(device, *bias[:3],
                                        series_off_devices=bias[3])
        memoised_warm = kernel.evaluate(device, *bias[:3],
                                        series_off_devices=bias[3])
        assert memoised_cold == direct
        assert memoised_warm is memoised_cold  # the memo returns the object


def test_kernel_validation_and_stats(library):
    """Validation errors still fire (on first sight) and stats count."""
    from repro.technology.transistor import Polarity, VtFlavor

    kernel = LeakageKernel(max_entries=4)
    device = library.make_transistor(Polarity.PMOS, VtFlavor.HIGH, 1.0e-6)
    vdd = library.supply_voltage
    with pytest.raises(CircuitError):
        kernel.evaluate(device, 2.0 * vdd, 0.0, 0.0)  # outside the rails
    with pytest.raises(CircuitError):
        kernel.evaluate(device, 0.0, 0.0, 0.0, series_off_devices=0)
    kernel.evaluate(device, 0.0, vdd, vdd)
    kernel.evaluate(device, 0.0, vdd, vdd)
    assert kernel.stats.misses == 1
    assert kernel.stats.hits == 1
    assert kernel.stats.hit_rate == 0.5
    # The bound clears rather than grows without limit.
    for voltage in (0.1, 0.2, 0.3, 0.4, 0.5):
        kernel.evaluate(device, voltage, vdd, vdd)
    assert len(kernel) <= 4


def test_port_count_sweep_shares_bias_points():
    """A port-count sweep re-uses bias points: hit rate stays high and
    misses barely grow with the radix (the count multiplies instead)."""
    clear_structural_cache()
    base = paper_experiment()
    compare_schemes(base.with_overrides(**{"crossbar.port_count": 3}))
    # kernel_totals() returns the live counter object — snapshot the ints.
    lookups_first = kernel_totals().lookups
    misses_first = kernel_totals().misses

    for ports in (4, 5):
        compare_schemes(base.with_overrides(**{"crossbar.port_count": ports}))
    totals = kernel_totals()

    # Wider crossbars re-bias the *same* shared devices at the same rail
    # voltages: the sweep's extra unique bias points are a tiny fraction
    # of its lookups.
    sweep_lookups = totals.lookups - lookups_first
    sweep_misses = totals.misses - misses_first
    assert sweep_lookups > 0
    assert sweep_misses <= 0.05 * sweep_lookups
    assert totals.hit_rate > 0.8

    stats = structural_cache_stats()
    assert stats.kernel_hits == totals.hits
    assert stats.kernel_misses == totals.misses
    payload = stats.as_payload()
    assert payload["kernel_hits"] == totals.hits
    assert 0.0 < payload["kernel_hit_rate"] <= 1.0


def test_scheme_evaluator_exposes_kernel_stats():
    """SchemeEvaluator.kernel_stats() reports its library's counters."""
    clear_structural_cache()
    evaluator = SchemeEvaluator(paper_experiment())
    evaluator.evaluate("SC")
    stats = evaluator.kernel_stats()
    assert stats.misses > 0
    assert stats.lookups == stats.hits + stats.misses
    payload = stats.as_payload()
    assert set(payload) == {"hits", "misses", "hit_rate"}
    # A second evaluation of the same scheme is memo-served end to end.
    before_misses = stats.misses
    evaluator.evaluate("SC")
    assert evaluator.kernel_stats().misses == before_misses

    # Clearing the structural cache zeroes BOTH the aggregate and the
    # per-library counters of kernels still alive on held libraries, so
    # a library's stats stay a consistent share of the totals.
    clear_structural_cache()
    assert kernel_totals().lookups == 0
    assert evaluator.kernel_stats().lookups == 0


def test_accumulator_matches_breakdown_arithmetic():
    """LeakageAccumulator.add/freeze is bit-identical to +/scaled chains."""
    parts = [LeakageBreakdown(1e-9, 2e-9, 3e-9),
             LeakageBreakdown(4e-9, 5e-9, 6e-9),
             LeakageBreakdown(7e-9, 8e-9, 9e-9)]
    scales = [1.0, 2.5, 640.0]

    chained = LeakageBreakdown.zero()
    for part, scale in zip(parts, scales):
        chained = chained + part.scaled(scale)

    acc = LeakageAccumulator()
    for part, scale in zip(parts, scales):
        acc.add(part, scale)
    frozen = acc.freeze()

    assert frozen == chained
    assert frozen.total == chained.total
    with pytest.raises(CircuitError):
        LeakageAccumulator().add(parts[0], -1.0)


def test_breakdown_arithmetic_still_validates_boundaries():
    """Constructor and scaled() keep their validation semantics."""
    with pytest.raises(CircuitError):
        LeakageBreakdown(subthreshold=-1e-12)
    with pytest.raises(CircuitError):
        LeakageBreakdown(1e-9, 1e-9, 1e-9).scaled(-2.0)
    total = LeakageBreakdown(1e-9, 0.0, 0.0) + LeakageBreakdown(0.0, 1e-9, 0.0)
    assert total == LeakageBreakdown(1e-9, 1e-9, 0.0)


def test_shared_transistors_per_library():
    """make_transistor memoises per (polarity, flavor, width), per library."""
    from repro.technology.transistor import Polarity, VtFlavor

    library = default_45nm()
    a = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1.0e-6)
    b = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1.0e-6)
    c = library.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 2.0e-6)
    assert a is b
    assert a is not c
    other = default_45nm()
    assert other.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, 1.0e-6) is not a
