"""Tests for the timing substrate: stages, paths, contention, slack and
dual-Vt assignment."""

from __future__ import annotations

import pytest

from repro.errors import TimingError
from repro.interconnect import PiModel
from repro.timing import (
    DelayReport,
    SlackReport,
    TimingPath,
    TimingStage,
    VtCandidate,
    assign_high_vt,
    contention_factor,
    pass_rise_penalty,
    required_time_from_clock,
)


class TestTimingStage:
    def test_delay_without_wire_is_rc(self):
        stage = TimingStage("s", driver_resistance=1000.0, load_capacitance=10e-15)
        assert stage.delay() == pytest.approx(0.693 * 1000.0 * 10e-15, rel=1e-3)

    def test_series_resistance_adds_to_driver(self):
        base = TimingStage("s", 1000.0, 10e-15)
        with_pass = TimingStage("s", 1000.0, 10e-15, series_resistance=500.0)
        assert with_pass.delay() == pytest.approx(1.5 * base.delay())

    def test_contention_inflates_delay(self):
        quiet = TimingStage("s", 1000.0, 10e-15)
        fighting = TimingStage("s", 1000.0, 10e-15, contention_factor=1.5)
        assert fighting.delay() == pytest.approx(1.5 * quiet.delay())

    def test_wire_adds_delay(self):
        bare = TimingStage("s", 1000.0, 10e-15)
        wired = TimingStage("s", 1000.0, 10e-15, wire=PiModel(10e-15, 500.0, 10e-15))
        assert wired.delay() > bare.delay()

    def test_invalid_contention_rejected(self):
        with pytest.raises(TimingError):
            TimingStage("s", 1000.0, 10e-15, contention_factor=0.5)

    def test_negative_resistance_rejected(self):
        with pytest.raises(TimingError):
            TimingStage("s", -1.0, 10e-15)


class TestTimingPath:
    def _path(self):
        path = TimingPath("p")
        path.add_stage(TimingStage("a", 1000.0, 10e-15))
        path.add_stage(TimingStage("b", 500.0, 30e-15))
        return path

    def test_delay_is_sum_of_stages(self):
        path = self._path()
        assert path.delay() == pytest.approx(sum(path.stage_delays().values()))

    def test_critical_stage_is_largest_contributor(self):
        path = self._path()
        assert path.critical_stage().name == "b"

    def test_empty_path_rejected(self):
        with pytest.raises(TimingError):
            TimingPath("empty").delay()


class TestContentionAndRisePenalty:
    def test_contention_factor_increases_with_keeper_strength(self):
        weak = contention_factor(1e-3, 0.1e-3)
        strong = contention_factor(1e-3, 0.5e-3)
        assert strong > weak > 1.0

    def test_contention_factor_without_keeper_is_one(self):
        assert contention_factor(1e-3, 0.0) == 1.0

    def test_overstrong_keeper_rejected(self):
        with pytest.raises(TimingError):
            contention_factor(1e-3, 0.9e-3)

    def test_pass_rise_penalty_above_one(self):
        assert pass_rise_penalty(1.0, 0.22) > 1.0

    def test_pass_rise_penalty_grows_with_threshold(self):
        assert pass_rise_penalty(1.0, 0.37) > pass_rise_penalty(1.0, 0.22)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(TimingError):
            pass_rise_penalty(1.0, 1.2)


class TestDelayReport:
    def test_worst_case_and_penalty(self):
        baseline = DelayReport("SC", 61.4e-12, 54.9e-12)
        slower = DelayReport("SDFC", 62.8e-12, 64.3e-12)
        faster = DelayReport("DFC", 51.9e-12, 58.2e-12)
        assert baseline.worst_case == pytest.approx(61.4e-12)
        assert slower.penalty_versus(baseline) == pytest.approx(64.3 / 61.4 - 1, rel=1e-3)
        assert faster.penalty_versus(baseline) == 0.0

    def test_non_positive_delay_rejected(self):
        with pytest.raises(TimingError):
            DelayReport("bad", 0.0, 1e-12)


class TestSlack:
    def test_required_time_from_clock(self):
        assert required_time_from_clock(1 / 3e9, 0.25) == pytest.approx(83.3e-12, rel=1e-2)

    def test_slack_report(self):
        report = SlackReport("p", arrival_time=60e-12, required_time=80e-12)
        assert report.slack == pytest.approx(20e-12)
        assert report.is_met
        assert report.slack_fraction == pytest.approx(0.25)

    def test_negative_slack_detected(self):
        report = SlackReport("p", arrival_time=90e-12, required_time=80e-12)
        assert not report.is_met

    def test_invalid_utilisation_rejected(self):
        with pytest.raises(TimingError):
            required_time_from_clock(1e-9, 0.0)


class TestVtAssignment:
    def test_off_critical_candidates_always_selected(self):
        candidates = [
            VtCandidate("keeper", leakage_saving=1.0, delay_cost=0.0, on_critical_path=False),
            VtCandidate("driver", leakage_saving=5.0, delay_cost=10e-12, on_critical_path=True),
        ]
        result = assign_high_vt(candidates, slack_budget=0.0)
        assert "keeper" in result.selected_names
        assert "driver" not in result.selected_names

    def test_slack_budget_spent_greedily_by_efficiency(self):
        candidates = [
            VtCandidate("efficient", leakage_saving=10.0, delay_cost=1e-12),
            VtCandidate("inefficient", leakage_saving=1.0, delay_cost=1e-12),
        ]
        result = assign_high_vt(candidates, slack_budget=1e-12)
        assert result.selected_names == ["efficient"]
        assert result.rejected[0].name == "inefficient"

    def test_more_slack_selects_more_devices(self):
        candidates = [
            VtCandidate("a", 5.0, 2e-12),
            VtCandidate("b", 4.0, 2e-12),
            VtCandidate("c", 3.0, 2e-12),
        ]
        small = assign_high_vt(candidates, slack_budget=2e-12)
        large = assign_high_vt(candidates, slack_budget=6e-12)
        assert len(large.selected) > len(small.selected)
        assert large.total_leakage_saving > small.total_leakage_saving

    def test_slack_used_never_exceeds_budget(self):
        candidates = [VtCandidate("a", 5.0, 3e-12), VtCandidate("b", 4.0, 3e-12)]
        result = assign_high_vt(candidates, slack_budget=4e-12)
        assert result.slack_used <= result.slack_budget

    def test_zero_cost_candidates_always_fit(self):
        candidates = [VtCandidate("free", 1.0, 0.0)]
        result = assign_high_vt(candidates, slack_budget=0.0)
        assert result.selected_names == ["free"]

    def test_negative_budget_rejected(self):
        with pytest.raises(TimingError):
            assign_high_vt([], slack_budget=-1.0)

    def test_invalid_candidate_rejected(self):
        with pytest.raises(TimingError):
            VtCandidate("bad", leakage_saving=-1.0, delay_cost=0.0)
