"""Property-based tests (hypothesis) for the core data structures and
physical invariants the analytical models must respect."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import LeakageBreakdown, RCTree
from repro.interconnect import Bus, PiModel, SegmentationPlan, Wire
from repro.noc import RoundRobinArbiter
from repro.technology import Polarity, VtFlavor, default_45nm, stack_factor, subthreshold_current
from repro.timing import VtCandidate, assign_high_vt

LIBRARY = default_45nm()

common_settings = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestLeakageProperties:
    @common_settings
    @given(
        sub=st.floats(0, 1e-3), gate=st.floats(0, 1e-3), junction=st.floats(0, 1e-3),
        scale=st.floats(0, 1e3),
    )
    def test_breakdown_scaling_is_linear(self, sub, gate, junction, scale):
        breakdown = LeakageBreakdown(sub, gate, junction)
        assert breakdown.scaled(scale).total == pytest.approx(breakdown.total * scale, rel=1e-9)

    @common_settings
    @given(
        a=st.floats(0, 1e-3), b=st.floats(0, 1e-3), c=st.floats(0, 1e-3),
        d=st.floats(0, 1e-3), e=st.floats(0, 1e-3), f=st.floats(0, 1e-3),
    )
    def test_breakdown_addition_commutes(self, a, b, c, d, e, f):
        x = LeakageBreakdown(a, b, c)
        y = LeakageBreakdown(d, e, f)
        assert (x + y).total == pytest.approx((y + x).total, rel=1e-12)

    @common_settings
    @given(vgs=st.floats(0.0, 0.2), vds=st.floats(0.01, 1.0), width=st.floats(1e-7, 1e-5))
    def test_subthreshold_current_monotone_in_vgs_vds_width(self, vgs, vds, width):
        base = subthreshold_current(width, 1.0, vgs, vds, 0.3, 0.1, 0.1)
        more_gate = subthreshold_current(width, 1.0, vgs + 0.05, vds, 0.3, 0.1, 0.1)
        more_drain = subthreshold_current(width, 1.0, vgs, min(vds + 0.2, 1.2), 0.3, 0.1, 0.1)
        wider = subthreshold_current(width * 2, 1.0, vgs, vds, 0.3, 0.1, 0.1)
        assert more_gate >= base
        assert more_drain >= base
        assert wider == pytest.approx(2 * base, rel=1e-9)

    @common_settings
    @given(stack=st.integers(1, 6))
    def test_stack_factor_monotone_and_bounded(self, stack):
        factor = stack_factor(stack)
        assert 0 < factor <= 1.0
        assert stack_factor(stack + 1) <= factor

    @common_settings
    @given(width=st.floats(1e-7, 1e-5))
    def test_high_vt_never_leaks_more_than_nominal(self, width):
        nominal = LIBRARY.make_transistor(Polarity.NMOS, VtFlavor.NOMINAL, width)
        high = LIBRARY.make_transistor(Polarity.NMOS, VtFlavor.HIGH, width)
        assert high.off_current() < nominal.off_current()
        assert high.saturation_current() < nominal.saturation_current()


class TestRcTreeProperties:
    @common_settings
    @given(
        resistances=st.lists(st.floats(1.0, 1e4), min_size=1, max_size=8),
        capacitances=st.lists(st.floats(1e-16, 1e-13), min_size=1, max_size=8),
    )
    def test_chain_elmore_is_monotone_along_the_chain(self, resistances, capacitances):
        length = min(len(resistances), len(capacitances))
        tree = RCTree("drv")
        previous = "drv"
        names = []
        for index in range(length):
            name = f"n{index}"
            tree.add_node(name, previous, resistances[index], capacitances[index])
            names.append(name)
            previous = name
        delays = [tree.elmore_delay(name) for name in names]
        assert all(later >= earlier for earlier, later in zip(delays, delays[1:]))

    @common_settings
    @given(
        driver=st.floats(10.0, 1e4),
        extra=st.floats(1e-16, 1e-12),
    )
    def test_adding_capacitance_never_speeds_up_the_tree(self, driver, extra):
        tree = RCTree("drv")
        tree.add_wire("drv", "out", 500.0, 50e-15, segments=4)
        before = tree.elmore_delay_from_driver("out", driver)
        tree.add_capacitance("out", extra)
        after = tree.elmore_delay_from_driver("out", driver)
        assert after >= before


class TestInterconnectProperties:
    @common_settings
    @given(length=st.floats(1e-6, 5e-3))
    def test_pi_model_conserves_wire_totals(self, length):
        wire = Wire.on_layer(LIBRARY, length)
        pi = wire.pi_model()
        assert pi.total_capacitance == pytest.approx(wire.capacitance, rel=1e-12)
        assert pi.resistance == pytest.approx(wire.resistance, rel=1e-12)

    @common_settings
    @given(length=st.floats(1e-6, 1e-3), fraction=st.floats(0.05, 0.95))
    def test_wire_split_conserves_totals(self, length, fraction):
        wire = Wire.on_layer(LIBRARY, length)
        near, far = wire.split([fraction, 1.0 - fraction])
        assert near.resistance + far.resistance == pytest.approx(wire.resistance, rel=1e-9)
        assert near.capacitance + far.capacitance == pytest.approx(wire.capacitance, rel=1e-9)

    @common_settings
    @given(
        r1=st.floats(1.0, 1e4), r2=st.floats(1.0, 1e4),
        c1=st.floats(1e-16, 1e-13), c2=st.floats(1e-16, 1e-13),
    )
    def test_pi_cascade_conserves_totals(self, r1, r2, c1, c2):
        a = PiModel(c1 / 2, r1, c1 / 2)
        b = PiModel(c2 / 2, r2, c2 / 2)
        cascade = a.cascaded_with(b)
        assert cascade.resistance == pytest.approx(r1 + r2, rel=1e-12)
        assert cascade.total_capacitance == pytest.approx(c1 + c2, rel=1e-12)

    @common_settings
    @given(
        previous=st.integers(0, 2**16 - 1),
        current=st.integers(0, 2**16 - 1),
    )
    def test_bus_transition_energy_non_negative_and_zero_only_without_toggles(self, previous, current):
        bus = Bus(16, 100e-6, LIBRARY.wire_model())
        transition = bus.transition_energy(previous, current, 1.0)
        assert transition.energy >= 0.0
        if previous == current:
            assert transition.energy == 0.0
            assert transition.switched_bits == 0

    @common_settings
    @given(
        near_fraction=st.floats(0.05, 0.95),
        near_inputs=st.integers(1, 3),
    )
    def test_segmentation_switched_fraction_bounded(self, near_fraction, near_inputs):
        plan = SegmentationPlan(near_fraction=near_fraction,
                                inputs_on_near_segment=near_inputs, total_inputs=4)
        fraction = plan.average_switched_fraction()
        assert near_fraction <= fraction <= 1.0


class TestVtAssignmentProperties:
    @common_settings
    @given(
        savings=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=10),
        costs=st.lists(st.floats(0.0, 5e-12), min_size=1, max_size=10),
        budget=st.floats(0.0, 2e-11),
    )
    def test_assignment_respects_slack_budget(self, savings, costs, budget):
        size = min(len(savings), len(costs))
        candidates = [
            VtCandidate(f"c{i}", savings[i], costs[i], on_critical_path=True)
            for i in range(size)
        ]
        result = assign_high_vt(candidates, budget)
        assert result.slack_used <= budget + 1e-18
        assert len(result.selected) + len(result.rejected) == size

    @common_settings
    @given(budget_small=st.floats(0.0, 1e-12), budget_extra=st.floats(0.0, 1e-11))
    def test_more_slack_never_reduces_savings(self, budget_small, budget_extra):
        candidates = [
            VtCandidate("a", 3.0, 1e-12), VtCandidate("b", 2.0, 2e-12), VtCandidate("c", 1.0, 3e-12)
        ]
        small = assign_high_vt(candidates, budget_small)
        large = assign_high_vt(candidates, budget_small + budget_extra)
        assert large.total_leakage_saving >= small.total_leakage_saving


class TestArbiterProperties:
    @common_settings
    @given(request_trace=st.lists(st.lists(st.booleans(), min_size=4, max_size=4),
                                  min_size=1, max_size=40))
    def test_arbiter_only_grants_requesting_inputs(self, request_trace):
        arbiter = RoundRobinArbiter(4)
        for requests in request_trace:
            winner = arbiter.grant(requests)
            if winner is None:
                assert not any(requests)
            else:
                assert requests[winner]

    @common_settings
    @given(rounds=st.integers(1, 50))
    def test_arbiter_is_starvation_free_under_full_load(self, rounds):
        arbiter = RoundRobinArbiter(3)
        winners = [arbiter.grant([True, True, True]) for _ in range(3 * rounds)]
        for index in range(3):
            assert winners.count(index) == rounds
