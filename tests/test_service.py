"""Tests for the async evaluation service (engine/service.py).

Covers the ISSUE-3 edge cases — duplicate in-flight queries coalescing
onto one evaluation, malformed dotted paths earning structured errors
that name the path, shutdown flushing pending batches — plus the HTTP
front, the client, cache sharing across service instances and the CLI
argument plumbing.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.engine import EvaluationCache, SerialExecutor
from repro.errors import ConfigurationError
from repro.engine.service import (
    EvaluationServer,
    EvaluationService,
    InvalidRequestError,
    ServiceClient,
    _build_parser,
    service_from_args,
)
from repro.engine.service import main as service_main

SCHEMES = ["SC", "SDPC"]


class RecordingExecutor:
    """Serial executor that records every batch it is handed."""

    name = "recording"

    def __init__(self):
        self.batches: list[list] = []
        self._inner = SerialExecutor()

    def run(self, items):
        self.batches.append(list(items))
        return self._inner.run(items)


def make_service(**kwargs) -> EvaluationService:
    kwargs.setdefault("scheme_names", SCHEMES)
    kwargs.setdefault("executor", "serial")
    return EvaluationService(**kwargs)


# ---------------------------------------------------------------------------
# coalescing and batching
# ---------------------------------------------------------------------------

def test_duplicate_in_flight_queries_coalesce():
    """Two identical concurrent queries trigger exactly one evaluation."""
    executor = RecordingExecutor()

    async def scenario():
        service = make_service(executor=executor, max_batch_size=2,
                               flush_interval=30.0)
        point_a = {"static_probability": 0.3}
        point_b = {"static_probability": 0.7}
        # A, duplicate-A, B: the duplicate coalesces, so the pending
        # batch holds two *distinct* points and flushes at size 2.
        results = await asyncio.gather(
            service.evaluate(point_a),
            service.evaluate(point_a),
            service.evaluate(point_b),
        )
        await service.stop()
        return service, results

    service, results = asyncio.run(scenario())
    assert len(executor.batches) == 1
    assert len(executor.batches[0]) == 2  # A evaluated once, not twice
    assert service.stats.coalesced == 1
    assert service.stats.evaluated == 2
    first, twin, other = results
    assert twin.coalesced and not twin.from_cache
    assert not first.coalesced and not first.from_cache
    assert twin.key == first.key
    assert twin.records == first.records
    assert other.key != first.key


def test_repeat_after_completion_is_a_cache_hit():
    async def scenario():
        service = make_service(max_batch_size=1)
        miss = await service.evaluate({"static_probability": 0.4})
        hit = await service.evaluate({"static_probability": 0.4})
        await service.stop()
        return service, miss, hit

    service, miss, hit = asyncio.run(scenario())
    assert not miss.from_cache and hit.from_cache
    assert hit.records == miss.records
    assert service.stats.cache_hits == 1


def test_alias_and_dotted_spellings_share_one_cache_entry():
    async def scenario():
        service = make_service(max_batch_size=1)
        dotted = await service.evaluate({"crossbar.port_count": 3})
        alias = await service.evaluate({"port_count": 3})
        await service.stop()
        return dotted, alias

    dotted, alias = asyncio.run(scenario())
    assert alias.key == dotted.key
    assert alias.from_cache
    assert dict(alias.overrides) == {"crossbar.port_count": 3}


def test_flush_window_flushes_partial_batches():
    """A batch smaller than max_batch_size flushes after the window."""
    executor = RecordingExecutor()

    async def scenario():
        service = make_service(executor=executor, max_batch_size=64,
                               flush_interval=0.01)
        result = await service.evaluate({"toggle_activity": 0.2})
        await service.stop()
        return result

    result = asyncio.run(scenario())
    assert not result.from_cache
    assert len(executor.batches) == 1
    assert len(executor.batches[0]) == 1


# ---------------------------------------------------------------------------
# structured validation errors
# ---------------------------------------------------------------------------

def test_malformed_dotted_path_names_the_path():
    async def scenario():
        service = make_service()
        with pytest.raises(InvalidRequestError) as excinfo:
            await service.evaluate({"crossbar.portcount": 5})
        await service.stop()
        return excinfo.value

    error = asyncio.run(scenario())
    assert error.payload["error"] == "unknown-path"
    assert error.payload["path"] == "crossbar.portcount"
    assert "message" in error.payload


def test_invalid_value_names_the_path():
    async def scenario():
        service = make_service()
        with pytest.raises(InvalidRequestError) as excinfo:
            await service.evaluate({"static_probability": 1.5})
        await service.stop()
        return excinfo.value

    error = asyncio.run(scenario())
    assert error.payload["error"] == "invalid-value"
    assert error.payload["path"] == "static_probability"


def test_duplicate_paths_and_bad_shapes_are_rejected():
    async def scenario():
        service = make_service()
        payloads = []
        for overrides in ({"port_count": 3, "crossbar.port_count": 5},
                          ["static_probability", 0.5],
                          {3: 0.5}):
            with pytest.raises(InvalidRequestError) as excinfo:
                await service.evaluate(overrides)
            payloads.append(excinfo.value.payload)
        await service.stop()
        return payloads

    duplicate, non_mapping, non_string = asyncio.run(scenario())
    assert duplicate["error"] == "duplicate-path"
    assert duplicate["path"] == "crossbar.port_count"
    assert non_mapping["error"] == "invalid-overrides"
    assert non_string["error"] == "invalid-path"


def test_invalid_requests_do_not_reach_the_cache():
    async def scenario():
        service = make_service()
        with pytest.raises(InvalidRequestError):
            await service.evaluate({"no.such.path": 1})
        await service.stop()
        return service

    service = asyncio.run(scenario())
    assert service.stats.invalid_requests == 1
    assert service.cache.stats.lookups == 0


# ---------------------------------------------------------------------------
# shutdown semantics
# ---------------------------------------------------------------------------

def test_shutdown_flushes_pending_batches():
    """Queries accepted before stop() are answered, never dropped."""
    executor = RecordingExecutor()

    async def scenario():
        service = make_service(executor=executor, max_batch_size=64,
                               flush_interval=30.0)
        tasks = [asyncio.create_task(
                     service.evaluate({"static_probability": p}))
                 for p in (0.2, 0.8)]
        await asyncio.sleep(0)  # let both misses join the pending batch
        assert len(service._pending) == 2
        await service.stop()
        results = await asyncio.gather(*tasks)
        return service, results

    service, results = asyncio.run(scenario())
    assert [len(batch) for batch in executor.batches] == [2]
    assert all(len(result.records) == len(SCHEMES) for result in results)
    assert service.stats.evaluated == 2


def test_queries_after_stop_are_rejected():
    async def scenario():
        service = make_service()
        await service.stop()
        with pytest.raises(InvalidRequestError) as excinfo:
            await service.evaluate({"static_probability": 0.5})
        return excinfo.value

    error = asyncio.run(scenario())
    assert error.payload["error"] == "service-stopped"


# ---------------------------------------------------------------------------
# HTTP front and client
# ---------------------------------------------------------------------------

def test_http_round_trip_and_structured_http_errors():
    async def scenario():
        service = make_service(max_batch_size=4, flush_interval=0.01)
        server = await EvaluationServer(service, port=0).start()
        client = ServiceClient("127.0.0.1", server.port)

        assert await client.health()
        answer = await client.evaluate({"crossbar.port_count": 3})
        repeat = await client.evaluate({"port_count": 3})

        with pytest.raises(InvalidRequestError) as excinfo:
            await client.evaluate({"crossbar.portcount": 5})
        error_payload = excinfo.value.payload

        stats = await client.stats()
        paths = await client.paths()

        status_404, not_found = await client._request("GET", "/nope")
        status_405, wrong_method = await client._request("GET", "/evaluate")

        await server.stop()
        await service.stop()
        return (answer, repeat, error_payload, stats, paths,
                status_404, not_found, status_405, wrong_method)

    (answer, repeat, error_payload, stats, paths,
     status_404, not_found, status_405, wrong_method) = asyncio.run(scenario())
    assert answer["from_cache"] is False
    assert {record["scheme"] for record in answer["records"]} == set(SCHEMES)
    assert repeat["from_cache"] is True and repeat["key"] == answer["key"]
    assert error_payload["error"] == "unknown-path"
    assert error_payload["path"] == "crossbar.portcount"
    assert stats["service"]["requests"] == 3
    assert stats["config"]["schemes"] == SCHEMES
    assert any(record["path"] == "crossbar.port_count" for record in paths)
    assert status_404 == 404 and not_found["error"] == "unknown-endpoint"
    assert status_405 == 405 and wrong_method["error"] == "method-not-allowed"


def test_http_front_rejects_malformed_json_and_requests():
    async def scenario():
        service = make_service()
        server = await EvaluationServer(service, port=0).start()

        async def raw(data: bytes) -> bytes:
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            writer.write(data)
            await writer.drain()
            response = await reader.read()
            writer.close()
            await writer.wait_closed()
            return response

        bad_json = await raw(
            b"POST /evaluate HTTP/1.1\r\nContent-Length: 9\r\n"
            b"Connection: close\r\n\r\nnot json!")
        bad_request = await raw(b"garbage\r\n\r\n")

        await server.stop()
        await service.stop()
        return bad_json, bad_request

    bad_json, bad_request = asyncio.run(scenario())
    assert b"400" in bad_json.split(b"\r\n", 1)[0]
    assert b"invalid-json" in bad_json
    assert b"400" in bad_request.split(b"\r\n", 1)[0]


# ---------------------------------------------------------------------------
# cache sharing and CLI plumbing
# ---------------------------------------------------------------------------

def test_service_instances_share_a_disk_cache(tmp_path):
    cache_dir = tmp_path / "service-cache"

    async def first():
        service = make_service(cache_dir=cache_dir, max_batch_size=1)
        result = await service.evaluate({"static_probability": 0.35})
        await service.stop()
        return result

    async def second():
        service = make_service(cache_dir=cache_dir, max_batch_size=1)
        result = await service.evaluate({"static_probability": 0.35})
        await service.stop()
        return service, result

    cold = asyncio.run(first())
    service, warm = asyncio.run(second())
    assert not cold.from_cache and warm.from_cache
    assert warm.records == cold.records
    assert service.cache.stats.disk_hits == 1


def test_cache_write_failure_still_answers_the_query(tmp_path):
    """A failing cache.put must not hang the batch's futures (the
    evaluation succeeded; the point simply is not memoised)."""

    class FailingPutCache(EvaluationCache):
        """Cache whose writes always fail."""

        def put(self, key, entry):
            raise OSError(28, "No space left on device")

    async def scenario():
        service = make_service(cache=FailingPutCache(), max_batch_size=1)
        first = await asyncio.wait_for(
            service.evaluate({"static_probability": 0.55}), timeout=10)
        # The key must not be stranded in-flight: an identical follow-up
        # query re-evaluates instead of awaiting a dead future.
        second = await asyncio.wait_for(
            service.evaluate({"static_probability": 0.55}), timeout=10)
        await service.stop()
        return service, first, second

    service, first, second = asyncio.run(scenario())
    assert first.records == second.records
    assert service.stats.cache_write_failures >= 2
    assert not service._in_flight


def test_contract_violating_executor_fails_the_batch_loudly():
    """An executor returning the wrong result count must error every
    waiter instead of silently stranding the tail's futures."""

    class ShortExecutor:
        """Returns one result too few — a broken pluggable executor."""

        name = "short"

        def run(self, items):
            return SerialExecutor().run(items)[:-1]

    async def scenario():
        service = make_service(executor=ShortExecutor(), max_batch_size=2,
                               flush_interval=30.0)
        results = await asyncio.gather(
            asyncio.wait_for(
                service.evaluate({"static_probability": 0.15}), timeout=10),
            asyncio.wait_for(
                service.evaluate({"static_probability": 0.85}), timeout=10),
            return_exceptions=True,
        )
        await service.stop()
        return service, results

    service, results = asyncio.run(scenario())
    assert all(isinstance(result, RuntimeError) for result in results)
    assert all("returned 1 results for 2 items" in str(result)
               for result in results)
    assert not service._in_flight  # keys released: later queries re-evaluate


def test_executor_fault_is_a_500_over_http():
    """Server faults must not masquerade as client errors."""

    class BrokenExecutor:
        """Always violates the run(items) contract."""

        name = "broken"

        def run(self, items):
            return []

    async def scenario():
        service = make_service(executor=BrokenExecutor(), max_batch_size=1)
        server = await EvaluationServer(service, port=0).start()
        client = ServiceClient("127.0.0.1", server.port)
        status, payload = await client._request(
            "POST", "/evaluate", {"overrides": {"static_probability": 0.5}})
        await server.stop()
        await service.stop()
        return status, payload

    status, payload = asyncio.run(scenario())
    assert status == 500
    assert payload["error"] == "internal-error"


def test_service_uses_spawn_for_process_pools():
    """Pools are created from a flush worker thread, where fork is unsafe."""
    from repro.engine import ProcessExecutor

    service = make_service(executor="process")
    assert isinstance(service.executor, ProcessExecutor)
    assert service.executor.mp_start_method == "spawn"
    # Engine-side default is untouched: main-thread forking stays cheap.
    assert ProcessExecutor().mp_start_method is None


def test_memory_bound_keeps_the_service_cache_finite():
    async def scenario():
        cache = EvaluationCache(max_memory_entries=2)
        service = make_service(cache=cache, max_batch_size=1)
        for probability in (0.1, 0.2, 0.3, 0.4):
            await service.evaluate({"static_probability": probability})
        await service.stop()
        return service

    service = asyncio.run(scenario())
    assert len(service.cache) == 2
    assert service.cache.stats.memory_evictions == 2


def test_http_front_bounds_header_count():
    async def scenario():
        service = make_service()
        server = await EvaluationServer(service, port=0).start()
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(b"GET /healthz HTTP/1.1\r\n")
        for i in range(200):  # far beyond MAX_HEADER_LINES
            writer.write(b"x%d: y\r\n" % i)
        writer.write(b"\r\n")
        await writer.drain()
        response = await asyncio.wait_for(reader.read(), timeout=10)
        writer.close()
        await writer.wait_closed()
        await server.stop()
        await service.stop()
        return response

    response = asyncio.run(scenario())
    assert b"400" in response.split(b"\r\n", 1)[0]
    assert b"malformed-request" in response


def test_max_disk_entries_without_cache_dir_is_rejected():
    args = _build_parser().parse_args(["--max-disk-entries", "10"])
    with pytest.raises(Exception, match="cache-dir"):
        service_from_args(args)
    assert service_main(["--max-disk-entries", "10"]) == 2
    assert service_main(["--max-disk-bytes", "4096"]) == 2


def test_cli_args_build_the_described_service(tmp_path):
    args = _build_parser().parse_args([
        "--schemes", "SC,SDPC", "--baseline", "SC", "--executor", "serial",
        "--cache-dir", str(tmp_path / "cli-cache"), "--max-disk-entries", "9",
        "--max-disk-bytes", "65536",
        "--batch-size", "5", "--flush-interval", "0.5",
    ])
    service = service_from_args(args)
    assert service.scheme_names == ("SC", "SDPC")
    assert service.max_batch_size == 5
    assert service.flush_interval == 0.5
    assert isinstance(service.executor, SerialExecutor)
    assert isinstance(service.cache, EvaluationCache)
    assert service.cache.max_disk_entries == 9
    assert service.cache.max_disk_bytes == 65536
    assert (tmp_path / "cli-cache").is_dir()


def test_stats_payload_is_json_safe():
    async def scenario():
        service = make_service(max_batch_size=1)
        await service.evaluate({"static_probability": 0.6})
        payload = service.stats_payload()
        await service.stop()
        return payload

    payload = asyncio.run(scenario())
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped["service"]["evaluated"] == 1
    assert round_tripped["config"]["executor"] == "serial"
    # The leakage-kernel block rides along for hot-path observability.
    kernel = round_tripped["kernel"]
    assert set(kernel) == {"hits", "misses", "hit_rate"}
    assert kernel["misses"] > 0  # the evaluation above touched the kernel
    # Plain executors contribute no fleet block.
    assert "distributed" not in round_tripped


def test_stats_payload_exposes_distributed_fleet():
    """An executor with stats_payload() (the distributed fleet contract)
    surfaces as a ``distributed`` block in GET /stats."""

    class FleetExecutor(RecordingExecutor):
        name = "fleet"

        def stats_payload(self):
            return {"workers_registered": 2,
                    "workers": {"w0": {"completed": 3}}}

    async def scenario():
        service = make_service(executor=FleetExecutor(), max_batch_size=1)
        await service.evaluate({"static_probability": 0.4})
        payload = service.stats_payload()
        await service.stop()
        return payload

    payload = asyncio.run(scenario())
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped["distributed"]["workers_registered"] == 2
    assert round_tripped["distributed"]["workers"]["w0"]["completed"] == 3
    assert round_tripped["config"]["executor"] == "fleet"


# ---------------------------------------------------------------------------
# hardening: per-request deadlines and pending-batch backpressure (ISSUE 4)
# ---------------------------------------------------------------------------

def test_deadline_exceeded_is_structured_and_does_not_drop_the_work():
    from repro.engine.service import DeadlineExceededError

    async def scenario():
        # A huge flush window parks the miss; the deadline fires first.
        service = make_service(max_batch_size=8, flush_interval=30.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            await service.evaluate({"static_probability": 0.3}, timeout_s=0.05)
        payload = dict(excinfo.value.payload)
        # The evaluation itself was not cancelled: stopping flushes it
        # and the point lands in the cache for the retry.
        await service.stop()
        retry_entry_count = len(service.cache)
        return service, payload, retry_entry_count

    service, payload, cached = asyncio.run(scenario())
    assert payload["error"] == "deadline-exceeded"
    assert payload["timeout_s"] == 0.05
    assert service.stats.deadline_exceeded == 1
    assert cached == 1  # the timed-out point was still evaluated + cached


def test_coalesced_queries_honour_their_own_deadline():
    from repro.engine.service import DeadlineExceededError

    async def scenario():
        service = make_service(max_batch_size=8, flush_interval=30.0)
        point = {"static_probability": 0.3}
        patient = asyncio.create_task(service.evaluate(point))
        await asyncio.sleep(0)  # let the miss join the batch
        with pytest.raises(DeadlineExceededError):
            await service.evaluate(point, timeout_s=0.05)
        assert service.stats.coalesced == 1
        await service.stop()  # flushes; the patient twin is answered
        result = await patient
        return service, result

    service, result = asyncio.run(scenario())
    assert result.records  # the patient query was answered normally
    assert service.stats.deadline_exceeded == 1


def test_invalid_timeout_is_a_structured_400():
    async def scenario():
        service = make_service()
        for bad in (0, -1.0, float("nan"), float("inf"), "soon", True):
            with pytest.raises(InvalidRequestError) as excinfo:
                await service.evaluate({"static_probability": 0.5},
                                       timeout_s=bad)
            assert excinfo.value.payload["error"] == "invalid-timeout"
        await service.stop()
        return service

    service = asyncio.run(scenario())
    assert service.stats.invalid_requests == 6
    assert len(service.cache) == 0  # nothing reached the batch


def test_max_pending_backpressure_sheds_load_with_a_structured_503():
    from repro.engine.service import ServiceOverloadedError

    async def scenario():
        service = make_service(max_batch_size=8, flush_interval=30.0,
                               max_pending=1)
        first = asyncio.create_task(
            service.evaluate({"static_probability": 0.1}))
        await asyncio.sleep(0)  # the first miss occupies the batch
        with pytest.raises(ServiceOverloadedError) as excinfo:
            await service.evaluate({"static_probability": 0.2})
        payload = dict(excinfo.value.payload)
        # An identical in-flight point still coalesces (no new slot).
        duplicate = asyncio.create_task(
            service.evaluate({"static_probability": 0.1}))
        await asyncio.sleep(0)
        await service.stop()
        results = await asyncio.gather(first, duplicate)
        return service, payload, results

    service, payload, results = asyncio.run(scenario())
    assert payload["error"] == "overloaded"
    assert payload["max_pending"] == 1
    assert service.stats.rejected_overload == 1
    assert all(result.records for result in results)


def test_http_front_maps_deadline_and_overload_statuses():
    async def scenario():
        service = make_service(max_batch_size=8, flush_interval=30.0,
                               max_pending=1)
        server = await EvaluationServer(service, port=0).start()
        client = ServiceClient(port=server.port)
        statuses = {}

        async def raw(body):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            payload = json.dumps(body).encode()
            writer.write((f"POST /evaluate HTTP/1.1\r\nHost: x\r\n"
                          f"Content-Length: {len(payload)}\r\n"
                          f"Connection: close\r\n\r\n").encode() + payload)
            await writer.drain()
            line = await reader.readline()
            writer.close()
            return int(line.split()[1])

        statuses["deadline"] = await raw(
            {"overrides": {"static_probability": 0.3}, "timeout_s": 0.05})
        statuses["overload"] = await raw(
            {"overrides": {"static_probability": 0.4}})
        statuses["timeout_shape"] = await raw(
            {"overrides": {"static_probability": 0.5}, "timeout_s": "soon"})
        await server.stop()
        await service.stop()
        return statuses

    statuses = asyncio.run(scenario())
    assert statuses["deadline"] == 504
    assert statuses["overload"] == 503
    assert statuses["timeout_shape"] == 400


def test_cli_hardening_flags_are_plumbed(tmp_path):
    args = _build_parser().parse_args([
        "--executor", "serial", "--max-pending", "7",
        "--default-timeout", "1.5",
        "--cache-dir", str(tmp_path / "c"), "--writer-id", "svc-a",
    ])
    service = service_from_args(args)
    assert service.max_pending == 7
    assert service.default_timeout_s == 1.5
    assert service.cache.writer_id == "svc-a"


def test_writer_id_without_cache_dir_is_rejected():
    args = _build_parser().parse_args(["--writer-id", "svc-a"])
    with pytest.raises(ConfigurationError, match="--cache-dir"):
        service_from_args(args)


def test_service_closes_owned_process_executor_on_stop():
    async def scenario():
        service = make_service(executor="process", max_batch_size=1,
                               max_workers=1)
        assert service._own_executor
        await service.evaluate({"static_probability": 0.45})
        pool = service.executor._pool
        await service.stop()
        return service, pool

    service, pool = asyncio.run(scenario())
    assert pool is not None            # the flush actually used the pool
    assert service.executor._pool is None  # stop() closed it


def test_persistent_process_pool_is_reused_across_flushes():
    async def scenario():
        service = make_service(executor="process", max_batch_size=1,
                               max_workers=1)
        await service.evaluate({"static_probability": 0.21})
        first_pool = service.executor._pool
        await service.evaluate({"static_probability": 0.22})
        second_pool = service.executor._pool
        await service.stop()
        return first_pool, second_pool

    first_pool, second_pool = asyncio.run(scenario())
    assert first_pool is second_pool
