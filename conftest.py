"""Root pytest configuration.

Puts the ``src`` layout on ``sys.path`` so the test and benchmark suites
run even when the package has not been pip-installed (the reproduction
environment is offline, where pip's PEP 517 editable path cannot build;
``pip install -e .`` still works in normal environments via the legacy
setup.py path).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
